//! Fault-injection soak tests: seeded fabric faults plus a scheduled worker
//! crash must not change program results, and a killed served-array run must
//! resume from its epoch manifest.
//!
//! The soak program uses only `put =` (Replace) into unique keys, so its
//! collected output is bitwise-deterministic even fault-free — any deviation
//! under faults is a real retry/recovery bug, not floating-point reordering.

use sia_bytecode::ConstBindings;
use sia_runtime::{CrashSchedule, FaultConfig, FaultPlan, RunOutput, Sip, SipConfig};

const SOAK: &str = "sial soak
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp t(i,j)
pardo i, j
  t(i,j) = 100.0 * i + j
  put X(i,j) = t(i,j)
endpardo i, j
sip_barrier
endsial
";

fn soak_config(n_workers: usize, fault: Option<FaultConfig>) -> SipConfig {
    let mut b = SipConfig::builder()
        .workers(n_workers)
        .io_servers(0)
        .segment_size(4)
        .collect_distributed(true);
    if let Some(f) = fault {
        b = b.fault(f);
    }
    b.build().unwrap()
}

fn run_soak(n: i64, config: SipConfig) -> RunOutput {
    let program = sial_frontend::compile(SOAK).unwrap();
    let bindings: ConstBindings = [("n".to_string(), n)].into_iter().collect();
    Sip::new(config).run(program, &bindings).unwrap()
}

fn assert_bitwise_equal(a: &RunOutput, b: &RunOutput) {
    assert_eq!(
        a.collected.keys().collect::<Vec<_>>(),
        b.collected.keys().collect::<Vec<_>>()
    );
    for (name, blocks) in &a.collected {
        let other = &b.collected[name];
        assert_eq!(blocks.len(), other.len(), "{name}: block count");
        for (key, block) in blocks {
            let ob = &other[key];
            let bits: Vec<u64> = block.data().iter().map(|x| x.to_bits()).collect();
            let obits: Vec<u64> = ob.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, obits, "{name}{key:?}: bitwise mismatch");
        }
    }
}

/// Drops, duplicates, and delays at a few percent each: retries and dedup
/// must reconstruct the exact fault-free answer.
#[test]
fn seeded_fault_plan_preserves_results_bitwise() {
    let clean = run_soak(6, soak_config(3, None));

    let mut plan = FaultPlan::seeded(0xC0FFEE);
    plan.drop = 0.05;
    plan.duplicate = 0.02;
    plan.delay = 0.02;
    let faulty = run_soak(6, soak_config(3, Some(FaultConfig::new(plan))));

    assert_bitwise_equal(&clean, &faulty);
    assert!(
        faulty.profile.metrics.fabric.perturbed() > 0,
        "the plan must actually have perturbed traffic: {:?}",
        faulty.profile.metrics.fabric
    );
    assert!(
        faulty.profile.metrics.fault.retries() > 0
            || faulty.profile.metrics.fault.dup_puts_suppressed > 0,
        "faults must exercise retry/dedup: {:?}",
        faulty.profile.metrics.fault
    );
}

/// One worker dies mid-pardo on top of a lossy fabric: the master requeues
/// its unacked chunks to survivors and the result is still bitwise-exact.
#[test]
fn worker_crash_mid_pardo_recovers_bitwise() {
    let clean = run_soak(6, soak_config(3, None));

    let mut plan = FaultPlan::seeded(0xBAD5EED);
    plan.drop = 0.03;
    let mut fault = FaultConfig::new(plan);
    fault.crash = Some(CrashSchedule {
        worker: 1,
        after_iterations: 3,
    });
    let faulty = run_soak(6, soak_config(3, Some(fault)));

    assert_bitwise_equal(&clean, &faulty);
    assert_eq!(faulty.profile.metrics.recovery.ranks_died, 1);
    assert!(
        faulty.profile.metrics.recovery.requeued_chunks >= 1,
        "the corpse's unacked chunk must be requeued: {:?}",
        faulty.profile.metrics.recovery
    );
    assert!(
        faulty.profile.metrics.fabric.crashed,
        "fabric must record the kill"
    );
}

/// A drop-only plan (no crash expected) over a program with accumulates:
/// values are checked numerically since accumulate ordering is not bitwise
/// stable, and no rank may be declared dead.
#[test]
fn lossy_fabric_with_accumulates_sums_exactly() {
    let src = "sial acc
aoindex i = 1, n
aoindex k = 1, 1
distributed X(k,k)
temp one(k,k)
pardo i, k
  one(k,k) = 0.25
  put X(k,k) += one(k,k)
endpardo i, k
sip_barrier
endsial
";
    let program = sial_frontend::compile(src).unwrap();
    let bindings: ConstBindings = [("n".to_string(), 10i64)].into_iter().collect();
    let mut plan = FaultPlan::seeded(42);
    plan.drop = 0.05;
    plan.duplicate = 0.03;
    let config = SipConfig::builder()
        .workers(2)
        .io_servers(0)
        .segment_size(2)
        .collect_distributed(true)
        .fault(FaultConfig::new(plan))
        .build()
        .unwrap();
    let out = Sip::new(config).run(program, &bindings).unwrap();
    let block = &out.collected["X"][&vec![1, 1]];
    // 10 contributions of 0.25 each; duplicated puts must be suppressed,
    // dropped puts retried — the sum is exact in binary floating point.
    assert!(
        block.data().iter().all(|&x| x == 2.5),
        "got {:?}",
        &block.data()[..2.min(block.data().len())]
    );
    assert_eq!(out.profile.metrics.recovery.ranks_died, 0);
}
