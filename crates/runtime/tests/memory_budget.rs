//! Budget-enforcement and zero-copy accounting tests: a run must complete
//! under an enforced `memory_budget` set to the dry-run prediction + 10%,
//! the per-worker high-water mark must respect the ceiling, and the
//! in-process fast path must share handles instead of deep-copying blocks.

use sia_bytecode::ConstBindings;
use sia_runtime::{RuntimeError, SegmentConfig, Sip, SipConfig};

fn config(workers: usize, cache_blocks: usize) -> SipConfig {
    SipConfig::builder()
        .workers(workers)
        .io_servers(1)
        .segments(SegmentConfig {
            default: 4,
            nsub: 2,
            ..Default::default()
        })
        .cache_blocks(cache_blocks)
        .prefetch_depth(2)
        .collect_distributed(true)
        .build()
        .unwrap()
}

fn bindings(pairs: &[(&str, i64)]) -> ConstBindings {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// Put every block of a distributed array, then get every block back: a
/// workload that exercises the home store, the remote-copy cache, and the
/// prefetcher all at once.
const PUT_GET_SRC: &str = r#"
sial putget
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp t(i,j)
temp u(i,j)
pardo i, j
  t(i,j) = i + 10.0 * j
  put X(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i, j
  get X(i,j)
  u(i,j) = X(i,j)
endpardo i, j
endsial
"#;

#[test]
fn run_completes_at_dry_run_estimate_plus_ten_percent() {
    let program = sial_frontend::compile(PUT_GET_SRC).unwrap();
    let binds = bindings(&[("n", 6)]);

    // Predict, then enforce the prediction + 10% as a hard runtime ceiling.
    let estimate = Sip::new(config(3, 8))
        .dry_run(program.clone(), &binds)
        .unwrap();
    let budget = estimate.per_worker_bytes + estimate.per_worker_bytes / 10;

    let mut cfg = config(3, 8);
    cfg.memory_budget = Some(budget);
    let out = Sip::new(cfg).run(program, &binds).unwrap();

    assert_eq!(
        out.profile.dry_run_estimate_bytes,
        estimate.per_worker_bytes
    );
    assert_eq!(out.profile.metrics.memory.budget_bytes, budget);
    assert!(
        out.profile.metrics.memory.high_water_bytes <= budget,
        "high water {} exceeded enforced budget {budget}",
        out.profile.metrics.memory.high_water_bytes
    );
    assert!(out.profile.metrics.memory.high_water_bytes > 0);

    // The run still computed the right thing.
    for i in 1..=6i64 {
        for j in 1..=6i64 {
            let b = &out.collected["X"][&vec![i, j]];
            assert!(b
                .data()
                .iter()
                .all(|&v| (v - (i as f64 + 10.0 * j as f64)).abs() < 1e-12));
        }
    }
}

#[test]
fn in_process_fast_path_is_zero_copy() {
    // Serving home blocks, filling the cache, and delivering through the
    // in-process fabric must all share one Arc allocation. The manager's
    // clone counters prove it: shares happened, deep copies did not.
    let program = sial_frontend::compile(PUT_GET_SRC).unwrap();
    let out = Sip::new(config(3, 8))
        .run(program, &bindings(&[("n", 5)]))
        .unwrap();

    let m = &out.profile.metrics.memory;
    assert!(
        m.clones_avoided > 0,
        "expected shared handles on the serve/cache path, stats: {m:?}"
    );
    assert!(m.bytes_clone_avoided > 0);
    assert_eq!(
        m.deep_copies, 0,
        "no super instructions ran, so nothing may deep-copy: {m:?}"
    );
}

#[test]
fn budget_below_estimate_is_rejected_before_spawning() {
    let program = sial_frontend::compile(PUT_GET_SRC).unwrap();
    let binds = bindings(&[("n", 6)]);
    let estimate = Sip::new(config(2, 8))
        .dry_run(program.clone(), &binds)
        .unwrap();

    let mut cfg = config(2, 8);
    cfg.memory_budget = Some(estimate.per_worker_bytes / 2);
    match Sip::new(cfg).run(program, &binds).unwrap_err() {
        RuntimeError::Infeasible { .. } => {}
        other => panic!("expected Infeasible, got {other}"),
    }
}

#[test]
fn tight_cache_evicts_by_bytes_and_still_completes() {
    // A two-block cache forces byte-accurate LRU eviction on the get sweep;
    // the run must still finish and the eviction counter must move.
    let program = sial_frontend::compile(PUT_GET_SRC).unwrap();
    let out = Sip::new(config(2, 2))
        .run(program, &bindings(&[("n", 6)]))
        .unwrap();
    let cache = &out.profile.metrics.cache;
    assert!(
        cache.evictions > 0,
        "two-block cache over 36 remote blocks must evict, got {cache:?}"
    );
    for i in 1..=6i64 {
        for j in 1..=6i64 {
            let b = &out.collected["X"][&vec![i, j]];
            assert!(b
                .data()
                .iter()
                .all(|&v| (v - (i as f64 + 10.0 * j as f64)).abs() < 1e-12));
        }
    }
}
