//! Multi-tenant serving tests: admission control reports exact bytes,
//! concurrent jobs sharing a served array hit the warm cache and stay
//! bitwise-identical to a serial run, and one job's rank death never fails
//! a neighbor job (each job runs on its own fabric world).

use sia_bytecode::ConstBindings;
use sia_runtime::serve::{AdmitError, Daemon, DaemonConfig, JobSpec, JobState};
use sia_runtime::{CrashSchedule, FaultConfig, FaultPlan, SipConfig, SuperRegistry};
use std::path::PathBuf;
use std::time::Duration;

/// Writer: primes the served array `B` and checks it back.
const WRITER: &str = "sial served_writer
aoindex i = 1, n
aoindex j = 1, n
served B(i,j)
temp t(i,j)
scalar total
pardo i, j
  t(i,j) = 2.0 * i - j
  prepare B(i,j) = t(i,j)
endpardo i, j
server_barrier
pardo i, j
  request B(i,j)
  total += B(i,j) * B(i,j)
endpardo i, j
sip_barrier
execute sip_allreduce total
endsial
";

/// Reader: the same declarations (so `B` resolves to the same block files
/// in a shared served directory), but only requests — a fresh job's server
/// must fill from the warm cache or disk, never from its own prepares.
const READER: &str = "sial served_reader
aoindex i = 1, n
aoindex j = 1, n
served B(i,j)
temp t(i,j)
scalar total
pardo i, j
  request B(i,j)
  total += B(i,j) * B(i,j)
endpardo i, j
sip_barrier
execute sip_allreduce total
endsial
";

/// An I/O-free distributed job used as the crashing neighbor.
const NEIGHBOR: &str = "sial neighbor
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp t(i,j)
scalar total
pardo i, j
  t(i,j) = 100.0 * i + j
  put X(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i, j
  get X(i,j)
  total += X(i,j) * X(i,j)
endpardo i, j
sip_barrier
execute sip_allreduce total
endsial
";

fn job(src: &str, tenant: &str, n: i64, workers: usize, fault: Option<FaultConfig>) -> JobSpec {
    let program = sial_frontend::compile(src).unwrap();
    let bindings: ConstBindings = [("n".to_string(), n)].into_iter().collect();
    let mut b = SipConfig::builder()
        .workers(workers)
        .io_servers(1)
        .segment_size(4);
    if let Some(f) = fault {
        b = b.fault(f);
    }
    JobSpec {
        tenant: tenant.to_string(),
        priority: 1,
        program,
        bindings,
        config: b.build().unwrap(),
        registry: SuperRegistry::new(),
        export: false,
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sia-serving-{tag}-{}", std::process::id()))
}

const WAIT: Duration = Duration::from_secs(120);

/// Admission control must reject a job that does not fit the remaining
/// budget and report the *exact* bytes involved — the same footprint the
/// dry run computes.
#[test]
fn admission_rejects_infeasible_job_with_exact_bytes() {
    let needed = Daemon::footprint(&job(WRITER, "t", 6, 2, None)).unwrap();
    assert!(needed > 0);

    let dir = tmp("admit");
    let daemon = Daemon::new(DaemonConfig {
        budget_bytes: needed - 1,
        max_concurrent: 2,
        data_dir: dir.clone(),
        warm_blocks: 64,
    });
    match daemon.submit(job(WRITER, "t", 6, 2, None)) {
        Err(AdmitError::OverBudget {
            needed_bytes,
            available_bytes,
            budget_bytes,
        }) => {
            assert_eq!(
                needed_bytes, needed,
                "rejection must cite the dry-run footprint"
            );
            assert_eq!(available_bytes, needed - 1);
            assert_eq!(budget_bytes, needed - 1);
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }
    drop(daemon);

    // The same job fits a budget of exactly its footprint — and once it
    // finishes, its bytes return to the pool for the next admission.
    let daemon = Daemon::new(DaemonConfig {
        budget_bytes: needed,
        max_concurrent: 2,
        data_dir: dir.clone(),
        warm_blocks: 64,
    });
    let id = daemon.submit(job(WRITER, "t", 6, 2, None)).unwrap();
    let s = daemon.wait(id, WAIT).expect("job must finish");
    assert_eq!(s.state, JobState::Done, "{:?}", s.state);
    assert_eq!(s.admitted_bytes, needed);
    let id2 = daemon.submit(job(WRITER, "t", 6, 2, None)).unwrap();
    let s2 = daemon.wait(id2, WAIT).expect("second job must finish");
    assert_eq!(s2.state, JobState::Done, "{:?}", s2.state);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two jobs sharing a served array: the second takes warm-cache hits, its
/// result is bitwise-identical to a serial run, and a neighbor job whose
/// worker rank dies mid-run neither fails itself (its own master recovers
/// it) nor the reader running beside it.
#[test]
fn concurrent_jobs_share_served_array_and_survive_neighbor_crash() {
    // Serial baseline: writer then reader, one job at a time. The reader
    // runs on one worker, so its reduction order is deterministic.
    let dir_serial = tmp("serial");
    let serial_total = {
        let daemon = Daemon::new(DaemonConfig {
            budget_bytes: 1 << 30,
            max_concurrent: 1,
            data_dir: dir_serial.clone(),
            warm_blocks: 256,
        });
        let w = daemon.submit(job(WRITER, "alice", 6, 2, None)).unwrap();
        assert_eq!(daemon.wait(w, WAIT).unwrap().state, JobState::Done);
        let r = daemon.submit(job(READER, "bob", 6, 1, None)).unwrap();
        let s = daemon.wait(r, WAIT).unwrap();
        assert_eq!(s.state, JobState::Done);
        s.scalars
            .iter()
            .find(|(k, _)| k == "total")
            .map(|(_, v)| *v)
            .expect("reader total")
    };
    let _ = std::fs::remove_dir_all(&dir_serial);

    // Concurrent: prime the served array, then run the reader beside a
    // neighbor whose worker 1 is scheduled to die mid-pardo.
    let dir = tmp("concurrent");
    let daemon = Daemon::new(DaemonConfig {
        budget_bytes: 1 << 30,
        max_concurrent: 3,
        data_dir: dir.clone(),
        warm_blocks: 256,
    });
    let w = daemon.submit(job(WRITER, "alice", 6, 2, None)).unwrap();
    assert_eq!(daemon.wait(w, WAIT).unwrap().state, JobState::Done);

    let mut plan = FaultPlan::seeded(0xD1E);
    plan.drop = 0.02;
    let mut fault = FaultConfig::new(plan);
    fault.crash = Some(CrashSchedule {
        worker: 1,
        after_iterations: 3,
    });
    let crashy = daemon
        .submit(job(NEIGHBOR, "mallory", 6, 3, Some(fault)))
        .unwrap();
    let reader = daemon.submit(job(READER, "bob", 6, 1, None)).unwrap();

    let rs = daemon.wait(reader, WAIT).expect("reader must finish");
    assert_eq!(
        rs.state,
        JobState::Done,
        "a neighbor's rank death must not fail this job"
    );
    let total = rs
        .scalars
        .iter()
        .find(|(k, _)| k == "total")
        .map(|(_, v)| *v)
        .expect("reader total");
    assert_eq!(
        total.to_bits(),
        serial_total.to_bits(),
        "concurrent reader must be bitwise-identical to the serial run \
         ({total} vs {serial_total})"
    );
    assert!(
        rs.warm_hits > 0,
        "the reader's server must hit the warm cache the writer filled"
    );

    let cs = daemon.wait(crashy, WAIT).expect("crashy job must finish");
    assert_eq!(
        cs.state,
        JobState::Done,
        "the crashing job's own master must recover its rank death"
    );

    // Fairness over the batch stays well-defined (at least the two
    // concurrent jobs contribute rates).
    let jain = daemon.fairness();
    assert!((0.0..=1.0).contains(&jain), "jain out of range: {jain}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
