//! Served-array checkpoint/restart: a fault-tolerant run commits each
//! `server_barrier` as an epoch (I/O servers flush + write per-rank
//! manifests, the master records `epochs.manifest`), and a later run over
//! the same `run_dir` resumes from the last consistent epoch via the
//! `sip_resume_epoch` intrinsic.

use sia_bytecode::ConstBindings;
use sia_runtime::{FaultConfig, FaultPlan, Sip, SipConfig};
use std::path::{Path, PathBuf};

const PRODUCE: &str = "sial produce
aoindex i = 1, n
aoindex j = 1, n
served Big(i,j)
temp t(i,j)
pardo i, j
  t(i,j) = 10.0 * i + j
  prepare Big(i,j) = t(i,j)
endpardo i, j
server_barrier
endsial
";

const RESUME: &str = "sial resume
aoindex i = 1, n
aoindex j = 1, n
served Big(i,j)
distributed Out(i,j)
temp u(i,j)
scalar r
execute sip_resume_epoch r
pardo i, j
  request Big(i,j)
  u(i,j) = Big(i,j)
  put Out(i,j) = u(i,j)
endpardo i, j
sip_barrier
endsial
";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sia-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn config(run_dir: &Path) -> SipConfig {
    // An inert fault plan: no injected faults, but the full fault-tolerance
    // machinery (epoch commits, manifests, retries) is armed.
    SipConfig::builder()
        .workers(2)
        .io_servers(1)
        .segment_size(3)
        .collect_distributed(true)
        .run_dir(run_dir)
        .fault(FaultConfig::new(FaultPlan::seeded(9)))
        .build()
        .unwrap()
}

#[test]
fn restart_resumes_from_epoch_manifest() {
    let dir = tmpdir("manifest");
    let bindings: ConstBindings = [("n".to_string(), 4i64)].into_iter().collect();

    // First run: produce the served array and commit one epoch. (A run
    // killed after this barrier restarts from exactly this state — the
    // manifest only advances at a server_barrier.)
    let produce = sial_frontend::compile(PRODUCE).unwrap();
    Sip::new(config(&dir)).run(produce, &bindings).unwrap();
    assert!(
        dir.join("epochs.manifest").is_file(),
        "master must record the committed epoch"
    );

    // Restarted run over the same directory: sees the committed epoch and
    // serves the persisted blocks.
    let resume = sial_frontend::compile(RESUME).unwrap();
    let out = Sip::new(config(&dir)).run(resume, &bindings).unwrap();
    assert_eq!(
        out.scalars["r"], 1.0,
        "sip_resume_epoch must report the committed epoch count"
    );
    for i in 1..=4i64 {
        for j in 1..=4i64 {
            let block = &out.collected["Out"][&vec![i, j]];
            let want = 10.0 * i as f64 + j as f64;
            assert!(
                block.data().iter().all(|&x| x == want),
                "block ({i},{j}): got {:?}, want {want}",
                &block.data()[..2]
            );
        }
    }

    // A fresh directory reports zero resumed epochs.
    let fresh = tmpdir("fresh");
    let resume2 = sial_frontend::compile(RESUME).unwrap();
    let out2 = Sip::new(config(&fresh)).run(resume2, &bindings).unwrap();
    assert_eq!(out2.scalars["r"], 0.0);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh);
}
