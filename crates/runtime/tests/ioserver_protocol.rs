//! The I/O server's message loop exercised over a real fabric: a client
//! thread speaking the SIP protocol against a server thread, including the
//! write-behind path and shutdown flush.

use sia_blocks::{Block, Shape};
use sia_bytecode::{
    ArrayDecl, ArrayId, ArrayKind, ConstBindings, IndexDecl, IndexId, IndexKind, Program, PutMode,
    Value,
};
use sia_fabric::ReqId;
use sia_runtime::ioserver::IoServer;
use sia_runtime::{BlockKey, Layout, OpId, SegmentConfig, SipMsg, Topology};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn layout() -> Arc<Layout> {
    let program = Program {
        indices: vec![IndexDecl {
            name: "i".into(),
            kind: IndexKind::AoIndex,
            low: Value::Lit(1),
            high: Value::Lit(8),
        }],
        arrays: vec![ArrayDecl {
            name: "S".into(),
            kind: ArrayKind::Served,
            dims: vec![IndexId(0), IndexId(0)],
            sparse: false,
        }],
        ..Default::default()
    };
    Arc::new(
        Layout::new(
            Arc::new(program),
            &ConstBindings::new(),
            SegmentConfig {
                default: 4,
                ..Default::default()
            },
            Topology::new(1, 1),
        )
        .unwrap(),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sia-ioproto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn full_protocol_over_fabric() {
    // Topology: rank 0 plays the worker/client, rank 1 is the I/O server.
    let (mut eps, _stats) = sia_fabric::build::<SipMsg>(2);
    let server_ep = eps.pop().unwrap();
    let client = eps.pop().unwrap();
    let dir = tmpdir("full");
    let l1 = layout();

    let server_dir = dir.clone();
    let server = std::thread::spawn(move || {
        let mut s = IoServer::new(l1, server_ep, server_dir, 2).unwrap();
        s.run().unwrap()
    });

    let io = sia_fabric::Rank(1);
    let blk = |v: f64| Block::filled(Shape::new(&[4, 4]), v);

    // Prepare 5 blocks (capacity 2 → forced write-behind), await acks.
    for i in 1..=5i64 {
        client
            .send(
                io,
                SipMsg::PrepareBlock {
                    key: BlockKey::new(ArrayId(0), &[i, i]),
                    data: blk(i as f64).into(),
                    mode: PutMode::Replace,
                    op: OpId::NONE,
                },
            )
            .unwrap();
    }
    let mut acks = 0;
    while acks < 5 {
        match client.recv_timeout(Duration::from_secs(5)).unwrap().msg {
            SipMsg::PrepareAck { .. } => acks += 1,
            other => panic!("unexpected {other:?}"),
        }
    }

    // Accumulate into one of them.
    client
        .send(
            io,
            SipMsg::PrepareBlock {
                key: BlockKey::new(ArrayId(0), &[3, 3]),
                data: blk(10.0).into(),
                mode: PutMode::Accumulate,
                op: OpId::NONE,
            },
        )
        .unwrap();
    assert!(matches!(
        client.recv_timeout(Duration::from_secs(5)).unwrap().msg,
        SipMsg::PrepareAck { .. }
    ));

    // Request everything back (mix of cache and disk paths).
    for i in 1..=5i64 {
        client
            .send(
                io,
                SipMsg::RequestBlock {
                    key: BlockKey::new(ArrayId(0), &[i, i]),
                    req: ReqId::NONE,
                },
            )
            .unwrap();
        match client.recv_timeout(Duration::from_secs(5)).unwrap().msg {
            SipMsg::BlockData { key, data, .. } => {
                assert_eq!(key, BlockKey::new(ArrayId(0), &[i, i]));
                let want = if i == 3 { 13.0 } else { i as f64 };
                assert!(
                    data.data().iter().all(|&x| (x - want).abs() < 1e-12),
                    "block {i}: got {:?}, want {want}",
                    &data.data()[..2]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // Shutdown flushes everything to disk.
    client.send(io, SipMsg::Shutdown).unwrap();
    let stats = server.join().unwrap();
    assert_eq!(stats.prepares, 6);
    assert!(
        stats.disk_writes >= 5,
        "all dirty blocks flushed: {stats:?}"
    );

    // The files are complete: a fresh server over the same directory serves
    // the accumulated value from disk alone.
    let (mut eps2, _s2) = sia_fabric::build::<SipMsg>(2);
    let server_ep2 = eps2.pop().unwrap();
    let client2 = eps2.pop().unwrap();
    let layout2 = layout();
    let dir2 = dir.clone();
    let server2 = std::thread::spawn(move || {
        let mut s = IoServer::new(layout2, server_ep2, dir2, 2).unwrap();
        s.run().unwrap()
    });
    client2
        .send(
            sia_fabric::Rank(1),
            SipMsg::RequestBlock {
                key: BlockKey::new(ArrayId(0), &[3, 3]),
                req: ReqId::NONE,
            },
        )
        .unwrap();
    match client2.recv_timeout(Duration::from_secs(5)).unwrap().msg {
        SipMsg::BlockData { data, .. } => {
            assert!(data.data().iter().all(|&x| (x - 13.0).abs() < 1e-12));
        }
        other => panic!("unexpected {other:?}"),
    }
    client2.send(sia_fabric::Rank(1), SipMsg::Shutdown).unwrap();
    server2.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delete_array_over_fabric() {
    let (mut eps, _stats) = sia_fabric::build::<SipMsg>(2);
    let server_ep = eps.pop().unwrap();
    let client = eps.pop().unwrap();
    let dir = tmpdir("del");
    let l = layout();
    let server_dir = dir.clone();
    let server = std::thread::spawn(move || {
        let mut s = IoServer::new(l, server_ep, server_dir, 4).unwrap();
        s.run().unwrap()
    });
    let io = sia_fabric::Rank(1);
    client
        .send(
            io,
            SipMsg::PrepareBlock {
                key: BlockKey::new(ArrayId(0), &[1, 1]),
                data: Block::filled(Shape::new(&[4, 4]), 7.0).into(),
                mode: PutMode::Replace,
                op: OpId::NONE,
            },
        )
        .unwrap();
    let _ = client.recv_timeout(Duration::from_secs(5)).unwrap();
    client
        .send(io, SipMsg::DeleteArray { array: ArrayId(0) })
        .unwrap();
    // After deletion the block reads back as zeros.
    client
        .send(
            io,
            SipMsg::RequestBlock {
                key: BlockKey::new(ArrayId(0), &[1, 1]),
                req: ReqId::NONE,
            },
        )
        .unwrap();
    match client.recv_timeout(Duration::from_secs(5)).unwrap().msg {
        SipMsg::BlockData { data, .. } => {
            assert!(data.data().iter().all(|&x| x == 0.0));
        }
        other => panic!("unexpected {other:?}"),
    }
    client.send(io, SipMsg::Shutdown).unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
