//! End-to-end tests: SIAL source → compile → run on the SIP → check results
//! against independently computed references.

use sia_bytecode::ConstBindings;
use sia_runtime::{RuntimeError, SegmentConfig, Sip, SipConfig, SuperRegistry};
use std::collections::BTreeMap;

fn config(workers: usize) -> SipConfig {
    SipConfig::builder()
        .workers(workers)
        .io_servers(1)
        .segments(SegmentConfig {
            default: 4,
            nsub: 2,
            ..Default::default()
        })
        .cache_blocks(64)
        .prefetch_depth(2)
        .collect_distributed(true)
        .build()
        .unwrap()
}

fn bindings(pairs: &[(&str, i64)]) -> ConstBindings {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// A registry with a deterministic synthetic integral generator: element
/// (i,j,..) of block (S1,S2,..) gets a reproducible value from its global
/// coordinates.
fn test_registry(seg: usize) -> SuperRegistry {
    let mut reg = SuperRegistry::new();
    reg.register("compute_integrals", move |args, _env| {
        let segs: Vec<i64> = args[0].segs()?.to_vec();
        let block = args[0].block_mut()?;
        let shape = *block.shape();
        let mut vals = Vec::with_capacity(block.len());
        for idx in shape.indices() {
            let mut v = 0.0;
            for (d, &s) in segs.iter().enumerate() {
                let global = (s as usize - 1) * seg + idx[d];
                v += ((global * (d + 3)) % 17) as f64 * 0.25 - 1.0;
            }
            vals.push(v);
        }
        block.data_mut().copy_from_slice(&vals);
        Ok(())
    });
    reg
}

/// Global element value produced by the `compute_integrals` test kernel.
fn integral_value(seg: usize, global: &[usize]) -> f64 {
    let mut v = 0.0;
    for (d, &g) in global.iter().enumerate() {
        let _ = seg;
        v += ((g * (d + 3)) % 17) as f64 * 0.25 - 1.0;
    }
    v
}

#[test]
fn distributed_put_get_roundtrip() {
    let src = r#"
sial roundtrip
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp t(i,j)
pardo i, j
  t(i,j) = i + 10.0 * j
  put X(i,j) = t(i,j)
endpardo i, j
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(3))
        .run(program, &bindings(&[("n", 3)]))
        .unwrap();
    let x = &out.collected["X"];
    assert_eq!(x.len(), 9);
    for i in 1..=3i64 {
        for j in 1..=3i64 {
            let b = &x[&vec![i, j]];
            assert_eq!(b.shape().dims(), &[4, 4]);
            assert!(b
                .data()
                .iter()
                .all(|&v| (v - (i as f64 + 10.0 * j as f64)).abs() < 1e-12));
        }
    }
}

#[test]
fn accumulate_put_is_atomic_across_workers() {
    // Every pardo iteration accumulates 1.0 into the SAME block; the result
    // must be the iteration count regardless of scheduling.
    let src = r#"
sial accum
aoindex i = 1, n
aoindex k = 1, 1
distributed X(k,k)
temp t(k,k)
temp one(k,k)
pardo i, k
  one(k,k) = 1.0
  put X(k,k) += one(k,k)
endpardo i, k
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(4))
        .run(program, &bindings(&[("n", 25)]))
        .unwrap();
    let x = &out.collected["X"][&vec![1, 1]];
    assert!(x.data().iter().all(|&v| (v - 25.0).abs() < 1e-12));
    let _ = &out.warnings; // accumulates need no barrier: no misuse warnings
    assert!(
        out.warnings.iter().all(|w| !w.contains("barrier misuse")),
        "{:?}",
        out.warnings
    );
}

#[test]
fn paper_contraction_matches_reference() {
    // The §IV-D example: R(M,N,I,J) = Σ_{L,S} V(M,N,L,S)·T(L,S,I,J), with V
    // computed on demand and T built from a deterministic fill.
    let src = r#"
sial ccsd_term
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp tmp(M,N,I,J)
temp tmpsum(M,N,I,J)
temp seed(L,S,I,J)
pardo L, S, I, J
  seed(L,S,I,J) = L + 2.0 * S + 3.0 * I + 4.0 * J
  put T(L,S,I,J) = seed(L,S,I,J)
endpardo L, S, I, J
sip_barrier
pardo M, N, I, J
  tmpsum(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      execute compute_integrals V(M,N,L,S)
      tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
      tmpsum(M,N,I,J) += tmp(M,N,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = tmpsum(M,N,I,J)
endpardo M, N, I, J
sip_barrier
endsial
"#;
    let norb = 2usize;
    let nocc = 2usize;
    let seg = 2usize;
    let mut cfg = config(3);
    cfg.segments.default = seg;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(cfg)
        .with_registry(test_registry(seg))
        .run(
            program,
            &bindings(&[("norb", norb as i64), ("nocc", nocc as i64)]),
        )
        .unwrap();

    // Reference: dense arrays of size (norb*seg)^2 × (nocc*seg)^2.
    let n = norb * seg;
    let _o = nocc * seg;
    let t = |l: usize, s: usize, i: usize, j: usize| -> f64 {
        // seed block (L,S,I,J) filled with L + 2S + 3I + 4J (segment numbers).
        let lb = l / seg + 1;
        let sb = s / seg + 1;
        let ib = i / seg + 1;
        let jb = j / seg + 1;
        lb as f64 + 2.0 * sb as f64 + 3.0 * ib as f64 + 4.0 * jb as f64
    };
    // The registry kernel computes globals as (segment-1)*seg + local index,
    // i.e. 0-based.
    let v =
        |m: usize, nn: usize, l: usize, s: usize| -> f64 { integral_value(seg, &[m, nn, l, s]) };
    // Check every element of every collected R block.
    let r = &out.collected["R"];
    assert_eq!(r.len(), norb * norb * nocc * nocc);
    for (key, block) in r {
        let (mb, nb, ib, jb) = (
            key[0] as usize,
            key[1] as usize,
            key[2] as usize,
            key[3] as usize,
        );
        for idx in block.shape().indices() {
            let m = (mb - 1) * seg + idx[0];
            let nn = (nb - 1) * seg + idx[1];
            let i = (ib - 1) * seg + idx[2];
            let j = (jb - 1) * seg + idx[3];
            let mut want = 0.0;
            for l in 0..n {
                for s in 0..n {
                    want += v(m, nn, l, s) * t(l, s, i, j);
                }
            }
            let got = block.get(&idx[..4]);
            assert!(
                (got - want).abs() < 1e-9,
                "R[{m},{nn},{i},{j}] = {got}, want {want}"
            );
        }
    }
}

#[test]
fn served_arrays_roundtrip_through_io_servers() {
    let src = r#"
sial served_rt
aoindex i = 1, n
aoindex j = 1, n
served V(i,j)
distributed X(i,j)
temp t(i,j)
temp u(i,j)
pardo i, j
  t(i,j) = 100.0 * i + j
  prepare V(i,j) = t(i,j)
endpardo i, j
server_barrier
pardo i, j
  request V(i,j)
  u(i,j) = V(i,j)
  put X(i,j) = u(i,j)
endpardo i, j
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let mut cfg = config(2);
    cfg.io_servers = 2;
    cfg.server_cache_blocks = 2; // force disk traffic
    let out = Sip::new(cfg).run(program, &bindings(&[("n", 3)])).unwrap();
    for i in 1..=3i64 {
        for j in 1..=3i64 {
            let b = &out.collected["X"][&vec![i, j]];
            assert!(b
                .data()
                .iter()
                .all(|&v| (v - (100.0 * i as f64 + j as f64)).abs() < 1e-12));
        }
    }
}

#[test]
fn permutation_assignment_transposes() {
    let src = r#"
sial permute
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp a(i,j)
temp b(j,i)
pardo i, j
  execute compute_integrals a(i,j)
  b(j,i) = a(i,j)
  put X(j,i) = b(j,i)
endpardo i, j
sip_barrier
endsial
"#;
    let seg = 4usize;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .with_registry(test_registry(seg))
        .run(program, &bindings(&[("n", 2)]))
        .unwrap();
    for ib in 1..=2usize {
        for jb in 1..=2usize {
            let b = &out.collected["X"][&vec![jb as i64, ib as i64]];
            for r in 0..seg {
                for c in 0..seg {
                    // X(j,i) element (r,c) = a(i,j) element (c,r); globals
                    // are 0-based in the kernel.
                    let gi = (ib - 1) * seg + c;
                    let gj = (jb - 1) * seg + r;
                    let want = integral_value(seg, &[gi, gj]);
                    assert!((b.get(&[r, c]) - want).abs() < 1e-12);
                }
            }
        }
    }
}

#[test]
fn scalar_reduction_and_allreduce() {
    // total = Σ_blocks Σ_elements x² via per-worker partial sums + allreduce.
    let src = r#"
sial reduce
aoindex i = 1, n
distributed X(i)
temp t(i)
scalar total
pardo i
  t(i) = 3.0
  put X(i) = t(i)
endpardo i
sip_barrier
pardo i
  get X(i)
  total += X(i) * X(i)
endpardo i
sip_barrier
execute sip_allreduce total
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(3))
        .run(program, &bindings(&[("n", 6)]))
        .unwrap();
    // 6 segments × 4 elements × 9.0.
    assert!((out.scalars["total"] - 6.0 * 4.0 * 9.0).abs() < 1e-9);
}

#[test]
fn checkpoint_save_restore() {
    let src = r#"
sial ckpt
aoindex i = 1, n
distributed X(i)
temp t(i)
temp z(i)
pardo i
  t(i) = 7.5
  put X(i) = t(i)
endpardo i
sip_barrier
blocks_to_list X "snap"
pardo i
  z(i) = 0.0
  put X(i) = z(i)
endpardo i
sip_barrier
list_to_blocks X "snap"
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .run(program, &bindings(&[("n", 4)]))
        .unwrap();
    for i in 1..=4i64 {
        let b = &out.collected["X"][&vec![i]];
        assert!(
            b.data().iter().all(|&v| (v - 7.5).abs() < 1e-12),
            "block {i} should be restored to 7.5, got {:?}",
            b.data()
        );
    }
}

#[test]
fn dry_run_rejects_infeasible_and_suggests_workers() {
    let src = r#"
sial big
laindex i = 1, 64
distributed D(i,i,i)
temp t(i,i,i)
pardo i
  t(i,i,i) = 0.0
  put D(i,i,i) = t(i,i,i)
endpardo i
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let mut cfg = config(2);
    cfg.cache_blocks = 1;
    // 64³ blocks × 4³ doubles × 8 = 134 MB total; budget of 8 MB per worker
    // needs ≥ 17 workers.
    cfg.memory_budget = Some(8 << 20);
    let err = Sip::new(cfg).run(program, &bindings(&[])).unwrap_err();
    match err {
        RuntimeError::Infeasible {
            sufficient_workers, ..
        } => {
            assert!(sufficient_workers > 2, "got {sufficient_workers}");
            assert!(sufficient_workers < 100);
        }
        other => panic!("expected Infeasible, got {other}"),
    }
}

#[test]
fn barrier_misuse_detected() {
    // Replace-put and get of the same array with no separating barrier.
    let src = r#"
sial misuse
aoindex i = 1, n
distributed X(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  put X(i) = t(i)
endpardo i
pardo i
  get X(i)
  u(i) = X(i)
endpardo i
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    // Run a few times: the race needs get and put of the same block in one
    // epoch, which the home detects deterministically since both happen.
    let out = Sip::new(config(2))
        .run(program, &bindings(&[("n", 8)]))
        .unwrap();
    assert!(
        out.warnings.iter().any(|w| w.contains("barrier misuse")),
        "expected a misuse warning, got {:?}",
        out.warnings
    );
}

#[test]
fn subindex_slice_insert_roundtrip() {
    // Build a local block, slice each sub-block through a subindexed temp,
    // accumulate it back, and verify doubling.
    let src = r#"
sial subidx
aoindex i = 1, n
aoindex j = 1, n
local Xi(i,j)
temp Xii(ii,j)
subindex ii of i
distributed OUT(i,j)
temp t(i,j)
pardo j
  do i
    execute compute_integrals t(i,j)
    Xi(i,j) = t(i,j)
    do ii in i
      Xii(ii,j) = Xi(ii,j)
      Xi(ii,j) = Xii(ii,j)
    enddo ii
    t(i,j) = Xi(i,j)
    put OUT(i,j) = t(i,j)
  enddo i
endpardo j
sip_barrier
endsial
"#;
    let seg = 4usize;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .with_registry(test_registry(seg))
        .run(program, &bindings(&[("n", 2)]))
        .unwrap();
    // Slice-then-insert is the identity, so OUT == integrals.
    for ib in 1..=2usize {
        for jb in 1..=2usize {
            let b = &out.collected["OUT"][&vec![ib as i64, jb as i64]];
            for r in 0..seg {
                for c in 0..seg {
                    let wi = (ib - 1) * seg + r;
                    let wj = (jb - 1) * seg + c;
                    let want = integral_value(seg, &[wi, wj]);
                    assert!((b.get(&[r, c]) - want).abs() < 1e-12);
                }
            }
        }
    }
}

#[test]
fn where_clause_limits_work() {
    let src = r#"
sial tri
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp t(i,j)
pardo i, j where i < j
  t(i,j) = 1.0
  put X(i,j) = t(i,j)
endpardo i, j
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .run(program, &bindings(&[("n", 4)]))
        .unwrap();
    // Only the strict upper triangle was written: 6 of 16 blocks.
    assert_eq!(out.collected.get("X").map(BTreeMap::len).unwrap_or(0), 6);
    assert_eq!(out.profile.iterations, 6);
}

#[test]
fn procedures_and_if_control_flow() {
    let src = r#"
sial procs
scalar a
scalar b
proc bump
  a = a + 1.0
  if a > 2.0
    b = b + 10.0
  else
    b = b + 1.0
  endif
endproc bump
call bump
call bump
call bump
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2)).run(program, &bindings(&[])).unwrap();
    assert_eq!(out.scalars["a"], 3.0);
    assert_eq!(out.scalars["b"], 12.0); // 1 + 1 + 10
}

#[test]
fn prefetch_produces_cache_hits() {
    let src = r#"
sial prefetch
aoindex i = 1, n
aoindex k = 1, 1
distributed X(i)
distributed R(k)
temp t(i)
temp acc(k)
scalar s
pardo i
  t(i) = 2.0
  put X(i) = t(i)
endpardo i
sip_barrier
pardo k
  s = 0.0
  do i
    get X(i)
    s += X(i) * X(i)
  enddo i
  acc(k) = s
  put R(k) = acc(k)
endpardo k
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let mut cfg = config(2);
    cfg.prefetch_depth = 4;
    let out = Sip::new(cfg).run(program, &bindings(&[("n", 16)])).unwrap();
    let r = &out.collected["R"][&vec![1]];
    // s = Σ over 16 segments × 4 elements of 2.0² = 256; acc filled with s.
    assert!(
        r.data().iter().all(|&v| (v - 256.0).abs() < 1e-9),
        "{:?}",
        r.data()
    );
    // Prefetch should have produced in-flight completions and hits.
    assert!(out.profile.metrics.cache.hits + out.profile.metrics.cache.in_flight_hits > 0);
}

#[test]
fn prefetch_skips_blocks_outside_declared_range() {
    // Regression: the prefetcher only bounded look-ahead against the loop's
    // upper bound, so a guarded loop ranging past the array's declared
    // segments (`do L … if L < 3`) speculatively fetched nonexistent blocks
    // X(3..6), which the home answered with spurious zero allocations. The
    // declared-range check must drop those keys: with segment range 1..=2
    // for X, the only cold lookups are the two real blocks.
    let src = r#"
sial pf_oob
aoindex i = 1, n
aoindex L = 1, m
aoindex k = 1, 1
distributed X(i)
distributed R(k)
temp t(i)
temp acc(k)
scalar s
pardo i
  t(i) = 2.0
  put X(i) = t(i)
endpardo i
sip_barrier
pardo k
  s = 0.0
  do L
    if L < 2.5
      get X(L)
      s += X(L) * X(L)
    endif
  enddo L
  acc(k) = s
  put R(k) = acc(k)
endpardo k
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    // Two workers so gets can be remote (the prefetcher no-ops on blocks
    // homed locally); look-ahead deep enough that the old code speculated
    // far past X's two declared segments (X(3)..X(10)).
    let mut cfg = config(2);
    cfg.prefetch_depth = 8;
    let out = Sip::new(cfg)
        .run(program, &bindings(&[("n", 2), ("m", 10)]))
        .unwrap();
    // s = 2 segments × 4 elements × 2.0² = 32.
    let r = &out.collected["R"][&vec![1]];
    assert!(r.data().iter().all(|&v| (v - 32.0).abs() < 1e-9), "{r:?}");
    // Cold lookups can only be the two real blocks X(1), X(2); every
    // speculative key beyond the declared range must have been dropped.
    assert!(
        out.profile.metrics.cache.misses <= 2,
        "prefetch fetched blocks outside X's declared segments: {} cold lookups",
        out.profile.metrics.cache.misses
    );
}

#[test]
fn delete_array_clears_blocks() {
    let src = r#"
sial del
aoindex i = 1, n
distributed X(i)
temp t(i)
pardo i
  t(i) = 5.0
  put X(i) = t(i)
endpardo i
sip_barrier
delete X
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .run(program, &bindings(&[("n", 4)]))
        .unwrap();
    assert!(!out.collected.contains_key("X") || out.collected["X"].is_empty());
}

#[test]
fn scaled_block_operations() {
    let src = r#"
sial scaled
aoindex i = 1, n
distributed X(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 4.0
  u(i) = 0.5 * t(i)
  u(i) += 2.0 * t(i)
  u(i) *= 2.0
  put X(i) = u(i)
endpardo i
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .run(program, &bindings(&[("n", 2)]))
        .unwrap();
    // (0.5·4 + 2·4) × 2 = 20.
    for i in 1..=2i64 {
        let b = &out.collected["X"][&vec![i]];
        assert!(b.data().iter().all(|&v| (v - 20.0).abs() < 1e-12));
    }
}

#[test]
fn single_worker_degenerate_case() {
    let src = r#"
sial one
aoindex i = 1, n
distributed X(i)
temp t(i)
scalar s
pardo i
  t(i) = 1.0
  put X(i) = t(i)
endpardo i
sip_barrier
pardo i
  get X(i)
  s += X(i) * X(i)
endpardo i
sip_barrier
execute sip_allreduce s
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let mut cfg = config(1);
    cfg.io_servers = 0;
    let out = Sip::new(cfg).run(program, &bindings(&[("n", 3)])).unwrap();
    assert!((out.scalars["s"] - 12.0).abs() < 1e-12);
}

#[test]
fn profile_reports_instructions() {
    let src = r#"
sial prof
aoindex i = 1, n
distributed X(i)
temp t(i)
pardo i
  t(i) = 1.0
  put X(i) = t(i)
endpardo i
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .run(program, &bindings(&[("n", 8)]))
        .unwrap();
    assert_eq!(out.profile.iterations, 8);
    // The put line exists and was executed 8 times across workers.
    let put_line = out
        .profile
        .lines
        .iter()
        .find(|l| l.text.starts_with("put "))
        .expect("put line in profile");
    assert_eq!(put_line.count, 8);
    assert!(out.traffic.messages > 0);
    let rendered = format!("{}", out.profile);
    assert!(rendered.contains("SIP profile"));
}

#[test]
fn exit_breaks_innermost_loop() {
    // Sum i over segments, but exit the inner loop once j reaches 3: every
    // pardo iteration counts min(3, n) inner steps.
    let src = r#"
sial exit_test
aoindex i = 1, n
aoindex j = 1, n
scalar count
pardo i
  do j
    if j > 3.0
      exit
    endif
    count += 1.0
  enddo j
endpardo i
sip_barrier
execute sip_allreduce count
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .run(program, &bindings(&[("n", 6)]))
        .unwrap();
    // 6 pardo iterations × 3 counted inner steps.
    assert!((out.scalars["count"] - 18.0).abs() < 1e-12);
}

#[test]
fn exit_from_nested_loop_only_breaks_inner() {
    let src = r#"
sial exit_nested
aoindex i = 1, n
aoindex j = 1, n
aoindex k = 1, 1
scalar count
pardo k
  do i
    do j
      if j > 1.0
        exit
      endif
      count += 1.0
    enddo j
    count += 100.0
  enddo i
endpardo k
sip_barrier
execute sip_allreduce count
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(2))
        .run(program, &bindings(&[("n", 4)]))
        .unwrap();
    // Outer loop runs all 4 times (4 × 100), inner counts once per outer.
    assert!((out.scalars["count"] - 404.0).abs() < 1e-12);
}

#[test]
fn pardo_inside_do_loop_runs_every_encounter() {
    // Regression: the master must hand out a fresh iteration space every
    // time a pardo is re-entered (a pardo inside a `do` runs once per outer
    // iteration; early versions served the space only on the first pass).
    let src = r#"
sial pardo_in_do
index sweep = 1, 5
aoindex i = 1, n
scalar count
do sweep
  pardo i
    count += 1.0
  endpardo i
  sip_barrier
enddo sweep
execute sip_allreduce count
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let out = Sip::new(config(3))
        .run(program, &bindings(&[("n", 4)]))
        .unwrap();
    assert!(
        (out.scalars["count"] - 20.0).abs() < 1e-12,
        "5 sweeps × 4 pardo iterations, got {}",
        out.scalars["count"]
    );
    assert_eq!(out.profile.iterations, 20);
}

#[test]
fn fixed_chunk_policy_runs_correctly() {
    let src = r#"
sial fixed_chunks
aoindex i = 1, n
scalar count
pardo i
  count += 1.0
endpardo i
sip_barrier
execute sip_allreduce count
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let mut cfg = config(3);
    cfg.chunk_policy = Some(sia_runtime::scheduler::ChunkPolicy::Fixed { size: 2 });
    let out = Sip::new(cfg).run(program, &bindings(&[("n", 11)])).unwrap();
    assert!((out.scalars["count"] - 11.0).abs() < 1e-12);
    assert_eq!(out.profile.iterations, 11);
}

#[test]
fn round_robin_placement_preserves_results() {
    let src = r#"
sial rr
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp t(i,j)
scalar s
pardo i, j
  t(i,j) = i + 10.0 * j
  put X(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i, j
  get X(i,j)
  s += X(i,j) * X(i,j)
endpardo i, j
sip_barrier
execute sip_allreduce s
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let run = |placement| {
        let mut cfg = config(3);
        cfg.placement = placement;
        Sip::new(cfg)
            .run(program.clone(), &bindings(&[("n", 3)]))
            .unwrap()
            .scalars["s"]
    };
    let hash = run(sia_runtime::Placement::Hash);
    let rr = run(sia_runtime::Placement::RoundRobin);
    assert!(
        (hash - rr).abs() < 1e-9,
        "placement must not change results"
    );
}
