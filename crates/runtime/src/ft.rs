//! Fault-tolerance state and the epoch-checkpoint file format.
//!
//! All of this is live only when [`SipConfig::fault`](crate::SipConfig) is
//! set; a fault-free run never allocates an [`FtState`] and keeps the exact
//! counter-based ack tracking of the original hot path.
//!
//! The recovery protocol (see DESIGN.md "Fault model & recovery"):
//!
//! * Every PUT/PREPARE carries a content-derived [`OpId`]; receivers keep a
//!   window of applied ids and suppress duplicates, which makes sender
//!   retries, fabric duplication, *and* chunk re-execution idempotent.
//! * Senders retain tracked operations (payload included) until acked, and
//!   retry with exponential backoff.
//! * Each worker checkpoints its authoritative distributed blocks (plus the
//!   applied-op window) to `run_dir` at every `sip_barrier` release; when
//!   the master declares a rank dead it restores that rank's last
//!   checkpoint to the surviving homes, broadcasts the death, and survivors
//!   replay their current-epoch put journals that were homed at the corpse.

use crate::layout::FaultConfig;
use crate::msg::{BlockKey, OpId, SipMsg};
use sia_blocks::{Block, BlockHandle, Shape};
use sia_bytecode::{ArrayId, PutMode};
use sia_fabric::ReqId;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A tracked, unacknowledged PUT or PREPARE. The payload is retained so the
/// operation can be retried (or re-routed to a new home) verbatim; the
/// handle shares the wire message's allocation, so retention is free.
#[derive(Debug, Clone)]
pub(crate) struct PendingOp {
    pub key: BlockKey,
    pub data: BlockHandle,
    pub mode: PutMode,
    /// True for PREPARE (served, homed at an I/O server), false for PUT.
    pub served: bool,
    pub sent_at: Instant,
    /// Current timeout (grows by the backoff factor per retry).
    pub timeout: Duration,
    pub attempts: u32,
}

/// A tracked, unanswered GET or REQUEST.
#[derive(Debug, Clone)]
pub(crate) struct FetchState {
    pub req: ReqId,
    /// True for REQUEST (served), false for GET (distributed).
    pub served: bool,
    pub sent_at: Instant,
    pub timeout: Duration,
    pub attempts: u32,
}

/// A journaled remote put (replayed to the new home if the old home dies
/// within the current barrier epoch).
#[derive(Debug, Clone)]
pub(crate) struct JournalEntry {
    pub op: u64,
    pub key: BlockKey,
    pub data: BlockHandle,
    pub mode: PutMode,
}

/// A re-queued chunk handed to a worker already parked at the post-pardo
/// barrier.
#[derive(Debug)]
pub(crate) struct TakeoverChunk {
    pub pardo_pc: u32,
    pub epoch: u64,
    pub chunk: u64,
    pub iters: Vec<Vec<i64>>,
}

/// Per-worker fault-tolerance state (absent on fault-free runs).
#[derive(Debug)]
pub(crate) struct FtState {
    pub cfg: FaultConfig,
    /// Unacknowledged tracked operations, keyed by op id.
    pub pending: HashMap<u64, PendingOp>,
    /// Remote distributed puts of the current barrier epoch (cleared at
    /// `sip_barrier` release). Only kept when a crash is expected.
    pub journal: Vec<JournalEntry>,
    /// Op ids applied at this rank (home side), tagged with the barrier
    /// epoch they arrived in; pruned two epochs back.
    pub applied: HashMap<u64, u64>,
    /// Unanswered fetches by block key.
    pub fetches: HashMap<BlockKey, FetchState>,
    /// Dead workers by worker index (agreed via `RankDead` broadcasts).
    pub dead: Vec<bool>,
    /// Last heartbeat sent to the master.
    pub last_beat: Instant,
    /// Chunk-ack accounting: chunks execute FIFO, so the head entry is the
    /// chunk the next completed iteration belongs to.
    pub chunk_acks: VecDeque<(u64, usize)>,
    /// Re-queued chunks received while parked at a barrier.
    pub takeovers: VecDeque<TakeoverChunk>,
    /// This worker executed its scheduled crash.
    pub crashed: bool,
    /// A takeover chunk is being executed (puts count as pardo-context for
    /// op-id derivation even though `Worker::pardo` is `None`).
    pub in_takeover: bool,
}

impl FtState {
    pub(crate) fn new(cfg: FaultConfig, workers: usize) -> Self {
        FtState {
            cfg,
            pending: HashMap::new(),
            journal: Vec::new(),
            applied: HashMap::new(),
            fetches: HashMap::new(),
            dead: vec![false; workers],
            last_beat: Instant::now(),
            chunk_acks: VecDeque::new(),
            takeovers: VecDeque::new(),
            crashed: false,
            in_takeover: false,
        }
    }

    /// Records an applied op id; returns false when it was already applied
    /// (i.e. this is a duplicate to suppress).
    pub(crate) fn note_applied(&mut self, op: u64, epoch: u64) -> bool {
        self.applied.insert(op, epoch).is_none()
    }

    /// Drops applied-op records old enough that no retry or replay can
    /// still reference them (journals clear at each barrier, so anything
    /// two epochs back is unreachable).
    pub(crate) fn prune_applied(&mut self, current_epoch: u64) {
        self.applied.retain(|_, e| *e + 2 > current_epoch);
    }

    /// Arms (or re-arms) a tracked PUT/PREPARE flight and returns the wire
    /// message to send. This is the single construction point for flights:
    /// first sends, journal replays after a rank death, and the fault-free
    /// path (via [`flight_msg`]) all build the same shape. The retained
    /// pending payload and the wire payload share one allocation.
    pub(crate) fn arm_flight(
        &mut self,
        op: OpId,
        key: BlockKey,
        data: BlockHandle,
        mode: PutMode,
        served: bool,
    ) -> SipMsg {
        self.pending.insert(
            op.0,
            PendingOp {
                key,
                data: data.clone(),
                mode,
                served,
                sent_at: Instant::now(),
                timeout: self.cfg.retry_timeout,
                attempts: 0,
            },
        );
        flight_msg(op, key, data, mode, served)
    }
}

/// Builds the wire message for a PUT (distributed home) or PREPARE (served,
/// I/O server) flight.
pub(crate) fn flight_msg(
    op: OpId,
    key: BlockKey,
    data: BlockHandle,
    mode: PutMode,
    served: bool,
) -> SipMsg {
    if served {
        SipMsg::PrepareBlock {
            key,
            data,
            mode,
            op,
        }
    } else {
        SipMsg::PutBlock {
            key,
            data,
            mode,
            op,
        }
    }
}

/// Derives a content-based op id: FNV-1a over the instruction pc, the
/// barrier epoch, the destination key, the full index environment, and a
/// per-iteration sequence number (disambiguating two textually identical
/// puts executed under the same environment, e.g. a procedure called
/// twice). Outside pardos (SPMD execution) the worker index is mixed in so
/// each worker's accumulate counts once; inside pardos (and takeover
/// replays) it is *not*, so a re-executed iteration reproduces the same id
/// on any worker.
pub(crate) fn derive_op_id(
    pc: u32,
    epoch: u64,
    key: &BlockKey,
    env: &[i64],
    seq: u64,
    spmd_worker: Option<usize>,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(pc as u64);
    mix(epoch);
    mix(key.array.0 as u64);
    for &s in key.segs() {
        mix(s as u64);
    }
    for &v in env {
        mix(v as u64);
    }
    mix(seq);
    if let Some(w) = spmd_worker {
        mix(0x5350_4d44); // "SPMD" tag keeps pardo/non-pardo ids disjoint
        mix(w as u64);
    }
    if h == 0 {
        h = 1; // 0 is the untracked sentinel
    }
    h
}

// ---- epoch checkpoint files -------------------------------------------------

const EPOCH_MAGIC: &[u8; 8] = b"SIAEPCK1";

/// Path of worker `widx`'s epoch checkpoint inside `run_dir`.
pub(crate) fn epoch_ckpt_path(run_dir: &Path, widx: usize) -> PathBuf {
    run_dir.join(format!("ftckpt_w{widx}.bin"))
}

/// Writes a worker's epoch checkpoint: its authoritative distributed blocks
/// plus the applied-op window, atomically (tmp + rename) so a reader only
/// ever sees a complete epoch. The snapshot handles share the authoritative
/// store's allocations — no block is copied to be checkpointed.
pub(crate) fn write_epoch_checkpoint(
    path: &Path,
    epoch: u64,
    blocks: &[(BlockKey, BlockHandle)],
    applied: &HashMap<u64, u64>,
) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(EPOCH_MAGIC)?;
        f.write_all(&epoch.to_le_bytes())?;
        f.write_all(&(blocks.len() as u64).to_le_bytes())?;
        for (key, block) in blocks {
            f.write_all(&key.array.0.to_le_bytes())?;
            f.write_all(&[key.rank])?;
            for s in key.segs() {
                f.write_all(&s.to_le_bytes())?;
            }
            let dims = block.shape().dims();
            f.write_all(&(dims.len() as u32).to_le_bytes())?;
            for &d in dims {
                f.write_all(&(d as u64).to_le_bytes())?;
            }
            for &v in block.data() {
                f.write_all(&v.to_le_bytes())?;
            }
        }
        f.write_all(&(applied.len() as u64).to_le_bytes())?;
        for (&op, &ep) in applied {
            f.write_all(&op.to_le_bytes())?;
            f.write_all(&ep.to_le_bytes())?;
        }
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads an epoch checkpoint back. Returns `(epoch, blocks, applied ops)`.
#[allow(clippy::type_complexity)]
pub(crate) fn read_epoch_checkpoint(
    path: &Path,
) -> std::io::Result<(u64, Vec<(BlockKey, Block)>, Vec<u64>)> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != EPOCH_MAGIC {
        return Err(bad("bad epoch checkpoint magic"));
    }
    let mut u64buf = [0u8; 8];
    f.read_exact(&mut u64buf)?;
    let epoch = u64::from_le_bytes(u64buf);
    f.read_exact(&mut u64buf)?;
    let nblocks = u64::from_le_bytes(u64buf) as usize;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let mut u32buf = [0u8; 4];
        f.read_exact(&mut u32buf)?;
        let array = ArrayId(u32::from_le_bytes(u32buf));
        let mut rank = [0u8; 1];
        f.read_exact(&mut rank)?;
        let rank = rank[0] as usize;
        if rank > 8 {
            return Err(bad("block rank > 8"));
        }
        let mut segs = Vec::with_capacity(rank);
        for _ in 0..rank {
            f.read_exact(&mut u32buf)?;
            segs.push(i32::from_le_bytes(u32buf) as i64);
        }
        let key = BlockKey::new(array, &segs);
        f.read_exact(&mut u32buf)?;
        let ndims = u32::from_le_bytes(u32buf) as usize;
        if ndims > 8 {
            return Err(bad("block dims > 8"));
        }
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            f.read_exact(&mut u64buf)?;
            dims.push(u64::from_le_bytes(u64buf) as usize);
        }
        let shape = Shape::new(&dims);
        let mut block = Block::zeros(shape);
        for v in block.data_mut() {
            f.read_exact(&mut u64buf)?;
            *v = f64::from_le_bytes(u64buf);
        }
        blocks.push((key, block));
    }
    f.read_exact(&mut u64buf)?;
    let nops = u64::from_le_bytes(u64buf) as usize;
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        f.read_exact(&mut u64buf)?;
        ops.push(u64::from_le_bytes(u64buf));
        f.read_exact(&mut u64buf)?; // epoch tag, not needed by the restorer
    }
    Ok((epoch, blocks, ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_stable_and_context_sensitive() {
        let key = BlockKey::new(ArrayId(2), &[1, 3]);
        let env = [1, 3, 0, 2];
        let a = derive_op_id(10, 1, &key, &env, 0, None);
        let b = derive_op_id(10, 1, &key, &env, 0, None);
        assert_eq!(a, b, "same context must reproduce the id");
        assert_ne!(a, 0);
        assert_ne!(a, derive_op_id(11, 1, &key, &env, 0, None), "pc matters");
        assert_ne!(a, derive_op_id(10, 2, &key, &env, 0, None), "epoch matters");
        assert_ne!(
            a,
            derive_op_id(10, 1, &key, &env, 1, None),
            "occurrence sequence matters"
        );
        assert_ne!(
            a,
            derive_op_id(10, 1, &key, &[1, 3, 0, 9], 0, None),
            "index env matters"
        );
        let w0 = derive_op_id(10, 1, &key, &env, 0, Some(0));
        let w1 = derive_op_id(10, 1, &key, &env, 0, Some(1));
        assert_ne!(w0, w1, "SPMD puts must count once per worker");
        assert_ne!(a, w0, "pardo and SPMD ids must not collide");
    }

    #[test]
    fn epoch_checkpoint_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sia-ft-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = epoch_ckpt_path(&dir, 1);
        let key = BlockKey::new(ArrayId(4), &[2, 1]);
        let mut block = Block::zeros(Shape::new(&[2, 3]));
        for (i, v) in block.data_mut().iter_mut().enumerate() {
            *v = i as f64 * 0.5;
        }
        let mut applied = HashMap::new();
        applied.insert(77u64, 3u64);
        applied.insert(99u64, 3u64);
        write_epoch_checkpoint(&path, 3, &[(key, block.clone().into())], &applied).unwrap();
        let (epoch, blocks, ops) = read_epoch_checkpoint(&path).unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].0, key);
        assert_eq!(blocks[0].1.data(), block.data());
        let mut ops = ops;
        ops.sort_unstable();
        assert_eq!(ops, vec![77, 99]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
