//! Cross-rank event tracing.
//!
//! Every rank — worker, I/O server, master — owns a [`TraceSink`]: a
//! preallocated ring buffer of fixed-size [`TraceEvent`]s. Recording is a
//! couple of integer stores (no allocation, no locks, no syscalls beyond
//! the monotonic clock reads the profiler already performs); a disabled
//! sink is a `None` and every record call is a single branch. At shutdown
//! the master gathers the per-rank buffers — workers ship theirs inside
//! `WorkerDone`, I/O servers in a `ServerDone` message — and the runtime
//! merges them into a [`TraceTimeline`] exported as Chrome-trace JSON
//! (load in Perfetto or `chrome://tracing`).
//!
//! Event vocabulary:
//! * **instruction spans** — one per executed super-instruction (pc +
//!   class), the worker's busy backbone;
//! * **wait spans** — blocked intervals attributed by
//!   [`WaitCause`](crate::metrics::WaitCause), nested inside the
//!   instruction that blocked;
//! * **comm-flight spans** — remote fetch issue → `BlockData` arrival,
//!   correlated by `ReqId` and drawn as async events so concurrent
//!   prefetches stack; the overlap metric integrates these against wait;
//! * **cache fill/evict, serve, flush, checkpoint/restore, recovery** —
//!   bookkeeping instants and service spans from all ranks.
//!
//! All timestamps are nanoseconds since a run epoch shared by every
//! rank's sink (one `Instant` captured before the ranks spawn), so the
//! merged timeline needs no clock alignment.

use crate::metrics::{JsonWriter, WaitCause};
use crate::msg::BlockKey;
use sia_bytecode::{InstructionClass, Program};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::time::Instant;

/// Which communication round-trip a flight span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// GET/REQUEST: remote block fetch.
    Get,
    /// PUT: accumulate/replace round-trip (ack-correlated).
    Put,
    /// PREPARE: served-array write round-trip.
    Prepare,
}

impl CommOp {
    fn label(self) -> &'static str {
        match self {
            CommOp::Get => "get",
            CommOp::Put => "put",
            CommOp::Prepare => "prepare",
        }
    }
}

/// Recovery happenings recorded by the master and survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A rank was declared dead.
    RankDead,
    /// A dead worker's unacked chunks were re-queued.
    Requeue,
    /// Checkpointed blocks were restored to a new home.
    Restore,
    /// A survivor executed a takeover chunk.
    Takeover,
}

impl RecoveryEvent {
    fn label(self) -> &'static str {
        match self {
            RecoveryEvent::RankDead => "rank dead",
            RecoveryEvent::Requeue => "requeue chunks",
            RecoveryEvent::Restore => "restore blocks",
            RecoveryEvent::Takeover => "takeover chunk",
        }
    }
}

/// The typed payload of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// One executed super-instruction (span).
    Instruction {
        /// Program counter.
        pc: u32,
        /// Instruction class (§V-A).
        class: InstructionClass,
    },
    /// A blocked interval (span), attributed by cause.
    Wait {
        /// Why the rank was blocked.
        cause: WaitCause,
    },
    /// A communication round-trip in flight (async span).
    Flight {
        /// Round-trip type.
        op: CommOp,
        /// The block in flight.
        key: BlockKey,
        /// Correlation id (`ReqId`/`OpId` value, or a trace-local
        /// sequence number when the run allocates neither).
        id: u64,
    },
    /// One hop of a multicast tree push: a broadcast-shaped block pushed
    /// (root) or forwarded (inner node) toward this rank's tree children.
    /// Rendered as an async pair on the comm thread, correlated upstream
    /// by `parent`.
    Multicast {
        /// The pushed block.
        key: BlockKey,
        /// This hop's globally unique flight id (rank ⊕ sequence).
        id: u64,
        /// The upstream hop's flight id; 0 when this rank is the root.
        parent: u64,
    },
    /// A block served to a requester (span on I/O servers, where it can
    /// include a disk read; instant on workers serving home blocks).
    Serve {
        /// The block served.
        key: BlockKey,
        /// Whether the serve went to disk.
        disk: bool,
    },
    /// Dirty-block write-back (span).
    Flush {
        /// Blocks written.
        blocks: u64,
    },
    /// A remote copy entered the cache (instant).
    CacheFill {
        /// The cached block.
        key: BlockKey,
        /// Payload bytes.
        bytes: u64,
    },
    /// A cached copy was evicted (instant).
    CacheEvict {
        /// The evicted block.
        key: BlockKey,
        /// Payload bytes.
        bytes: u64,
    },
    /// Checkpoint save or restore round-trip (span).
    Checkpoint {
        /// True for restore, false for save.
        restore: bool,
    },
    /// A recovery happening (instant).
    Recovery {
        /// What happened.
        what: RecoveryEvent,
    },
    /// A labelled instant (barrier releases, epoch commits).
    Mark {
        /// Static label.
        label: &'static str,
    },
}

/// One recorded event: a kind plus a `[start, end]` interval in
/// nanoseconds since the run epoch (instants have `start == end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start, ns since the run epoch.
    pub t_start_ns: u64,
    /// End, ns since the run epoch (== start for instants).
    pub t_end_ns: u64,
    /// Payload.
    pub kind: EventKind,
}

/// Default per-rank ring capacity, in events.
pub const DEFAULT_TRACE_EVENTS: usize = 1 << 16;

struct SinkInner {
    epoch: Instant,
    buf: Vec<TraceEvent>,
    // Next slot to overwrite once the buffer is full.
    head: usize,
    dropped: u64,
}

/// A per-rank event recorder.
///
/// Disabled sinks (the default) hold no buffer and record nothing; an
/// enabled sink preallocates its whole ring up front so the record path
/// never allocates. When the ring fills, the oldest events are
/// overwritten and counted as dropped — tracing degrades by forgetting
/// history, never by stalling the rank.
pub struct TraceSink(Option<Box<SinkInner>>);

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "TraceSink(off)"),
            Some(s) => write!(
                f,
                "TraceSink(on, {}/{} events, {} dropped)",
                s.buf.len(),
                s.buf.capacity(),
                s.dropped
            ),
        }
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::disabled()
    }
}

impl TraceSink {
    /// The no-op sink: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        TraceSink(None)
    }

    /// An enabled sink with a preallocated ring of `capacity` events,
    /// timestamping against `epoch` (shared by every rank of a run).
    pub fn enabled(capacity: usize, epoch: Instant) -> Self {
        TraceSink(Some(Box::new(SinkInner {
            epoch,
            buf: Vec::with_capacity(capacity.max(16)),
            head: 0,
            dropped: 0,
        })))
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the run epoch (0 when disabled).
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        match &self.0 {
            Some(s) => s.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if let Some(s) = &mut self.0 {
            if s.buf.len() < s.buf.capacity() {
                s.buf.push(ev);
            } else if !s.buf.is_empty() {
                s.buf[s.head] = ev;
                s.head = (s.head + 1) % s.buf.len();
                s.dropped += 1;
            }
        }
    }

    /// Records a span from explicit epoch-relative nanoseconds.
    pub(crate) fn span(&mut self, kind: EventKind, t_start_ns: u64, t_end_ns: u64) {
        if self.0.is_some() {
            self.push(TraceEvent {
                t_start_ns,
                t_end_ns: t_end_ns.max(t_start_ns),
                kind,
            });
        }
    }

    /// Records a span from `start` until now.
    pub(crate) fn span_since(&mut self, kind: EventKind, start: Instant) {
        if let Some(s) = &self.0 {
            let t0 = start.saturating_duration_since(s.epoch).as_nanos() as u64;
            let t1 = s.epoch.elapsed().as_nanos() as u64;
            self.push(TraceEvent {
                t_start_ns: t0,
                t_end_ns: t1.max(t0),
                kind,
            });
        }
    }

    /// Records an instant at the current time.
    pub(crate) fn instant(&mut self, kind: EventKind) {
        if self.0.is_some() {
            let t = self.now_ns();
            self.push(TraceEvent {
                t_start_ns: t,
                t_end_ns: t,
                kind,
            });
        }
    }

    /// Takes the recorded events (ring order restored to chronological)
    /// and the dropped count, leaving the sink enabled but empty.
    pub(crate) fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        match &mut self.0 {
            None => (Vec::new(), 0),
            Some(s) => {
                let head = s.head;
                s.head = 0;
                let dropped = std::mem::take(&mut s.dropped);
                let mut buf = std::mem::take(&mut s.buf);
                buf.rotate_left(head);
                (buf, dropped)
            }
        }
    }
}

/// One rank's contribution to the merged timeline.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    /// Fabric rank number.
    pub rank: usize,
    /// Human label ("master", "worker 1", "io 3").
    pub label: String,
    /// Events in chronological record order.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrite on this rank.
    pub dropped: u64,
}

/// The merged, all-ranks event timeline of one run.
#[derive(Debug, Clone, Default)]
pub struct TraceTimeline {
    /// Per-rank traces, rank order.
    pub ranks: Vec<RankTrace>,
}

impl TraceTimeline {
    /// Total events across all ranks.
    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }

    /// Exports the timeline as Chrome-trace JSON (the "JSON Array
    /// Format" inside a `traceEvents` object, as Perfetto and
    /// `chrome://tracing` load it). Each rank renders as a process:
    /// tid 0 carries the synchronous execute spans (instruction, wait,
    /// serve, checkpoint), comm flights render as async `b`/`e` pairs so
    /// concurrent prefetches stack instead of colliding. When `program`
    /// is given, instruction spans are named by their disassembly.
    pub fn to_chrome_json(&self, program: Option<&Program>) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("displayTimeUnit");
        w.string("ms");
        w.key("traceEvents");
        w.begin_array();
        for r in &self.ranks {
            // Process/thread naming metadata.
            meta(&mut w, "process_name", r.rank, 0, &r.label);
            meta(&mut w, "thread_name", r.rank, 0, "execute");
            if r.events.iter().any(|e| {
                matches!(
                    e.kind,
                    EventKind::Flight { .. } | EventKind::Multicast { .. }
                )
            }) {
                meta(&mut w, "thread_name", r.rank, 1, "comm");
            }
            let mut ordered: Vec<&TraceEvent> = r.events.iter().collect();
            ordered.sort_by_key(|e| (e.t_start_ns, std::cmp::Reverse(e.t_end_ns)));
            for e in ordered {
                emit_event(&mut w, r.rank, e, program);
            }
        }
        w.end_array();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

fn meta(w: &mut JsonWriter, what: &str, pid: usize, tid: usize, name: &str) {
    w.begin_object();
    w.key("name");
    w.string(what);
    w.key("ph");
    w.string("M");
    w.key("pid");
    w.u64(pid as u64);
    w.key("tid");
    w.u64(tid as u64);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.string(name);
    w.end_object();
    w.end_object();
}

/// Microseconds with nanosecond precision, as Chrome's `ts` wants.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn event_header(
    w: &mut JsonWriter,
    name: &str,
    cat: &str,
    ph: &str,
    pid: usize,
    tid: u64,
    ns: u64,
) {
    w.begin_object();
    w.key("name");
    w.string(name);
    w.key("cat");
    w.string(cat);
    w.key("ph");
    w.string(ph);
    w.key("pid");
    w.u64(pid as u64);
    w.key("tid");
    w.u64(tid);
    w.key("ts");
    let t = us(ns);
    w.raw_number(&t);
}

fn emit_event(w: &mut JsonWriter, rank: usize, e: &TraceEvent, program: Option<&Program>) {
    let dur_ns = e.t_end_ns - e.t_start_ns;
    let mut name = String::new();
    match e.kind {
        EventKind::Instruction { pc, class } => {
            match program.and_then(|p| p.code.get(pc as usize).map(|i| (p, i))) {
                Some((p, i)) => {
                    let _ = write!(
                        name,
                        "{}",
                        sia_bytecode::disasm::disassemble_instruction(p, i)
                    );
                }
                None => {
                    let _ = write!(name, "pc {pc} ({class:?})");
                }
            }
            event_header(w, &name, "instruction", "X", rank, 0, e.t_start_ns);
            w.key("dur");
            w.raw_number(&us(dur_ns));
            w.key("args");
            w.begin_object();
            w.key("pc");
            w.u64(pc as u64);
            w.key("class");
            name.clear();
            let _ = write!(name, "{class:?}");
            w.string(&name);
            w.end_object();
            w.end_object();
        }
        EventKind::Wait { cause } => {
            let _ = write!(name, "wait: {}", cause.label());
            event_header(w, &name, "wait", "X", rank, 0, e.t_start_ns);
            w.key("dur");
            w.raw_number(&us(dur_ns));
            w.key("args");
            w.begin_object();
            w.key("cause");
            w.string(cause.key());
            w.end_object();
            w.end_object();
        }
        EventKind::Flight { op, key, id } => {
            let _ = write!(name, "{} {key:?}", op.label());
            // Async begin/end pair so overlapping flights stack.
            let uid = ((rank as u64) << 48) | (id & 0xffff_ffff_ffff);
            for (ph, ns) in [("b", e.t_start_ns), ("e", e.t_end_ns)] {
                event_header(w, &name, "comm", ph, rank, 1, ns);
                w.key("id");
                let hex = format!("0x{uid:x}");
                w.string(&hex);
                if ph == "b" {
                    w.key("args");
                    w.begin_object();
                    w.key("id");
                    w.u64(id);
                    w.end_object();
                }
                w.end_object();
            }
        }
        EventKind::Multicast { key, id, parent } => {
            let _ = write!(name, "multicast {key:?}");
            // The hop id is already rank-qualified (rank in the top bits),
            // so it doubles as the async correlation id — and `parent`
            // correlates this hop to the upstream rank's hop in args.
            for (ph, ns) in [("b", e.t_start_ns), ("e", e.t_end_ns)] {
                event_header(w, &name, "multicast", ph, rank, 1, ns);
                w.key("id");
                let hex = format!("0x{id:x}");
                w.string(&hex);
                if ph == "b" {
                    w.key("args");
                    w.begin_object();
                    w.key("id");
                    w.u64(id);
                    w.key("parent");
                    w.u64(parent);
                    w.end_object();
                }
                w.end_object();
            }
        }
        EventKind::Serve { key, disk } => {
            let _ = write!(name, "serve {key:?}");
            if dur_ns == 0 {
                event_header(w, &name, "serve", "i", rank, 0, e.t_start_ns);
                w.key("s");
                w.string("t");
            } else {
                event_header(w, &name, "serve", "X", rank, 0, e.t_start_ns);
                w.key("dur");
                w.raw_number(&us(dur_ns));
            }
            w.key("args");
            w.begin_object();
            w.key("disk");
            w.bool(disk);
            w.end_object();
            w.end_object();
        }
        EventKind::Flush { blocks } => {
            let _ = write!(name, "flush {blocks} blocks");
            event_header(w, &name, "serve", "X", rank, 0, e.t_start_ns);
            w.key("dur");
            w.raw_number(&us(dur_ns));
            w.end_object();
        }
        EventKind::CacheFill { key, bytes } | EventKind::CacheEvict { key, bytes } => {
            let evict = matches!(e.kind, EventKind::CacheEvict { .. });
            let _ = write!(name, "{} {key:?}", if evict { "evict" } else { "fill" });
            event_header(w, &name, "cache", "i", rank, 0, e.t_start_ns);
            w.key("s");
            w.string("t");
            w.key("args");
            w.begin_object();
            w.key("bytes");
            w.u64(bytes);
            w.end_object();
            w.end_object();
        }
        EventKind::Checkpoint { restore } => {
            name.push_str(if restore {
                "checkpoint restore"
            } else {
                "checkpoint save"
            });
            event_header(w, &name, "checkpoint", "X", rank, 0, e.t_start_ns);
            w.key("dur");
            w.raw_number(&us(dur_ns));
            w.end_object();
        }
        EventKind::Recovery { what } => {
            name.push_str(what.label());
            event_header(w, &name, "recovery", "i", rank, 0, e.t_start_ns);
            w.key("s");
            w.string("t");
            w.end_object();
        }
        EventKind::Mark { label } => {
            event_header(w, label, "mark", "i", rank, 0, e.t_start_ns);
            w.key("s");
            w.string("t");
            w.end_object();
        }
    }
}

// --- minimal JSON reader (for the lint paths and tests) -----------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document. Supports the full grammar the runtime's own
/// writers emit (and standard escapes); errors carry a byte offset.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key is not a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => expect_lit(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => expect_lit(b, pos, "null").map(|()| Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

// --- schema lint --------------------------------------------------------

/// Per-rank summary produced by [`lint_chrome_trace`].
#[derive(Debug, Clone, Default)]
pub struct RankLint {
    /// Process label from the metadata events.
    pub label: String,
    /// Complete (`X`) spans on this rank.
    pub spans: usize,
    /// Async begin/end pairs on this rank.
    pub flights: usize,
    /// Multicast hops recorded on this rank.
    pub multicasts: usize,
    /// Event categories seen on this rank.
    pub cats: BTreeSet<String>,
}

/// Summary of a linted Chrome-trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceLint {
    /// Total entries in `traceEvents` (metadata included).
    pub events: usize,
    /// Per-rank breakdown keyed by pid.
    pub ranks: BTreeMap<u64, RankLint>,
}

/// Validates Chrome-trace JSON produced by [`TraceTimeline::to_chrome_json`]:
/// parseable JSON, a `traceEvents` array whose entries carry
/// `name`/`ph`/`pid`/`tid` (+ `ts`/`dur` where the phase demands them),
/// monotone nesting of complete spans per `(pid, tid)`, balanced async
/// begin/end pairs per flight id, and multicast hop correlation — every
/// forwarded hop's `args.parent` must name an existing hop's `args.id`
/// (no orphan forwards).
pub fn lint_chrome_trace(text: &str) -> Result<TraceLint, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    let mut lint = TraceLint {
        events: events.len(),
        ranks: BTreeMap::new(),
    };
    // (pid, tid) -> complete spans as (start_ns, end_ns).
    let mut spans: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    // (pid, id) -> open async begins.
    let mut open: BTreeMap<(u64, String), i64> = BTreeMap::new();
    // Multicast hop ids seen (globally unique), and each forward's parent.
    let mut mcast_ids: BTreeSet<u64> = BTreeSet::new();
    let mut mcast_parents: Vec<(usize, u64)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        e.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        let pid = e
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing pid"))? as u64;
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing tid"))? as u64;
        let rank = lint.ranks.entry(pid).or_default();
        if ph == "M" {
            if e.get("name").and_then(Json::as_str) == Some("process_name") {
                if let Some(n) = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    rank.label = n.to_string();
                }
            }
            continue;
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts"));
        }
        if let Some(cat) = e.get("cat").and_then(Json::as_str) {
            rank.cats.insert(cat.to_string());
        }
        let ns = (ts * 1000.0).round() as u64;
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: X span missing dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                rank.spans += 1;
                spans
                    .entry((pid, tid))
                    .or_default()
                    .push((ns, ns + (dur * 1000.0).round() as u64));
            }
            "b" => {
                let id = e
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: async begin missing id"))?;
                *open.entry((pid, id.to_string())).or_insert(0) += 1;
                rank.flights += 1;
                if e.get("cat").and_then(Json::as_str) == Some("multicast") {
                    rank.multicasts += 1;
                    let args = e
                        .get("args")
                        .ok_or(format!("event {i}: multicast hop missing args"))?;
                    let hop = args
                        .get("id")
                        .and_then(Json::as_f64)
                        .ok_or(format!("event {i}: multicast hop missing args.id"))?
                        as u64;
                    let parent = args
                        .get("parent")
                        .and_then(Json::as_f64)
                        .ok_or(format!("event {i}: multicast hop missing args.parent"))?
                        as u64;
                    mcast_ids.insert(hop);
                    if parent != 0 {
                        mcast_parents.push((i, parent));
                    }
                }
            }
            "e" => {
                let id = e
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: async end missing id"))?;
                let n = open.entry((pid, id.to_string())).or_insert(0);
                *n -= 1;
                if *n < 0 {
                    return Err(format!("event {i}: async end before begin (id {id})"));
                }
            }
            "i" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for ((pid, id), n) in &open {
        if *n != 0 {
            return Err(format!("unbalanced async events: pid {pid} id {id}"));
        }
    }
    for (i, parent) in &mcast_parents {
        if !mcast_ids.contains(parent) {
            return Err(format!(
                "event {i}: multicast forward orphaned — parent hop {parent} not in trace"
            ));
        }
    }
    // Monotone nesting: within a thread, sorted spans must form a proper
    // forest — each span either follows the previous or nests inside it.
    for ((pid, tid), mut list) in spans {
        list.sort_by_key(|&(s, e)| (s, std::cmp::Reverse(e)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (s, e) in list {
            while let Some(&(_, top_end)) = stack.last() {
                if top_end <= s {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, top_end)) = stack.last() {
                if e > top_end {
                    return Err(format!(
                        "pid {pid} tid {tid}: span [{s}, {e}] overlaps enclosing span ending {top_end}"
                    ));
                }
            }
            stack.push((s, e));
        }
    }
    Ok(lint)
}

/// Validates the `--profile-json` export: parseable JSON with the
/// `sia.profile.v1` schema marker and the required top-level members.
pub fn lint_profile_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("sia.profile.v1") => {}
        other => return Err(format!("bad schema marker {other:?}")),
    }
    for key in [
        "iterations",
        "wait_fraction",
        "total_busy_ns",
        "total_wait_ns",
    ] {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric {key}"))?;
    }
    let overlap = doc.get("overlap").ok_or("missing overlap")?;
    overlap
        .get("per_worker")
        .and_then(Json::as_array)
        .ok_or("missing overlap.per_worker")?;
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_object)
        .ok_or("missing metrics object")?;
    for name in ["cache", "memory", "comm", "wait"] {
        if !metrics.iter().any(|(k, _)| k == name) {
            return Err(format!("missing metrics.{name}"));
        }
    }
    doc.get("lines")
        .and_then(Json::as_array)
        .ok_or("missing lines array")?;
    Ok(())
}

/// Validates a `sial check --json` export: parseable JSON with the
/// `sia.diag.v1` schema marker, a matching `count`, and the required
/// members on every diagnostic entry.
pub fn lint_diag_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("sia.diag.v1") => {}
        other => return Err(format!("bad schema marker {other:?}")),
    }
    doc.get("file")
        .and_then(Json::as_str)
        .ok_or("missing file")?;
    let count = doc
        .get("count")
        .and_then(Json::as_f64)
        .ok_or("missing numeric count")? as usize;
    let diags = doc
        .get("diagnostics")
        .and_then(Json::as_array)
        .ok_or("missing diagnostics array")?;
    if diags.len() != count {
        return Err(format!(
            "count {} does not match diagnostics length {}",
            count,
            diags.len()
        ));
    }
    for (i, d) in diags.iter().enumerate() {
        for key in ["file", "severity", "code", "message"] {
            d.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("diagnostic {i}: missing string {key}"))?;
        }
        for key in ["start", "end", "line", "col"] {
            d.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("diagnostic {i}: missing numeric {key}"))?;
        }
        match d.get("severity").and_then(Json::as_str) {
            Some("note" | "warning" | "error") => {}
            other => return Err(format!("diagnostic {i}: bad severity {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::BlockKey;
    use sia_bytecode::ArrayId;

    fn key() -> BlockKey {
        BlockKey::new(ArrayId(1), &[2, 3])
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = TraceSink::disabled();
        assert!(!s.is_on());
        s.instant(EventKind::Mark { label: "x" });
        s.span(
            EventKind::Wait {
                cause: WaitCause::BlockArrival,
            },
            0,
            5,
        );
        let (events, dropped) = s.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut s = TraceSink::enabled(16, Instant::now());
        for i in 0..20u64 {
            s.span(EventKind::Mark { label: "m" }, i, i);
        }
        let (events, dropped) = s.drain();
        assert_eq!(events.len(), 16);
        assert_eq!(dropped, 4);
        // Oldest four were overwritten; order is chronological.
        assert_eq!(events[0].t_start_ns, 4);
        assert_eq!(events[15].t_start_ns, 19);
    }

    #[test]
    fn chrome_export_lints_clean() {
        let mut tl = TraceTimeline::default();
        let events = vec![
            TraceEvent {
                t_start_ns: 0,
                t_end_ns: 1000,
                kind: EventKind::Instruction {
                    pc: 0,
                    class: InstructionClass::Control,
                },
            },
            TraceEvent {
                t_start_ns: 100,
                t_end_ns: 600,
                kind: EventKind::Wait {
                    cause: WaitCause::BlockArrival,
                },
            },
            TraceEvent {
                t_start_ns: 50,
                t_end_ns: 800,
                kind: EventKind::Flight {
                    op: CommOp::Get,
                    key: key(),
                    id: 7,
                },
            },
            TraceEvent {
                t_start_ns: 400,
                t_end_ns: 400,
                kind: EventKind::CacheFill {
                    key: key(),
                    bytes: 64,
                },
            },
        ];
        tl.ranks.push(RankTrace {
            rank: 1,
            label: "worker 1".into(),
            events,
            dropped: 0,
        });
        let json = tl.to_chrome_json(None);
        let lint = lint_chrome_trace(&json).expect("lints clean");
        let r = lint.ranks.get(&1).expect("rank 1 present");
        assert_eq!(r.label, "worker 1");
        assert_eq!(r.spans, 2);
        assert_eq!(r.flights, 1);
        assert!(r.cats.contains("instruction"));
        assert!(r.cats.contains("wait"));
        assert!(r.cats.contains("comm"));
    }

    #[test]
    fn lint_rejects_overlapping_spans() {
        // Two X spans on one tid that cross instead of nesting.
        let bad = r#"{"traceEvents":[
            {"name":"a","cat":"instruction","ph":"X","pid":1,"tid":0,"ts":0.0,"dur":1.0},
            {"name":"b","cat":"instruction","ph":"X","pid":1,"tid":0,"ts":0.5,"dur":1.0}
        ]}"#;
        assert!(lint_chrome_trace(bad).is_err());
    }

    #[test]
    fn lint_rejects_unbalanced_async() {
        let bad = r#"{"traceEvents":[
            {"name":"g","cat":"comm","ph":"b","pid":1,"tid":1,"ts":0.0,"id":"0x1"}
        ]}"#;
        assert!(lint_chrome_trace(bad).is_err());
    }

    #[test]
    fn lint_accepts_multicast_parent_chain() {
        // Root hop on rank 1, forwarded hop on rank 2 correlated back to it.
        let mut tl = TraceTimeline::default();
        let root = (1u64 << 48) | 7;
        let hop = (2u64 << 48) | 9;
        tl.ranks.push(RankTrace {
            rank: 1,
            label: "worker 1".into(),
            events: vec![TraceEvent {
                t_start_ns: 10,
                t_end_ns: 10,
                kind: EventKind::Multicast {
                    key: key(),
                    id: root,
                    parent: 0,
                },
            }],
            dropped: 0,
        });
        tl.ranks.push(RankTrace {
            rank: 2,
            label: "worker 2".into(),
            events: vec![TraceEvent {
                t_start_ns: 20,
                t_end_ns: 20,
                kind: EventKind::Multicast {
                    key: key(),
                    id: hop,
                    parent: root,
                },
            }],
            dropped: 0,
        });
        let lint = lint_chrome_trace(&tl.to_chrome_json(None)).expect("lints clean");
        assert_eq!(lint.ranks[&1].multicasts, 1);
        assert_eq!(lint.ranks[&2].multicasts, 1);
    }

    #[test]
    fn lint_rejects_orphan_multicast_forward() {
        // A forward whose parent hop id appears nowhere in the trace.
        let mut tl = TraceTimeline::default();
        tl.ranks.push(RankTrace {
            rank: 2,
            label: "worker 2".into(),
            events: vec![TraceEvent {
                t_start_ns: 20,
                t_end_ns: 20,
                kind: EventKind::Multicast {
                    key: key(),
                    id: (2u64 << 48) | 9,
                    parent: (1u64 << 48) | 7,
                },
            }],
            dropped: 0,
        });
        let err = lint_chrome_trace(&tl.to_chrome_json(None)).unwrap_err();
        assert!(err.contains("orphan"), "unexpected error: {err}");
    }

    #[test]
    fn parser_round_trips_basics() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"xA","c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_str), Some("xA"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
    }
}
