//! Runtime errors raised by the SIP.

use crate::msg::BlockKey;
use sia_fabric::{Rank, SendError, SendErrorKind};
use std::fmt;

/// What kind of communication failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommKind {
    /// An operation exhausted its retry budget without an acknowledgement.
    Timeout,
    /// The peer was declared (or observed) dead.
    RankDead,
    /// The run was poisoned: another rank failed and raised shutdown, so
    /// this rank is aborting rather than wait on messages that will never
    /// arrive.
    Poisoned,
}

impl fmt::Display for CommKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommKind::Timeout => write!(f, "timeout"),
            CommKind::RankDead => write!(f, "rank dead"),
            CommKind::Poisoned => write!(f, "run poisoned"),
        }
    }
}

/// An error during SIP execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A symbolic constant had no binding or an index range was invalid.
    Resolve(String),
    /// A block of a distributed/served array was used without a prior
    /// `get`/`request` (and was not in the cache).
    BlockNotAvailable {
        /// The missing block.
        key: BlockKey,
        /// What the interpreter was doing.
        context: String,
    },
    /// A temp block was read before being written in this iteration.
    TempUndefined {
        /// Array name.
        array: String,
    },
    /// A worker block pool ran out of memory.
    PoolExhausted {
        /// Human-readable detail.
        detail: String,
    },
    /// The dry run predicted the computation does not fit.
    Infeasible {
        /// Bytes needed per worker.
        needed_per_worker: u64,
        /// The configured budget.
        budget: u64,
        /// Workers that would make it fit (the paper: "reported to the user
        /// along with the number of processors that would be sufficient").
        sufficient_workers: usize,
    },
    /// The enforced runtime memory budget was exceeded and eviction
    /// pressure could not bring resident bytes back under it (everything
    /// left is pinned or in use).
    OverBudget {
        /// Unevictable resident bytes at the point of failure.
        resident_bytes: u64,
        /// The configured budget.
        budget: u64,
    },
    /// Malformed bytecode reached the interpreter (compiler bug or corrupted
    /// program file).
    BadProgram(String),
    /// Bytecode failed a structural invariant the static verifier also
    /// checks (e.g. a where clause referencing an index the pardo does not
    /// bind). Distinct from [`RuntimeError::BadProgram`] so callers can tell
    /// "run `sial check`" defects from interpreter-state corruption.
    BadBytecode(String),
    /// A super instruction name was not found in the registry.
    UnknownSuperInstruction(String),
    /// A super instruction failed.
    SuperInstruction {
        /// Instruction name.
        name: String,
        /// Failure detail.
        detail: String,
    },
    /// A communication failure: a timed-out operation, a dead peer, or a
    /// run poisoned by another rank's failure.
    Comm {
        /// What happened.
        kind: CommKind,
        /// The peer involved (the waiting rank itself for `Poisoned`).
        rank: Rank,
        /// The block being moved, when the failure is tied to one.
        key: Option<BlockKey>,
        /// What the rank was doing.
        context: String,
    },
    /// Checkpoint I/O failed.
    Checkpoint(String),
    /// Served-array disk I/O failed.
    ServedIo(String),
    /// Barrier misuse detected (conflicting accesses without separation).
    BarrierMisuse(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Resolve(m) => write!(f, "initialization error: {m}"),
            RuntimeError::BlockNotAvailable { key, context } => write!(
                f,
                "block {key:?} not available ({context}); missing get/request?"
            ),
            RuntimeError::TempUndefined { array } => {
                write!(f, "temp block of `{array}` read before being written")
            }
            RuntimeError::PoolExhausted { detail } => {
                write!(f, "worker memory exhausted: {detail}")
            }
            RuntimeError::Infeasible {
                needed_per_worker,
                budget,
                sufficient_workers,
            } => {
                write!(
                    f,
                    "dry run: computation needs {needed_per_worker} bytes/worker \
                     (budget {budget}); "
                )?;
                if *sufficient_workers == usize::MAX {
                    write!(
                        f,
                        "no worker count would suffice (replicated arrays and the \
                         cache alone exceed the budget)"
                    )
                } else {
                    write!(f, "{sufficient_workers} workers would suffice")
                }
            }
            RuntimeError::OverBudget {
                resident_bytes,
                budget,
            } => write!(
                f,
                "memory budget exceeded: {resident_bytes} resident bytes against a \
                 {budget}-byte budget after eviction pressure"
            ),
            RuntimeError::BadProgram(m) => write!(f, "bad program: {m}"),
            RuntimeError::BadBytecode(m) => {
                write!(f, "malformed bytecode (run `sial check`): {m}")
            }
            RuntimeError::UnknownSuperInstruction(n) => {
                write!(f, "unknown super instruction `{n}`")
            }
            RuntimeError::SuperInstruction { name, detail } => {
                write!(f, "super instruction `{name}` failed: {detail}")
            }
            RuntimeError::Comm {
                kind,
                rank,
                key,
                context,
            } => {
                write!(f, "comm failure ({kind}) with rank {rank}")?;
                if let Some(k) = key {
                    write!(f, " moving {k:?}")?;
                }
                write!(f, ": {context}")
            }
            RuntimeError::Checkpoint(m) => write!(f, "checkpoint failure: {m}"),
            RuntimeError::ServedIo(m) => write!(f, "served-array I/O failure: {m}"),
            RuntimeError::BarrierMisuse(m) => write!(f, "barrier misuse: {m}"),
            RuntimeError::Internal(m) => write!(f, "internal SIP error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<sia_bytecode::ResolveError> for RuntimeError {
    fn from(e: sia_bytecode::ResolveError) -> Self {
        RuntimeError::Resolve(e.to_string())
    }
}

impl From<sia_blocks::pool::PoolExhausted> for RuntimeError {
    fn from(e: sia_blocks::pool::PoolExhausted) -> Self {
        RuntimeError::PoolExhausted {
            detail: e.to_string(),
        }
    }
}

impl From<SendError> for RuntimeError {
    fn from(e: SendError) -> Self {
        RuntimeError::Comm {
            kind: match e.kind {
                SendErrorKind::PeerGone | SendErrorKind::Crashed => CommKind::RankDead,
                SendErrorKind::Shutdown => CommKind::Poisoned,
            },
            rank: e.to,
            key: None,
            context: e.to_string(),
        }
    }
}
