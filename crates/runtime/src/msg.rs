//! The SIP wire protocol: messages exchanged between master, workers, and
//! I/O servers over the fabric.

use sia_blocks::BlockHandle;
use sia_bytecode::{ArrayId, PutMode};
use sia_fabric::{Message, Rank, ReqId};

/// Identifies one side-effecting operation (a PUT or PREPARE) so receivers
/// can suppress duplicates from retries, fabric-level duplication, or chunk
/// re-execution after a rank failure.
///
/// Ids are *content-derived* (instruction pc, index environment, epoch), not
/// allocated: a re-executed pardo iteration produces the same id on a
/// different worker, which is exactly what makes re-queueing chunks after a
/// crash idempotent. `OpId::NONE` marks untracked operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct OpId(pub u64);

impl OpId {
    /// The "untracked" sentinel.
    pub const NONE: OpId = OpId(0);

    /// True when the operation carries a real id.
    pub fn is_tracked(&self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Debug for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{:x}", self.0)
    }
}

/// Identifies one block of one array by its segment numbers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey {
    /// The array.
    pub array: ArrayId,
    /// Segment number per dimension (1-based), padded with 0.
    pub segs: [i32; 8],
    /// Number of meaningful entries in `segs`.
    pub rank: u8,
}

impl BlockKey {
    /// Builds a key from a slice of segment numbers.
    pub fn new(array: ArrayId, segs: &[i64]) -> Self {
        assert!(segs.len() <= 8, "rank too large");
        let mut s = [0i32; 8];
        for (i, &v) in segs.iter().enumerate() {
            s[i] = v as i32;
        }
        BlockKey {
            array,
            segs: s,
            rank: segs.len() as u8,
        }
    }

    /// The meaningful segment numbers.
    pub fn segs(&self) -> &[i32] {
        &self.segs[..self.rank as usize]
    }

    /// A stable small hash used for home placement (the "simple, static
    /// strategy" of §V-B). FNV-1a over array id and segments.
    pub fn placement_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.array.0 as u64);
        for &s in self.segs() {
            mix(s as u64);
        }
        h
    }
}

impl std::fmt::Debug for BlockKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}{:?}", self.array.0, self.segs())
    }
}

/// Which barrier a coordination message refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierKind {
    /// `sip_barrier` — distributed arrays.
    Sip,
    /// `server_barrier` — served arrays.
    Server,
}

/// One SIP protocol message.
#[derive(Debug, Clone)]
pub enum SipMsg {
    // ---- scheduling (worker <-> master) ------------------------------------
    /// Worker asks for a chunk of pardo iterations.
    ChunkRequest {
        /// Pc of the `PardoStart`.
        pardo_pc: u32,
        /// Which encounter of this pardo (a pardo inside a `do` loop runs
        /// once per outer iteration; every encounter gets a fresh iteration
        /// space).
        epoch: u64,
    },
    /// Master assigns a chunk of iterations (index values per iteration).
    ChunkAssign {
        /// Pc of the `PardoStart`.
        pardo_pc: u32,
        /// The encounter this chunk belongs to.
        epoch: u64,
        /// Chunk id within this (pardo, epoch), acknowledged by `ChunkDone`.
        chunk: u64,
        /// Each iteration's value per pardo index.
        iters: Vec<Vec<i64>>,
    },
    /// Master: the pardo's iteration space is exhausted.
    NoMoreChunks {
        /// Pc of the `PardoStart`.
        pardo_pc: u32,
        /// The encounter that is exhausted.
        epoch: u64,
    },
    /// Worker acknowledges completion of an assigned chunk (sent under fault
    /// tolerance so the master can re-queue work lost with a dead rank).
    ChunkDone {
        /// Pc of the `PardoStart`.
        pardo_pc: u32,
        /// The encounter the chunk belonged to.
        epoch: u64,
        /// The chunk id from `ChunkAssign`/`Takeover`.
        chunk: u64,
    },
    /// Master hands a re-queued chunk to a worker already parked at the
    /// barrier after the pardo (recovery path).
    Takeover {
        /// Pc of the `PardoStart`.
        pardo_pc: u32,
        /// The encounter the chunk belonged to.
        epoch: u64,
        /// Chunk id, acknowledged by `ChunkDone`.
        chunk: u64,
        /// Each iteration's value per pardo index.
        iters: Vec<Vec<i64>>,
    },

    // ---- block traffic (worker <-> worker / io server) ----------------------
    /// Fetch a distributed block from its home.
    GetBlock {
        /// The block wanted.
        key: BlockKey,
        /// Correlates the `BlockData` reply.
        req: ReqId,
    },
    /// A block in flight (reply to `GetBlock`/`RequestBlock`). The payload
    /// is a shared handle: in-process delivery (and fault-injection
    /// duplication) costs a reference-count bump, not a copy.
    BlockData {
        /// The block's identity.
        key: BlockKey,
        /// Its contents (shared with the sender's store).
        data: BlockHandle,
        /// The request this answers (`ReqId::NONE` for unsolicited pushes).
        req: ReqId,
    },
    /// Store (or accumulate into) a distributed block at its home.
    PutBlock {
        /// Destination block.
        key: BlockKey,
        /// Payload (shared with the sender's retry/journal state).
        data: BlockHandle,
        /// Replace or accumulate.
        mode: PutMode,
        /// Duplicate-suppression id (`OpId::NONE` when untracked).
        op: OpId,
    },
    /// Home acknowledges a `PutBlock` (workers drain acks before barriers).
    PutAck {
        /// The block acknowledged.
        key: BlockKey,
        /// The operation acknowledged.
        op: OpId,
    },
    /// Fetch a served block from its I/O server.
    RequestBlock {
        /// The block wanted.
        key: BlockKey,
        /// Correlates the `BlockData` reply.
        req: ReqId,
    },
    /// Store (or accumulate into) a served block at its I/O server.
    PrepareBlock {
        /// Destination block.
        key: BlockKey,
        /// Payload (shared with the sender's retry state).
        data: BlockHandle,
        /// Replace or accumulate.
        mode: PutMode,
        /// Duplicate-suppression id (`OpId::NONE` when untracked).
        op: OpId,
    },
    /// I/O server acknowledges a `PrepareBlock`.
    PrepareAck {
        /// The block acknowledged.
        key: BlockKey,
        /// The operation acknowledged.
        op: OpId,
    },
    /// Reply to `GetBlock`/`RequestBlock` when a sparse array's block is
    /// absent (exactly zero). Only the norm bound travels — the fabric never
    /// ships an absent block's payload.
    BlockAbsent {
        /// The block's identity.
        key: BlockKey,
        /// Frobenius-norm bound of the dropped payload (0.0 if never
        /// written).
        norm: f64,
        /// The request this answers (`ReqId::NONE` for unsolicited pushes).
        req: ReqId,
    },
    /// Store an *absent* sparse block at its home (distributed) or I/O
    /// server (served): the payload's Frobenius norm fell under the
    /// screening threshold and was dropped at the sender. Acknowledged by
    /// `PutAck` / `PrepareAck` like its dense counterpart.
    PutAbsent {
        /// Destination block.
        key: BlockKey,
        /// Frobenius norm of the dropped payload (the screening bound).
        norm: f64,
        /// Replace or accumulate semantics of the original store.
        mode: PutMode,
        /// Duplicate-suppression id (`OpId::NONE` when untracked).
        op: OpId,
    },
    /// Delete all blocks of an array (distributed at homes, served at I/O
    /// servers).
    DeleteArray {
        /// The array dropped.
        array: ArrayId,
    },
    /// One hop of a planner-scheduled tree multicast: the home pushes a
    /// broadcast-shaped operand's block down a binary tree of workers
    /// instead of answering per-rank GETs. Receivers at tree position `pos`
    /// forward to positions `2·pos+1` and `2·pos+2` (positions are rotated
    /// so the home is the root). Best-effort: a dropped hop degrades to the
    /// demand `GetBlock` path, so no retry state is kept.
    MulticastBlock {
        /// The block's identity.
        key: BlockKey,
        /// Its contents (shared with the home's store).
        data: BlockHandle,
        /// The sender's distributed-array epoch; receivers in a different
        /// epoch drop the push (their cache was invalidated since).
        epoch: u64,
        /// This receiver's position in the multicast tree.
        pos: u32,
        /// Flight id correlating the trace events of one block's tree.
        flight: u64,
    },
    /// The typed-absent hop of a tree multicast: a sparse broadcast-shaped
    /// block with no payload at the home travels the same tree as a
    /// lightweight norm record, so consumers learn absence without a
    /// point-to-point GET round trip each. Same best-effort contract as
    /// [`SipMsg::MulticastBlock`]: a dropped hop degrades to the demand
    /// path, which ships [`SipMsg::BlockAbsent`].
    MulticastAbsent {
        /// The block's identity.
        key: BlockKey,
        /// Frobenius-norm bound of the absent payload (0.0 if never
        /// written).
        norm: f64,
        /// The sender's distributed-array epoch; receivers in a different
        /// epoch drop the push.
        epoch: u64,
        /// This receiver's position in the multicast tree.
        pos: u32,
        /// Flight id correlating the trace events of one block's tree.
        flight: u64,
    },
    /// Several data-plane messages for one destination coalesced into a
    /// single fabric envelope ([`sia_fabric::Endpoint::stage`]); per-message
    /// OpId/ReqId dedup still applies after unbatching.
    Batch(Vec<SipMsg>),

    // ---- barriers -----------------------------------------------------------
    /// Worker entered a barrier.
    BarrierEnter {
        /// Which barrier.
        kind: BarrierKind,
    },
    /// Master releases a barrier.
    BarrierRelease {
        /// Which barrier.
        kind: BarrierKind,
    },

    // ---- collectives ----------------------------------------------------------
    /// Worker contributes to a scalar all-reduce (`execute sip_allreduce s`).
    ReduceContrib {
        /// Contribution.
        value: f64,
    },
    /// Master returns the reduced value.
    ReduceResult {
        /// The global sum.
        value: f64,
    },

    // ---- checkpointing ----------------------------------------------------------
    /// Worker ships one authoritative block for `blocks_to_list`.
    CkptBlock {
        /// Checkpoint label id (program string table).
        label: u32,
        /// The block's identity.
        key: BlockKey,
        /// Its contents (shared with the authoritative store).
        data: BlockHandle,
    },
    /// Worker finished shipping blocks for a checkpoint (or is ready to
    /// receive a restore).
    CkptDone {
        /// Checkpoint label id.
        label: u32,
        /// True for `list_to_blocks` (restore), false for `blocks_to_list`.
        restore: bool,
    },
    /// Master: checkpoint/restore completed; continue.
    CkptRelease {
        /// Checkpoint label id.
        label: u32,
    },

    // ---- fault tolerance ----------------------------------------------------
    /// Worker liveness beacon (sent periodically under fault tolerance).
    Heartbeat,
    /// Master declares a worker dead; survivors re-route its keys and replay
    /// their current-epoch puts that were homed there.
    RankDead {
        /// The dead worker's fabric rank.
        rank: Rank,
        /// Duplicate-suppression ids the dead rank had already applied (from
        /// its epoch checkpoint), inherited by the re-homed blocks so journal
        /// replay cannot double-apply accumulates.
        inherited_ops: Vec<u64>,
    },
    /// Master asks I/O servers to flush and write a consistency manifest for
    /// the served-array epoch ending at a server barrier.
    EpochMark {
        /// The completed-epoch count after this mark.
        epoch: u64,
    },
    /// I/O server acknowledges an `EpochMark` (manifest durable).
    EpochAck {
        /// The epoch acknowledged.
        epoch: u64,
    },

    // ---- lifecycle ------------------------------------------------------------
    /// Worker finished the program (carries its final scalars and, when
    /// collection is on, its authoritative distributed blocks).
    WorkerDone {
        /// Final scalar values.
        scalars: Vec<f64>,
        /// Collected blocks (empty unless `collect_distributed`).
        blocks: Vec<(BlockKey, BlockHandle)>,
        /// Serialized per-worker profile (boxed: it dwarfs every other
        /// variant and would bloat the whole message enum inline).
        profile: Box<crate::profile::WorkerProfile>,
        /// Diagnostics (e.g. barrier-misuse detections).
        warnings: Vec<String>,
    },
    /// Worker aborted with an error.
    WorkerFailed {
        /// The error message.
        error: String,
    },
    /// I/O server reports its counters (and, when tracing, its recorded
    /// events) to the master after receiving `Shutdown`.
    ServerDone {
        /// The server's lifetime counters.
        stats: crate::metrics::ServerStats,
        /// Recorded trace events (empty unless tracing).
        events: Vec<crate::events::TraceEvent>,
        /// Events lost to ring-buffer overwrite.
        dropped: u64,
    },
    /// Master tells everyone to exit their service loops.
    Shutdown,
}

impl Message for SipMsg {
    fn approx_bytes(&self) -> usize {
        let block_bytes = |b: &BlockHandle| b.len() * 8 + 32;
        match self {
            SipMsg::BlockData { data, .. }
            | SipMsg::PutBlock { data, .. }
            | SipMsg::PrepareBlock { data, .. }
            | SipMsg::MulticastBlock { data, .. }
            | SipMsg::CkptBlock { data, .. } => block_bytes(data),
            SipMsg::Batch(msgs) => 16 + msgs.iter().map(|m| m.approx_bytes()).sum::<usize>(),
            SipMsg::ChunkAssign { iters, .. } => {
                16 + iters.iter().map(|v| v.len() * 8).sum::<usize>()
            }
            SipMsg::WorkerDone {
                scalars, blocks, ..
            } => 16 + scalars.len() * 8 + blocks.iter().map(|(_, b)| block_bytes(b)).sum::<usize>(),
            SipMsg::RankDead { inherited_ops, .. } => 16 + inherited_ops.len() * 8,
            SipMsg::ServerDone { events, .. } => {
                64 + events.len() * std::mem::size_of::<crate::events::TraceEvent>()
            }
            _ => 32,
        }
    }

    /// Only data-plane traffic is faultable: block fetches, puts, prepares,
    /// and their acks. Control-plane messages (scheduling, barriers,
    /// collectives, lifecycle) ride a reliable channel, mirroring clusters
    /// whose management network is separate from the data interconnect.
    fn faultable(&self) -> bool {
        matches!(
            self,
            SipMsg::GetBlock { .. }
                | SipMsg::BlockData { .. }
                | SipMsg::PutBlock { .. }
                | SipMsg::PutAck { .. }
                | SipMsg::RequestBlock { .. }
                | SipMsg::PrepareBlock { .. }
                | SipMsg::PrepareAck { .. }
                | SipMsg::BlockAbsent { .. }
                | SipMsg::PutAbsent { .. }
                | SipMsg::MulticastBlock { .. }
                | SipMsg::MulticastAbsent { .. }
                | SipMsg::Batch(_)
        )
    }

    /// Duplicating a data-plane message is cheap: block payloads are
    /// `BlockHandle`s, so the duplicate shares the original's allocation.
    fn dup(&self) -> Option<Self> {
        Some(self.clone())
    }

    /// Only faultable (data-plane) messages may share a batch envelope:
    /// every part is individually retryable/dedupable above the fabric, so
    /// one whole-envelope fault verdict (drop the batch, duplicate the
    /// batch) is indistinguishable from that verdict on each part. A batch
    /// containing control-plane traffic would silently make it faultable —
    /// refuse, and let the fabric ship the messages individually.
    fn batch(msgs: Vec<Self>) -> Result<Self, Vec<Self>> {
        if msgs.iter().all(|m| m.faultable()) {
            Ok(SipMsg::Batch(msgs))
        } else {
            Err(msgs)
        }
    }

    fn unbatch(self) -> Result<Vec<Self>, Self> {
        match self {
            SipMsg::Batch(msgs) => Ok(msgs),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_blocks::{Block, Shape};

    #[test]
    fn key_roundtrip() {
        let k = BlockKey::new(ArrayId(3), &[1, 2, 3, 4]);
        assert_eq!(k.segs(), &[1, 2, 3, 4]);
        assert_eq!(k.rank, 4);
    }

    #[test]
    fn placement_hash_distinguishes() {
        let a = BlockKey::new(ArrayId(0), &[1, 2]);
        let b = BlockKey::new(ArrayId(0), &[2, 1]);
        let c = BlockKey::new(ArrayId(1), &[1, 2]);
        assert_ne!(a.placement_hash(), b.placement_hash());
        assert_ne!(a.placement_hash(), c.placement_hash());
        // Deterministic.
        assert_eq!(
            a.placement_hash(),
            BlockKey::new(ArrayId(0), &[1, 2]).placement_hash()
        );
    }

    #[test]
    fn placement_hash_spreads() {
        // 1000 keys over 7 buckets: no bucket should be empty or hold more
        // than half the keys.
        let mut buckets = [0usize; 7];
        for i in 0..10 {
            for j in 0..10 {
                for k in 0..10 {
                    let key = BlockKey::new(ArrayId(0), &[i, j, k]);
                    buckets[(key.placement_hash() % 7) as usize] += 1;
                }
            }
        }
        for &b in &buckets {
            assert!(b > 0 && b < 500, "bad spread: {buckets:?}");
        }
    }

    #[test]
    fn message_sizes_scale_with_payload() {
        let small = SipMsg::BlockData {
            key: BlockKey::new(ArrayId(0), &[1]),
            data: Block::zeros(Shape::new(&[2])).into(),
            req: ReqId::NONE,
        };
        let big = SipMsg::BlockData {
            key: BlockKey::new(ArrayId(0), &[1]),
            data: Block::zeros(Shape::new(&[100])).into(),
            req: ReqId::NONE,
        };
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn batch_accepts_data_plane_refuses_control_plane() {
        let data_msg = || SipMsg::PutAck {
            key: BlockKey::new(ArrayId(0), &[1]),
            op: OpId(7),
        };
        let batched = SipMsg::batch(vec![data_msg(), data_msg()]).expect("data plane batches");
        assert!(batched.faultable());
        let parts = batched.unbatch().expect("batch unbatches");
        assert_eq!(parts.len(), 2);
        // A control-plane message poisons the whole batch.
        let refused = SipMsg::batch(vec![data_msg(), SipMsg::Heartbeat]);
        assert!(refused.is_err());
        assert_eq!(refused.unwrap_err().len(), 2);
        // Non-batch messages refuse to unbatch.
        assert!(SipMsg::Heartbeat.unbatch().is_err());
    }

    #[test]
    fn batch_bytes_sum_parts() {
        let part = SipMsg::BlockData {
            key: BlockKey::new(ArrayId(0), &[1]),
            data: Block::zeros(Shape::new(&[100])).into(),
            req: ReqId::NONE,
        };
        let part_bytes = part.approx_bytes();
        let batched = SipMsg::batch(vec![part.clone(), part]).unwrap();
        assert!(batched.approx_bytes() >= 2 * part_bytes);
    }

    #[test]
    fn dup_shares_payload_allocation() {
        let data = BlockHandle::new(Block::zeros(Shape::new(&[64])));
        let msg = SipMsg::BlockData {
            key: BlockKey::new(ArrayId(0), &[1]),
            data: data.clone(),
            req: ReqId::NONE,
        };
        let dup = msg.dup().unwrap();
        match dup {
            SipMsg::BlockData { data: d, .. } => {
                assert!(BlockHandle::ptr_eq(&d, &data), "dup copied the payload")
            }
            other => panic!("{other:?}"),
        }
    }
}
