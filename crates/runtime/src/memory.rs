//! The per-rank block manager: one owner for every resident block.
//!
//! The paper's SIP is defined by disciplined block memory management —
//! preallocated block stacks per size class, an LRU block cache, and a
//! dry run that predicts per-worker memory before the real run. This module
//! is our equivalent: a [`BlockManager`] unifies the previously separate
//! home store (authoritative blocks of distributed arrays), local store
//! (local/static arrays), and remote-copy cache behind one byte-accounted
//! facade, with the dry-run `memory_budget` enforced as a runtime ceiling.
//!
//! Policy classes per `ArrayKind`:
//! * **pinned** — home blocks of distributed arrays and local/static blocks
//!   are authoritative and never evicted;
//! * **evictable** — cached copies of remote (distributed/served) blocks,
//!   LRU-replaced by *bytes* (see [`crate::cache`]);
//! * **pooled scratch** — temp blocks recycle through the
//!   [`sia_blocks::BlockPool`] and are bounded by `pool_bytes` separately.
//!
//! All blocks move as [`BlockHandle`]s: serving a home block, filling a
//! cache entry, journaling a put, snapshotting an epoch checkpoint, and
//! carrying a fabric envelope share one allocation. The manager counts every
//! avoided clone so the zero-copy property is *asserted*, not assumed.

use crate::cache::{BlockCache, CacheEntry, CacheStats};
use crate::error::RuntimeError;
use crate::msg::BlockKey;
use sia_blocks::BlockHandle;
use sia_bytecode::ArrayId;
use std::collections::HashMap;

/// Snapshot of the manager's byte accounting and zero-copy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes pinned right now (home + local/static blocks).
    pub pinned_bytes: u64,
    /// Bytes of ready cached remote copies right now.
    pub cached_bytes: u64,
    /// High-water mark of `pinned + cached` over the run.
    pub high_water_bytes: u64,
    /// The enforced budget (0 = unlimited).
    pub budget_bytes: u64,
    /// Deep copies avoided by sharing a handle instead of cloning a block.
    pub clones_avoided: u64,
    /// Payload bytes those avoided clones would have copied.
    pub bytes_clone_avoided: u64,
    /// Data-plane deep copies that still happened (CoW on a shared handle,
    /// boundary materialization). Zero on the in-process fast path.
    pub deep_copies: u64,
    /// Cache evictions forced by budget pressure (beyond LRU capacity).
    pub budget_evictions: u64,
}

/// One rank's unified block store: pinned home/local maps, the byte-LRU
/// cache of remote copies, byte accounting, and budget enforcement.
pub struct BlockManager {
    home: HashMap<BlockKey, BlockHandle>,
    /// Norm table for sparse arrays homed here: blocks whose payload was
    /// dropped under the sparsity threshold, keyed to the Frobenius-norm
    /// bound recorded at drop time. A key is never in both `home` and
    /// `home_norms`.
    home_norms: HashMap<BlockKey, f64>,
    local: HashMap<BlockKey, BlockHandle>,
    cache: BlockCache,
    budget: Option<u64>,
    pinned_bytes: u64,
    high_water: u64,
    clones_avoided: u64,
    bytes_clone_avoided: u64,
    deep_copies: u64,
    budget_evictions: u64,
}

impl BlockManager {
    /// Creates a manager with a byte-sized cache and an optional enforced
    /// per-rank budget.
    pub fn new(cache_capacity_bytes: u64, budget: Option<u64>) -> Self {
        BlockManager {
            home: HashMap::new(),
            home_norms: HashMap::new(),
            local: HashMap::new(),
            cache: BlockCache::new(cache_capacity_bytes.max(1)),
            budget,
            pinned_bytes: 0,
            high_water: 0,
            clones_avoided: 0,
            bytes_clone_avoided: 0,
            deep_copies: 0,
            budget_evictions: 0,
        }
    }

    /// Total resident bytes under management: pinned + cached payloads plus
    /// the norm table a sparse home keeps in place of dropped payloads — the
    /// same three components the dry run's realized estimate charges.
    pub fn resident_bytes(&self) -> u64 {
        self.pinned_bytes + self.cache.ready_bytes() + self.norm_table_bytes()
    }

    fn note_usage(&mut self) {
        let now = self.resident_bytes();
        if now > self.high_water {
            self.high_water = now;
        }
    }

    /// Records a handle share that replaced what used to be a deep copy.
    pub fn note_share(&mut self, h: &BlockHandle) {
        self.clones_avoided += 1;
        self.bytes_clone_avoided += h.heap_bytes();
    }

    /// Records a data-plane deep copy that could not be avoided.
    pub fn note_deep_copy(&mut self) {
        self.deep_copies += 1;
    }

    /// Starts logging cache evictions (for the event tracer). Off by
    /// default; the eviction path stays allocation-free on untraced runs.
    pub fn enable_evict_log(&mut self) {
        self.cache.enable_evict_log();
    }

    /// Takes the `(key, bytes)` evictions logged since the last drain.
    pub fn drain_evictions(&mut self) -> Vec<(BlockKey, u64)> {
        self.cache.drain_evictions()
    }

    /// Applies budget pressure: evicts unshared cached copies LRU-first
    /// until resident bytes fit the budget, and returns a typed
    /// [`RuntimeError::OverBudget`] if pinned + unevictable bytes still
    /// exceed it. Called at instruction boundaries so every charge is
    /// checked soon after it lands.
    pub fn enforce_budget(&mut self) -> Result<(), RuntimeError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        if self.resident_bytes() <= budget {
            return Ok(());
        }
        let target = budget.saturating_sub(self.pinned_bytes + self.norm_table_bytes());
        let before = self.cache.stats().evictions;
        self.cache.evict_until(target);
        self.budget_evictions += self.cache.stats().evictions - before;
        let resident = self.resident_bytes();
        if resident > budget {
            return Err(RuntimeError::OverBudget {
                resident_bytes: resident,
                budget,
            });
        }
        Ok(())
    }

    // ---- pinned home blocks (distributed arrays homed here) ----------------

    /// Shares the home block for `key`, if resident (zero-copy serve).
    pub fn serve_home(&mut self, key: &BlockKey) -> Option<BlockHandle> {
        let h = self.home.get(key)?.clone();
        self.note_share(&h);
        Some(h)
    }

    /// Is a home block resident for `key`?
    pub fn home_contains(&self, key: &BlockKey) -> bool {
        self.home.contains_key(key)
    }

    /// Inserts (or replaces) the authoritative home block for `key`. A real
    /// payload supersedes any recorded absence.
    pub fn home_insert(&mut self, key: BlockKey, data: BlockHandle) {
        self.pinned_bytes += data.heap_bytes();
        self.home_norms.remove(&key);
        if let Some(old) = self.home.insert(key, data) {
            self.pinned_bytes -= old.heap_bytes();
        }
        self.note_usage();
    }

    /// Records that `key`'s block is absent (exactly zero) with the given
    /// Frobenius-norm bound, dropping any resident payload. The home side of
    /// a sparse put whose norm fell under the threshold.
    pub fn home_record_absent(&mut self, key: BlockKey, norm: f64) {
        if let Some(old) = self.home.remove(&key) {
            self.pinned_bytes -= old.heap_bytes();
        }
        self.home_norms.insert(key, norm);
        self.note_usage();
    }

    /// The recorded norm bound for an absent sparse block homed here, if any.
    pub fn home_absent_norm(&self, key: &BlockKey) -> Option<f64> {
        self.home_norms.get(key).copied()
    }

    /// Number of absent-block entries in the norm table.
    pub fn home_norm_len(&self) -> usize {
        self.home_norms.len()
    }

    /// Approximate heap footprint of the norm table — what a sparse home
    /// pays instead of zero payloads (key + f64 + map overhead per entry).
    /// The dry run uses the same per-entry constant.
    pub fn norm_table_bytes(&self) -> u64 {
        self.home_norms.len() as u64 * crate::dryrun::NORM_TABLE_ENTRY_BYTES
    }

    /// CoW-mutable access to a home block (for accumulate-puts).
    pub fn home_entry_mut(&mut self, key: &BlockKey) -> Option<&mut BlockHandle> {
        self.home.get_mut(key)
    }

    /// Drops every home block of `array` (DELETE), including recorded
    /// absences.
    pub fn home_remove_array(&mut self, array: ArrayId) {
        let bytes = &mut self.pinned_bytes;
        self.home.retain(|k, h| {
            if k.array == array {
                *bytes -= h.heap_bytes();
                false
            } else {
                true
            }
        });
        self.home_norms.retain(|k, _| k.array != array);
    }

    /// Shares every resident home block (epoch checkpoints). Each handle in
    /// the snapshot aliases the authoritative block — no payload is copied.
    pub fn snapshot_home(&mut self) -> Vec<(BlockKey, BlockHandle)> {
        let snap: Vec<(BlockKey, BlockHandle)> =
            self.home.iter().map(|(k, h)| (*k, h.clone())).collect();
        for (_, h) in &snap {
            self.clones_avoided += 1;
            self.bytes_clone_avoided += h.heap_bytes();
        }
        snap
    }

    /// Shares every resident home block of one array (`blocks_to_list`
    /// checkpoints). Zero-copy, like [`BlockManager::snapshot_home`].
    pub fn home_array_shares(&mut self, array: ArrayId) -> Vec<(BlockKey, BlockHandle)> {
        let snap: Vec<(BlockKey, BlockHandle)> = self
            .home
            .iter()
            .filter(|(k, _)| k.array == array)
            .map(|(k, h)| (*k, h.clone()))
            .collect();
        for (_, h) in &snap {
            self.clones_avoided += 1;
            self.bytes_clone_avoided += h.heap_bytes();
        }
        snap
    }

    /// Moves every home block out (end-of-run collection).
    pub fn drain_home(&mut self) -> Vec<(BlockKey, BlockHandle)> {
        self.pinned_bytes = self
            .pinned_bytes
            .saturating_sub(self.home.values().map(|h| h.heap_bytes()).sum());
        self.home.drain().collect()
    }

    /// Number of resident home blocks.
    pub fn home_len(&self) -> usize {
        self.home.len()
    }

    // ---- pinned local/static blocks ----------------------------------------

    /// Shares the local/static block for `key`, if written.
    pub fn local_share(&mut self, key: &BlockKey) -> Option<BlockHandle> {
        let h = self.local.get(key)?.clone();
        self.note_share(&h);
        Some(h)
    }

    /// Inserts (or replaces) a local/static block.
    pub fn local_insert(&mut self, key: BlockKey, data: BlockHandle) {
        self.pinned_bytes += data.heap_bytes();
        if let Some(old) = self.local.insert(key, data) {
            self.pinned_bytes -= old.heap_bytes();
        }
        self.note_usage();
    }

    /// CoW-mutable access to a local/static block.
    pub fn local_get_mut(&mut self, key: &BlockKey) -> Option<&mut BlockHandle> {
        self.local.get_mut(key)
    }

    /// CoW-mutable access, inserting `make()` first if absent (charged).
    pub fn local_mut_or_insert(
        &mut self,
        key: BlockKey,
        make: impl FnOnce() -> BlockHandle,
    ) -> &mut BlockHandle {
        if !self.local.contains_key(&key) {
            let h = make();
            self.pinned_bytes += h.heap_bytes();
            self.local.insert(key, h);
            self.note_usage();
        }
        self.local.get_mut(&key).expect("just inserted")
    }

    /// Takes a local/static block out of the manager (super-instruction
    /// marshalling hands the kernel exclusive ownership).
    pub fn local_take(&mut self, key: &BlockKey) -> Option<BlockHandle> {
        let h = self.local.remove(key)?;
        self.pinned_bytes -= h.heap_bytes();
        Some(h)
    }

    /// Drops every local/static block of `array` (DELETE).
    pub fn local_remove_array(&mut self, array: ArrayId) {
        let bytes = &mut self.pinned_bytes;
        self.local.retain(|k, h| {
            if k.array == array {
                *bytes -= h.heap_bytes();
                false
            } else {
                true
            }
        });
    }

    // ---- evictable cached remote copies ------------------------------------

    /// Cache lookup (refreshes LRU; counts hits/misses).
    pub fn cache_lookup(&mut self, key: &BlockKey) -> Option<&CacheEntry> {
        self.cache.lookup(key)
    }

    /// Cache peek (no LRU refresh, no counters).
    pub fn cache_peek(&self, key: &BlockKey) -> Option<&CacheEntry> {
        self.cache.peek(key)
    }

    /// Marks a fetch in flight; true means the caller must issue it.
    pub fn cache_mark_in_flight(&mut self, key: BlockKey) -> bool {
        self.cache.mark_in_flight(key)
    }

    /// Re-arms a presumed-lost in-flight fetch for re-issue.
    pub fn cache_refresh_in_flight(&mut self, key: &BlockKey) -> bool {
        self.cache.refresh_in_flight(key)
    }

    /// Stores an arrived remote block, sharing the sender's allocation.
    pub fn cache_fill(&mut self, key: BlockKey, data: BlockHandle) {
        self.cache.fill(key, data);
        self.note_usage();
    }

    /// Records a typed-absent reply for a sparse remote block (no payload).
    pub fn cache_fill_absent(&mut self, key: BlockKey, norm: f64) {
        self.cache.fill_absent(key, norm);
    }

    /// Drops one cached copy (a fresher value exists).
    pub fn cache_invalidate(&mut self, key: &BlockKey) {
        self.cache.invalidate(key);
    }

    /// Drops every ready cached copy of `array`.
    pub fn cache_invalidate_array(&mut self, array: ArrayId) {
        self.cache.invalidate_array(array);
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Byte-accounting and zero-copy counter snapshot.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            pinned_bytes: self.pinned_bytes,
            cached_bytes: self.cache.ready_bytes(),
            high_water_bytes: self.high_water,
            budget_bytes: self.budget.unwrap_or(0),
            clones_avoided: self.clones_avoided,
            bytes_clone_avoided: self.bytes_clone_avoided,
            deep_copies: self.deep_copies,
            budget_evictions: self.budget_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_blocks::{Block, Shape};

    fn key(i: i64) -> BlockKey {
        BlockKey::new(ArrayId(0), &[i])
    }

    /// 64-byte block.
    fn blk(v: f64) -> BlockHandle {
        BlockHandle::new(Block::filled(Shape::new(&[8]), v))
    }

    #[test]
    fn serve_home_shares_allocation() {
        let mut m = BlockManager::new(1024, None);
        m.home_insert(key(1), blk(1.0));
        let served = m.serve_home(&key(1)).unwrap();
        let again = m.serve_home(&key(1)).unwrap();
        assert!(BlockHandle::ptr_eq(&served, &again));
        let s = m.stats();
        assert_eq!(s.clones_avoided, 2);
        assert_eq!(s.bytes_clone_avoided, 128);
        assert_eq!(s.deep_copies, 0);
    }

    #[test]
    fn byte_accounting_and_high_water() {
        let mut m = BlockManager::new(1024, None);
        m.home_insert(key(1), blk(1.0));
        m.local_insert(BlockKey::new(ArrayId(1), &[1]), blk(2.0));
        m.cache_fill(BlockKey::new(ArrayId(2), &[1]), blk(3.0));
        let s = m.stats();
        assert_eq!(s.pinned_bytes, 128);
        assert_eq!(s.cached_bytes, 64);
        assert_eq!(s.high_water_bytes, 192);
        m.home_remove_array(ArrayId(0));
        let s = m.stats();
        assert_eq!(s.pinned_bytes, 64);
        assert_eq!(s.high_water_bytes, 192, "high water is sticky");
    }

    #[test]
    fn replacing_home_block_does_not_leak_bytes() {
        let mut m = BlockManager::new(1024, None);
        m.home_insert(key(1), blk(1.0));
        m.home_insert(key(1), blk(2.0));
        assert_eq!(m.stats().pinned_bytes, 64);
    }

    #[test]
    fn budget_pressure_evicts_cache_first() {
        // Budget 192: 128 pinned + up to 64 cached fits; the second cached
        // block pushes resident to 256 and pressure must evict, not error.
        let mut m = BlockManager::new(1024, Some(192));
        m.home_insert(key(1), blk(1.0));
        m.home_insert(key(2), blk(2.0));
        m.cache_fill(BlockKey::new(ArrayId(2), &[1]), blk(3.0));
        m.cache_fill(BlockKey::new(ArrayId(2), &[2]), blk(4.0));
        m.enforce_budget()
            .expect("eviction pressure should suffice");
        let s = m.stats();
        assert!(s.pinned_bytes + s.cached_bytes <= 192);
        assert!(s.budget_evictions >= 1);
    }

    #[test]
    fn over_budget_error_when_pinned_exceeds_budget() {
        let mut m = BlockManager::new(1024, Some(100));
        m.home_insert(key(1), blk(1.0));
        m.home_insert(key(2), blk(2.0)); // 128 pinned > 100, nothing evictable
        match m.enforce_budget() {
            Err(RuntimeError::OverBudget {
                resident_bytes,
                budget,
            }) => {
                assert_eq!(resident_bytes, 128);
                assert_eq!(budget, 100);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
    }

    #[test]
    fn budget_respects_consumer_held_cache_entries() {
        // A cached block a consumer acquired a hold on after delivery is
        // pinned in practice: pressure must not evict it, and if that makes
        // the budget unreachable the manager reports OverBudget rather than
        // freeing memory out from under the holder.
        let mut m = BlockManager::new(1024, Some(64));
        m.cache_fill(key(1), blk(1.0));
        let held = match m.cache_lookup(&key(1)) {
            Some(CacheEntry::Ready(h)) => h.clone(),
            other => panic!("{other:?}"),
        };
        m.cache_fill(key(2), blk(2.0));
        m.enforce_budget().expect("consumer-free entry evicted");
        assert!(matches!(
            m.cache_peek(&key(1)),
            Some(CacheEntry::Ready(h)) if BlockHandle::ptr_eq(h, &held)
        ));
        assert!(m.cache_peek(&key(2)).is_none());
    }

    #[test]
    fn snapshot_home_is_zero_copy() {
        let mut m = BlockManager::new(1024, None);
        m.home_insert(key(1), blk(1.0));
        let snap = m.snapshot_home();
        assert_eq!(snap.len(), 1);
        let authoritative = m.serve_home(&key(1)).unwrap();
        assert!(BlockHandle::ptr_eq(&snap[0].1, &authoritative));
        assert_eq!(m.stats().deep_copies, 0);
    }

    #[test]
    fn norm_table_replaces_payload_and_clears_on_delete() {
        let mut m = BlockManager::new(1024, None);
        m.home_insert(key(1), blk(1.0));
        assert_eq!(m.stats().pinned_bytes, 64);
        // Dropping under the threshold removes the payload, records the norm.
        m.home_record_absent(key(1), 3e-11);
        assert_eq!(m.stats().pinned_bytes, 0);
        assert!(m.serve_home(&key(1)).is_none());
        assert_eq!(m.home_absent_norm(&key(1)), Some(3e-11));
        assert_eq!(m.home_norm_len(), 1);
        assert!(m.norm_table_bytes() > 0);
        // A real put supersedes the recorded absence.
        m.home_insert(key(1), blk(2.0));
        assert_eq!(m.home_absent_norm(&key(1)), None);
        assert_eq!(m.stats().pinned_bytes, 64);
        // DELETE clears norms along with payloads.
        m.home_record_absent(key(2), 1e-12);
        m.home_remove_array(ArrayId(0));
        assert_eq!(m.home_norm_len(), 0);
        assert_eq!(m.home_len(), 0);
    }

    #[test]
    fn drain_home_credits_bytes() {
        let mut m = BlockManager::new(1024, None);
        m.home_insert(key(1), blk(1.0));
        m.home_insert(key(2), blk(2.0));
        let drained = m.drain_home();
        assert_eq!(drained.len(), 2);
        assert_eq!(m.stats().pinned_bytes, 0);
        assert_eq!(m.home_len(), 0);
    }
}
