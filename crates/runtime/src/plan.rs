//! The communication planner (DESIGN.md §17).
//!
//! The paper's SIP fixes block homes with a static hash and ships every
//! block point-to-point. The planner recovers the structure that policy
//! throws away: it walks the bytecode once, and for every pardo region
//! classifies each distributed-array reference as
//!
//! * **aligned** — a `put` whose indices are all pardo-bound, so under the
//!   planned placement plus owner-compute chunk affinity the write lands on
//!   the rank that already homes the block (no fabric traffic at all);
//! * **broadcast-shaped** — a `get` whose indices are all pardo-bound but
//!   form a *strict subset* of the pardo indices, so many iterations (on
//!   many ranks) read the same block. These ship via tree multicast from
//!   the home instead of N point-to-point GET/reply pairs;
//! * **other** — everything else (e.g. a `get` driven by an inner `do`
//!   loop index), which stays on the demand-fetch path.
//!
//! The classification is purely static and deterministic: it depends only
//! on the program, the resolved index ranges, and the topology — never on
//! execution order — so every rank derives the identical plan from the
//! same `Layout`.
//!
//! The planner also predicts a per-rank communication-volume table
//! (`sial dryrun` prints it; metrics compare it against the measured
//! volume) and exports an aggregate [`PlanSummary`] that the `sia-sim`
//! strong-scaling model extrapolates to simulated rank counts far beyond
//! one host.

use crate::layout::Layout;
use crate::msg::BlockKey;
use crate::trace::{Trace, TracePhase};
use sia_bytecode::{ArrayId, ArrayKind, IndexId, Instruction as I, PutMode};
use std::collections::BTreeMap;

/// One broadcast-shaped operand of a pardo region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastOp {
    /// The distributed array read by every iteration sharing its indices.
    pub array: ArrayId,
    /// The reference's index variables (each pardo-bound; strict subset of
    /// the pardo indices).
    pub indices: Vec<IndexId>,
    /// Distinct blocks the reference addresses (product of index ranges).
    pub blocks: u64,
    /// Bytes of one (declared-shape) block.
    pub block_bytes: u64,
}

/// Owner-compute affinity for a pardo region: the distributed array whose
/// `put` is fully pardo-bound, and for each of its dimensions the position
/// of the addressing index inside the pardo index list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnerCompute {
    /// The written array.
    pub array: ArrayId,
    /// `dim_pos[d]` = position in the pardo index list of the index
    /// addressing dimension `d`.
    pub dim_pos: Vec<usize>,
}

impl OwnerCompute {
    /// The block key an iteration writes, given the pardo index values in
    /// pardo order.
    pub fn key_of(&self, pardo_vals: &[i64]) -> BlockKey {
        let segs: Vec<i64> = self.dim_pos.iter().map(|&p| pardo_vals[p]).collect();
        BlockKey::new(self.array, &segs)
    }
}

/// The plan for one pardo region, keyed by the `PardoStart` pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPlan {
    /// Pc of the `PardoStart`.
    pub pc: u32,
    /// The pardo's index variables, in program order.
    pub indices: Vec<IndexId>,
    /// Operands to ship by tree multicast.
    pub broadcast: Vec<BroadcastOp>,
    /// Owner-compute affinity, when the region has exactly one
    /// fully-pardo-bound distributed `put` target (and no conflicting
    /// second write pattern).
    pub owner: Option<OwnerCompute>,
}

/// Predicted per-rank communication volume (fabric bytes in + out).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommVolume {
    /// Bytes per worker (index = worker index, not rank).
    pub per_rank: Vec<f64>,
}

impl CommVolume {
    fn new(workers: usize) -> Self {
        CommVolume {
            per_rank: vec![0.0; workers],
        }
    }

    /// Total predicted fabric bytes across all workers.
    pub fn total(&self) -> u64 {
        self.per_rank.iter().sum::<f64>().round() as u64
    }

    /// The most-loaded worker's bytes.
    pub fn max(&self) -> u64 {
        self.per_rank.iter().cloned().fold(0.0, f64::max).round() as u64
    }

    /// Max / mean load ratio (1.0 = perfectly balanced; 0 workers or zero
    /// traffic reports 1.0).
    pub fn imbalance(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 1.0;
        }
        let mean = self.per_rank.iter().sum::<f64>() / self.per_rank.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        self.per_rank.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Aggregate byte classes the strong-scaling model extrapolates over
/// simulated rank counts (all summed over every pardo region, all
/// iterations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Bytes of fully-pardo-bound distributed puts (local under
    /// owner-compute, remote with probability (P−1)/P under hash).
    pub aligned_put_bytes: u64,
    /// Distinct broadcast-shaped blocks × their byte size (bytes shipped to
    /// *each* consuming rank once, whatever the transport).
    pub broadcast_bytes: u64,
    /// Distinct broadcast-shaped blocks (message-count model).
    pub broadcast_blocks: u64,
    /// All remaining get/put/request/prepare bytes (uniformly spread).
    pub other_bytes: u64,
}

/// The whole-program communication plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommPlan {
    /// Per-pardo-region plans, keyed by `PardoStart` pc.
    pub regions: BTreeMap<u32, RegionPlan>,
    /// Predicted per-rank fabric volume under the layout's configured
    /// placement.
    pub volume: CommVolume,
    /// Aggregate classes for the scaling model.
    pub summary: PlanSummary,
}

impl CommPlan {
    /// The plan for the pardo starting at `pc`, if any.
    pub fn region(&self, pc: u32) -> Option<&RegionPlan> {
        self.regions.get(&pc)
    }

    /// Renders the per-rank volume table the dryrun prints.
    pub fn volume_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "predicted comm volume per rank:");
        for (i, b) in self.volume.per_rank.iter().enumerate() {
            let _ = writeln!(out, "  worker {:>3}: {:>14} bytes", i + 1, b.round() as u64);
        }
        let _ = writeln!(
            out,
            "  total {} bytes, max {} bytes, imbalance {:.2}",
            self.volume.total(),
            self.volume.max(),
            self.volume.imbalance()
        );
        out
    }
}

/// Builds the communication plan for a program under a layout, consuming
/// the dry-run trace for iteration counts and byte totals.
pub struct CommPlanner<'a> {
    layout: &'a Layout,
    trace: &'a Trace,
    /// Per-array expected shipped fraction (1.0 everywhere without
    /// [`SipConfig::sparsity_density`] hints). Indexed by `ArrayId`.
    densities: Vec<f64>,
}

/// Above this many block-home evaluations per reference, the per-rank
/// volume model falls back to a uniform spread instead of enumerating the
/// block grid.
const ENUMERATION_LIMIT: u64 = 100_000;

impl<'a> CommPlanner<'a> {
    /// A planner over `layout` and the trace generated from it, assuming
    /// every block ships dense.
    pub fn new(layout: &'a Layout, trace: &'a Trace) -> Self {
        Self::with_densities(layout, trace, &BTreeMap::new())
    }

    /// A planner that folds [`SipConfig::sparsity_density`] hints into the
    /// volume model: a `sparse` array with density `d` is expected to ship
    /// only `d` of each dense block's bytes (the same clamped convention
    /// the dry run's realized-footprint estimate uses). Dense arrays and
    /// unhinted sparse arrays charge full dense payloads.
    pub fn with_densities(
        layout: &'a Layout,
        trace: &'a Trace,
        densities: &BTreeMap<String, f64>,
    ) -> Self {
        CommPlanner {
            layout,
            trace,
            densities: crate::trace::array_densities(layout, densities),
        }
    }

    /// The expected shipped fraction for one array.
    fn density_of(&self, array: ArrayId) -> f64 {
        self.densities[array.index()]
    }

    /// The bytes of one dense-sized transfer expected to actually ship.
    fn effective_bytes(&self, array: ArrayId, dense: u64) -> u64 {
        dense - crate::trace::density_discount(dense, self.density_of(array))
    }

    /// Derives the deterministic plan.
    pub fn plan(&self) -> CommPlan {
        let mut regions = BTreeMap::new();
        let code = &self.layout.program.code;
        for (pc, ins) in code.iter().enumerate() {
            if let I::PardoStart {
                indices, end_pc, ..
            } = ins
            {
                let region = self.plan_region(pc as u32, indices, *end_pc);
                regions.insert(pc as u32, region);
            }
        }
        let (volume, summary) = self.predict(&regions);
        CommPlan {
            regions,
            volume,
            summary,
        }
    }

    /// Classifies one pardo body.
    fn plan_region(&self, pc: u32, pardo: &[IndexId], end_pc: u32) -> RegionPlan {
        let code = &self.layout.program.code;
        let body = &code[(pc as usize + 1)..(end_pc as usize)];

        // Arrays written anywhere in the body are never broadcast: a
        // multicast copy could race the in-region write.
        let mut written: Vec<ArrayId> = Vec::new();
        for ins in body {
            if let I::Put { dest, .. } = ins {
                written.push(dest.array);
            }
        }

        let mut broadcast: Vec<BroadcastOp> = Vec::new();
        let mut owner: Option<OwnerCompute> = None;
        let mut owner_conflict = false;
        for ins in body {
            match ins {
                I::Get { block } => {
                    if self.layout.array_kind(block.array) != ArrayKind::Distributed
                        || written.contains(&block.array)
                    {
                        continue;
                    }
                    let all_bound = block.indices.iter().all(|i| pardo.contains(i));
                    // Strict subset: at least one pardo index does not
                    // address the operand, so whole groups of iterations
                    // share each block.
                    let strict = pardo.iter().any(|i| !block.indices.contains(i));
                    if !all_bound || !strict {
                        continue;
                    }
                    if broadcast
                        .iter()
                        .any(|b| b.array == block.array && b.indices == block.indices)
                    {
                        continue;
                    }
                    let blocks: u64 = block
                        .indices
                        .iter()
                        .map(|&i| self.layout.range_len(i))
                        .product();
                    broadcast.push(BroadcastOp {
                        array: block.array,
                        indices: block.indices.clone(),
                        blocks,
                        block_bytes: self.layout.block_bytes(block.array),
                    });
                }
                I::Put { dest, mode, .. } => {
                    if self.layout.array_kind(dest.array) != ArrayKind::Distributed {
                        continue;
                    }
                    let fully_bound = dest.indices.iter().all(|i| pardo.contains(i))
                        && dest.indices.len() == self.layout.array(dest.array).dims.len();
                    // Accumulates from several iterations may target one
                    // block; affinity would then pick one owner for
                    // iterations that also read elsewhere — still sound,
                    // but only Replace guarantees a one-to-one
                    // iteration→block map worth steering for.
                    if !fully_bound || *mode != PutMode::Replace {
                        owner_conflict = true;
                        continue;
                    }
                    let dim_pos: Vec<usize> = dest
                        .indices
                        .iter()
                        .map(|i| pardo.iter().position(|p| p == i).unwrap())
                        .collect();
                    let candidate = OwnerCompute {
                        array: dest.array,
                        dim_pos,
                    };
                    match &owner {
                        None => owner = Some(candidate),
                        Some(o) if *o == candidate => {}
                        Some(_) => owner_conflict = true,
                    }
                }
                _ => {}
            }
        }
        if owner_conflict {
            owner = None;
        }
        RegionPlan {
            pc,
            indices: pardo.to_vec(),
            broadcast,
            owner,
        }
    }

    /// Predicts per-rank fabric bytes under the configured placement, plus
    /// the aggregate summary for the scaling model.
    ///
    /// The model is deliberately simple: aligned puts land at the written
    /// block's home (local — zero fabric bytes — when the placement is
    /// planned and the region has owner-compute affinity); each broadcast
    /// block reaches every worker once, with the *outbound* side
    /// concentrated at the home under point-to-point shipping but spread
    /// along the multicast tree under the planned schedule; everything
    /// else is spread uniformly with a (W−1)/W remote fraction.
    fn predict(&self, regions: &BTreeMap<u32, RegionPlan>) -> (CommVolume, PlanSummary) {
        let workers = self.layout.topology.workers;
        let planned = self.layout.placement_name() == "planned";
        let mut vol = CommVolume::new(workers);
        let mut sum = PlanSummary::default();
        if workers == 0 {
            return (vol, sum);
        }
        let w = workers as f64;
        let remote = (w - 1.0) / w;

        for phase in &self.trace.phases {
            let (pc, iterations, per_iter) = match phase {
                TracePhase::Pardo {
                    pc,
                    iterations,
                    per_iter,
                } => (Some(*pc), *iterations, *per_iter),
                TracePhase::Serial(p) => (None, 1, *p),
                _ => continue,
            };
            let region = pc.and_then(|pc| regions.get(&pc));

            // Broadcast operands: each distinct block reaches every worker
            // once (the cache holds it across iterations). Dense bytes and
            // the sparse discount are tracked separately so the subtraction
            // from the trace's dense totals below stays exact.
            let mut bcast_get_bytes_per_iter = 0u64;
            let mut bcast_get_discount_per_iter = 0u64;
            if let Some(r) = region {
                for b in &r.broadcast {
                    let eff = self.effective_bytes(b.array, b.block_bytes);
                    bcast_get_bytes_per_iter += b.block_bytes;
                    bcast_get_discount_per_iter += b.block_bytes - eff;
                    sum.broadcast_blocks += b.blocks;
                    sum.broadcast_bytes += b.blocks * eff;
                    self.spread_broadcast(&mut vol, b, planned);
                }
            }

            // Aligned puts: enumerate the written grid and charge homes.
            let mut aligned_put_bytes_per_iter = 0u64;
            let mut aligned_put_discount_per_iter = 0u64;
            if let Some(OwnerCompute { array, .. }) = region.and_then(|r| r.owner.as_ref()) {
                let bytes = self.layout.block_bytes(*array);
                let eff = self.effective_bytes(*array, bytes);
                aligned_put_bytes_per_iter = bytes;
                aligned_put_discount_per_iter = bytes - eff;
                let blocks = self.layout.total_blocks(*array);
                sum.aligned_put_bytes += blocks * eff;
                if !planned {
                    self.spread_puts(&mut vol, *array, remote);
                }
                // Planned + owner-compute: the put is local. No traffic.
            }

            // Everything else from the trace, uniformly spread. Bytes are
            // totals over all iterations; broadcast/aligned components use
            // the cache-aware models above instead. The trace's sparse
            // discounts (density hints) come off each class, minus the
            // share already excluded with the broadcast/aligned bytes.
            let get_discount = per_iter
                .get_discount_bytes
                .saturating_sub(bcast_get_discount_per_iter);
            let put_discount = per_iter
                .put_discount_bytes
                .saturating_sub(aligned_put_discount_per_iter);
            let other_get = (iterations * per_iter.get_bytes)
                .saturating_sub(iterations * bcast_get_bytes_per_iter)
                .saturating_sub(iterations * get_discount);
            let other_put = (iterations * per_iter.put_bytes)
                .saturating_sub(iterations * aligned_put_bytes_per_iter)
                .saturating_sub(iterations * put_discount);
            let served = (iterations * (per_iter.request_bytes + per_iter.prepare_bytes))
                .saturating_sub(
                    iterations
                        * (per_iter.request_discount_bytes + per_iter.prepare_discount_bytes),
                );
            let other = (other_get + other_put + served) as f64;
            sum.other_bytes += other.round() as u64;
            // in + out for each transferred byte, remote fraction (W−1)/W.
            let per_rank = other * remote * 2.0 / w;
            for v in vol.per_rank.iter_mut() {
                *v += per_rank;
            }
        }
        (vol, sum)
    }

    /// Charges one broadcast operand's traffic to the volume table.
    fn spread_broadcast(&self, vol: &mut CommVolume, b: &BroadcastOp, planned: bool) {
        let workers = self.layout.topology.workers;
        let w = workers as f64;
        let eff_bytes = self.effective_bytes(b.array, b.block_bytes);
        let cost = b.blocks * workers as u64;
        if cost > ENUMERATION_LIMIT {
            // Uniform fallback: every rank receives each block once;
            // outbound averages out across homes (hash) or the tree
            // (planned) identically in aggregate.
            let per_rank = b.blocks as f64 * eff_bytes as f64 * (2.0 * (w - 1.0) / w);
            for v in vol.per_rank.iter_mut() {
                *v += per_rank;
            }
            return;
        }
        let ranges: Vec<(i64, i64)> = b.indices.iter().map(|&i| self.layout.range(i)).collect();
        let mut segs: Vec<i64> = ranges.iter().map(|r| r.0).collect();
        loop {
            let key = BlockKey::new(b.array, &segs);
            let home = self.layout.slot_of_distributed(&key);
            let bytes = eff_bytes as f64;
            // Every rank but the home receives the block once.
            for (i, v) in vol.per_rank.iter_mut().enumerate() {
                if i != home {
                    *v += bytes;
                }
            }
            if planned {
                // Tree multicast: the rank at tree position p forwards to
                // its children 2p+1, 2p+2 (positions rotated so the home
                // is the root).
                for pos in 0..workers {
                    let mut children = 0u64;
                    if 2 * pos + 1 < workers {
                        children += 1;
                    }
                    if 2 * pos + 2 < workers {
                        children += 1;
                    }
                    let rank = (home + pos) % workers;
                    vol.per_rank[rank] += bytes * children as f64;
                }
            } else {
                // Point-to-point: the home answers W−1 GETs itself.
                vol.per_rank[home] += bytes * (workers as f64 - 1.0);
            }
            // Advance the odometer.
            let mut d = segs.len();
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                segs[d] += 1;
                if segs[d] <= ranges[d].1 {
                    break;
                }
                segs[d] = ranges[d].0;
            }
        }
    }

    /// Charges hash-placement aligned-put traffic: each block's bytes
    /// arrive at its home (in) and leave a uniformly-chosen writer (out).
    fn spread_puts(&self, vol: &mut CommVolume, array: ArrayId, remote: f64) {
        let workers = self.layout.topology.workers;
        let w = workers as f64;
        let bytes = self.effective_bytes(array, self.layout.block_bytes(array)) as f64;
        let blocks = self.layout.total_blocks(array);
        if blocks * workers as u64 > ENUMERATION_LIMIT {
            let per_rank = blocks as f64 * bytes * remote * 2.0 / w;
            for v in vol.per_rank.iter_mut() {
                *v += per_rank;
            }
            return;
        }
        let decl = &self.layout.program.arrays[array.index()];
        let ranges: Vec<(i64, i64)> = decl.dims.iter().map(|&i| self.layout.range(i)).collect();
        if ranges.is_empty() {
            return;
        }
        let mut segs: Vec<i64> = ranges.iter().map(|r| r.0).collect();
        loop {
            let key = BlockKey::new(array, &segs);
            let home = self.layout.slot_of_distributed(&key);
            vol.per_rank[home] += bytes * remote;
            for v in vol.per_rank.iter_mut() {
                *v += bytes * remote / w;
            }
            let mut d = segs.len();
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                segs[d] += 1;
                if segs[d] <= ranges[d].1 {
                    break;
                }
                segs[d] = ranges[d].0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Placement, SegmentConfig, Topology};
    use crate::trace::{default_cost_model, generate};
    use sia_bytecode::ConstBindings;
    use std::sync::Arc;

    fn plan_of(src: &str, n: i64, placement: Placement) -> (Arc<Layout>, CommPlan) {
        let program = sial_frontend::compile(src).unwrap();
        let mut b = ConstBindings::new();
        b.insert("n".into(), n);
        b.insert("nocc".into(), 2);
        let mut topo = Topology::new(3, 1);
        topo.placement = placement;
        let layout = Arc::new(
            Layout::new(
                Arc::new(program),
                &b,
                SegmentConfig {
                    default: 4,
                    ..Default::default()
                },
                topo,
            )
            .unwrap(),
        );
        let trace = generate(&layout, &default_cost_model()).unwrap();
        let plan = CommPlanner::new(&layout, &trace).plan();
        (layout, plan)
    }

    const BCAST: &str = "sial t\naoindex M = 1, n\naoindex N = 1, n\ndistributed F(M)\ndistributed R(M,N)\ntemp f(M)\ntemp q(M,N)\npardo M, N\nget F(M)\nf(M) = F(M)\nq(M,N) = 0.0\nput R(M,N) = q(M,N)\nendpardo\nendsial\n";

    #[test]
    fn broadcast_operand_detected() {
        let (_, plan) = plan_of(BCAST, 4, Placement::Planned);
        let region = plan.regions.values().next().unwrap();
        assert_eq!(region.broadcast.len(), 1, "{region:?}");
        let b = &region.broadcast[0];
        assert_eq!(b.blocks, 4);
        assert!(b.block_bytes > 0);
    }

    #[test]
    fn fully_bound_get_is_not_broadcast() {
        // R is read with all pardo indices — each iteration gets its own
        // block, nothing to multicast.
        let src = "sial t\naoindex M = 1, n\naoindex N = 1, n\ndistributed R(M,N)\ntemp q(M,N)\npardo M, N\nget R(M,N)\nq(M,N) = R(M,N)\nendpardo\nendsial\n";
        let (_, plan) = plan_of(src, 4, Placement::Planned);
        let region = plan.regions.values().next().unwrap();
        assert!(region.broadcast.is_empty());
    }

    #[test]
    fn written_array_never_broadcast() {
        let src = "sial t\naoindex M = 1, n\naoindex N = 1, n\ndistributed F(M)\ntemp q(M)\npardo M, N\nget F(M)\nq(M) = F(M)\nput F(M) = q(M)\nendpardo\nendsial\n";
        // F is both read and written in the body — a multicast copy could
        // race the in-region write, so it must not classify as broadcast.
        let (_, plan) = plan_of(src, 4, Placement::Planned);
        let region = plan.regions.values().next().unwrap();
        assert!(region.broadcast.is_empty());
    }

    #[test]
    fn inner_do_get_not_broadcast() {
        let src = "sial t\naoindex M = 1, n\naoindex L = 1, n\ndistributed X(M,L)\ntemp q(M,L)\npardo M\ndo L\nget X(M,L)\nq(M,L) = X(M,L)\nenddo L\nendpardo\nendsial\n";
        let (_, plan) = plan_of(src, 4, Placement::Planned);
        let region = plan.regions.values().next().unwrap();
        assert!(region.broadcast.is_empty());
    }

    #[test]
    fn owner_compute_detected_and_keys_map() {
        let (_, plan) = plan_of(BCAST, 4, Placement::Planned);
        let region = plan.regions.values().next().unwrap();
        let owner = region.owner.as_ref().expect("owner-compute");
        // pardo M, N; put R(M,N): dim 0 ← pardo pos 0, dim 1 ← pos 1.
        assert_eq!(owner.dim_pos, vec![0, 1]);
        let key = owner.key_of(&[2, 3]);
        assert_eq!(&key.segs[..2], &[2, 3]);
    }

    #[test]
    fn accumulate_put_disables_owner_compute() {
        let src = "sial t\naoindex M = 1, n\naoindex N = 1, n\ndistributed R(M)\ntemp q(M)\npardo M, N\nq(M) = 1.0\nput R(M) += q(M)\nendpardo\nendsial\n";
        let (_, plan) = plan_of(src, 4, Placement::Planned);
        let region = plan.regions.values().next().unwrap();
        assert!(region.owner.is_none());
    }

    #[test]
    fn plan_deterministic() {
        let (_, a) = plan_of(BCAST, 4, Placement::Planned);
        let (_, b) = plan_of(BCAST, 4, Placement::Planned);
        assert_eq!(a, b);
    }

    #[test]
    fn planned_volume_not_worse_than_hash() {
        let (_, hash) = plan_of(BCAST, 6, Placement::Hash);
        let (_, planned) = plan_of(BCAST, 6, Placement::Planned);
        assert!(
            planned.volume.total() <= hash.volume.total(),
            "planned {} > hash {}",
            planned.volume.total(),
            hash.volume.total()
        );
        // The aligned puts vanish entirely under owner-compute.
        assert!(planned.volume.total() < hash.volume.total());
    }

    #[test]
    fn volume_table_renders() {
        let (_, plan) = plan_of(BCAST, 4, Placement::Planned);
        let table = plan.volume_table();
        assert!(table.contains("predicted comm volume per rank:"));
        assert!(table.contains("imbalance"));
    }

    #[test]
    fn summary_classes_populated() {
        let (_, plan) = plan_of(BCAST, 4, Placement::Planned);
        assert!(plan.summary.aligned_put_bytes > 0);
        assert!(plan.summary.broadcast_bytes > 0);
        assert_eq!(plan.summary.broadcast_blocks, 4);
    }

    /// Regression (PR 9): the comm-volume table must honour
    /// `sparsity_density` hints the way the dry run's realized-footprint
    /// estimate does, instead of charging dense payloads for sparse
    /// arrays. On the screened-MP2 program (whose only distributed array
    /// is the sparse `Vd`), the predicted volume under a density hint must
    /// scale by that density and stay consistent with the realized
    /// per-block bytes the memory estimate assumes.
    #[test]
    fn sparse_density_scales_comm_volume_like_realized_estimate() {
        use crate::layout::SipConfig;
        let src = include_str!("../../../programs/mp2_screened.sial");
        let program = sial_frontend::compile(src).unwrap();
        let mut b = ConstBindings::new();
        b.insert("nocc".into(), 2);
        b.insert("nvrt".into(), 4);
        let topo = Topology::new(4, 0);
        let layout = Arc::new(
            Layout::new(
                Arc::new(program),
                &b,
                SegmentConfig {
                    default: 4,
                    ..Default::default()
                },
                topo,
            )
            .unwrap(),
        );
        let density = 0.2;
        let mut hints = BTreeMap::new();
        hints.insert("Vd".to_string(), density);

        let dense_trace = generate(&layout, &default_cost_model()).unwrap();
        let dense = CommPlanner::new(&layout, &dense_trace).plan();
        let sparse_trace =
            crate::trace::generate_with_densities(&layout, &default_cost_model(), &hints).unwrap();
        let sparse = CommPlanner::with_densities(&layout, &sparse_trace, &hints).plan();

        assert!(dense.volume.total() > 0, "dense plan predicts traffic");
        let ratio = sparse.volume.total() as f64 / dense.volume.total() as f64;
        assert!(
            (ratio - density).abs() < 0.01,
            "predicted volume must scale by the density hint: ratio {ratio}, density {density}"
        );

        // Agreement with the dryrun memory estimate's convention: both
        // models assume the same realized bytes per shipped Vd block.
        let config = SipConfig {
            workers: 4,
            io_servers: 0,
            sparsity_density: hints.clone(),
            ..SipConfig::default()
        };
        let est = crate::dryrun::estimate(&layout, &config);
        assert!(
            est.per_worker_bytes < est.dense_per_worker_bytes,
            "realized estimate must drop below dense under the hint"
        );
        let vd = layout.program.array_by_name("Vd").unwrap();
        let dense_block = layout.block_bytes(vd);
        let planner = CommPlanner::with_densities(&layout, &sparse_trace, &hints);
        assert_eq!(
            planner.effective_bytes(vd, dense_block),
            (dense_block as f64 * density).round() as u64,
            "planner and dry run must share the realized per-block bytes"
        );
    }
}
