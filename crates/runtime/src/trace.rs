//! Trace generation: the dry-run walk that feeds the scale simulator.
//!
//! The paper's evaluation runs on up to 108,000 cores — far beyond one host.
//! Our reproduction replays the *policies* of the SIP (guided chunks,
//! prefetch overlap, static placement) in a discrete-event simulator
//! (`sia-sim`), driven by a trace extracted here with the same machinery the
//! dry run uses: a sequential, data-free walk of the bytecode that records,
//! per pardo iteration, how many blocks move and how many flops run.
//!
//! Iterations of one pardo are homogeneous in this domain (the same loop
//! body over same-shaped blocks), so the trace stores one representative
//! iteration profile plus the iteration count — keeping traces tiny even for
//! CCSD(T)-sized problems.

use crate::error::RuntimeError;
use crate::layout::Layout;
use crate::scheduler::{eval_bool, eval_scalar};
use sia_blocks::{ContractionPlan, Shape};
use sia_bytecode::{ArrayKind, BlockRef, IndexId, Instruction as I};
use std::collections::HashSet;
use std::sync::Arc;

/// Per-iteration (or per-serial-section) operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterProfile {
    /// Distributed-block fetches (after per-iteration cache dedup).
    pub gets: u64,
    /// Bytes fetched from distributed arrays.
    pub get_bytes: u64,
    /// Served-block fetches.
    pub requests: u64,
    /// Bytes fetched from served arrays.
    pub request_bytes: u64,
    /// Distributed-block stores.
    pub puts: u64,
    /// Bytes stored to distributed arrays.
    pub put_bytes: u64,
    /// Served-block stores.
    pub prepares: u64,
    /// Bytes stored to served arrays.
    pub prepare_bytes: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Of `get_bytes`, the portion a [`SipConfig::sparsity_density`] hint
    /// says will never ship (absent blocks of `sparse` arrays). Zero when
    /// the trace was generated without density hints. The dense totals
    /// above stay dense so the scale simulator and the planner can model
    /// both the declared and the realized traffic.
    pub get_discount_bytes: u64,
    /// Sparse discount on `put_bytes`.
    pub put_discount_bytes: u64,
    /// Sparse discount on `request_bytes`.
    pub request_discount_bytes: u64,
    /// Sparse discount on `prepare_bytes`.
    pub prepare_discount_bytes: u64,
}

impl IterProfile {
    /// Whether anything at all happens.
    pub fn is_trivial(&self) -> bool {
        *self == IterProfile::default()
    }

    /// Componentwise sum.
    pub fn add(&mut self, other: &IterProfile) {
        self.gets += other.gets;
        self.get_bytes += other.get_bytes;
        self.requests += other.requests;
        self.request_bytes += other.request_bytes;
        self.puts += other.puts;
        self.put_bytes += other.put_bytes;
        self.prepares += other.prepares;
        self.prepare_bytes += other.prepare_bytes;
        self.flops += other.flops;
        self.get_discount_bytes += other.get_discount_bytes;
        self.put_discount_bytes += other.put_discount_bytes;
        self.request_discount_bytes += other.request_discount_bytes;
        self.prepare_discount_bytes += other.prepare_discount_bytes;
    }
}

/// One phase of the traced program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TracePhase {
    /// Code executed redundantly by every worker (outside pardos).
    Serial(IterProfile),
    /// A pardo: `iterations` copies of `per_iter`, scheduled by the master.
    Pardo {
        /// Pc of the `PardoStart` (profile/trace correlation).
        pc: u32,
        /// Iterations surviving the where clauses.
        iterations: u64,
        /// Representative per-iteration profile.
        per_iter: IterProfile,
    },
    /// `sip_barrier`.
    SipBarrier,
    /// `server_barrier`.
    ServerBarrier,
    /// A collective (e.g. `sip_allreduce`): one small message per worker to
    /// the master and back.
    Collective,
}

/// A whole-program trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Phases in program order.
    pub phases: Vec<TracePhase>,
}

impl Trace {
    /// Total flops across all phases (all iterations).
    pub fn total_flops(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match p {
                TracePhase::Serial(s) => s.flops,
                TracePhase::Pardo {
                    iterations,
                    per_iter,
                    ..
                } => iterations * per_iter.flops,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes moved (gets + puts + requests + prepares).
    pub fn total_bytes(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match p {
                TracePhase::Serial(s) => {
                    s.get_bytes + s.put_bytes + s.request_bytes + s.prepare_bytes
                }
                TracePhase::Pardo {
                    iterations,
                    per_iter,
                    ..
                } => {
                    iterations
                        * (per_iter.get_bytes
                            + per_iter.put_bytes
                            + per_iter.request_bytes
                            + per_iter.prepare_bytes)
                }
                _ => 0,
            })
            .sum()
    }
}

/// Cost model for `execute` super instructions: flops given the instruction
/// name and its block-argument shapes.
pub type CostModel = Arc<dyn Fn(&str, &[Shape]) -> u64 + Send + Sync>;

/// The default cost model: touching every element once (2 flops/element).
pub fn default_cost_model() -> CostModel {
    Arc::new(|_name, shapes| shapes.iter().map(|s| 2 * s.len() as u64).sum())
}

/// Above this iteration-space size, where-clause survival is estimated by
/// deterministic strided sampling instead of full enumeration.
const EXACT_COUNT_LIMIT: u64 = 4_000_000;

/// Per-pardo-iteration walk context: the accumulating profile plus the
/// fetch-dedup set mirroring the block cache.
type IterCtx<'a> = Option<(&'a mut IterProfile, &'a mut HashSet<(u32, Vec<i64>)>)>;

struct Walker<'a> {
    layout: &'a Layout,
    cost: &'a CostModel,
    scalars: Vec<f64>,
    env: Vec<i64>,
    phases: Vec<TracePhase>,
    serial: IterProfile,
    /// Per-array expected fraction of blocks that actually ship (1.0 for
    /// dense arrays and for sparse arrays without a density hint).
    densities: Vec<f64>,
}

/// Generates the trace for a program under a layout, assuming every block
/// ships dense (no sparsity hints).
pub fn generate(layout: &Layout, cost: &CostModel) -> Result<Trace, RuntimeError> {
    generate_with_densities(layout, cost, &std::collections::BTreeMap::new())
}

/// Expected shipped fraction per array: `sparsity_density` hints apply to
/// `sparse` arrays only, clamped exactly like the dry run's realized
/// estimate so the two models agree.
pub(crate) fn array_densities(
    layout: &Layout,
    densities: &std::collections::BTreeMap<String, f64>,
) -> Vec<f64> {
    layout
        .program
        .arrays
        .iter()
        .map(|decl| {
            if decl.sparse {
                densities
                    .get(&decl.name)
                    .copied()
                    .unwrap_or(1.0)
                    .clamp(0.0, 1.0)
            } else {
                1.0
            }
        })
        .collect()
}

/// Generates the trace, additionally recording the per-class byte discount
/// that [`SipConfig::sparsity_density`] hints predict for `sparse` arrays
/// (the comm planner subtracts it from the dense totals).
pub fn generate_with_densities(
    layout: &Layout,
    cost: &CostModel,
    densities: &std::collections::BTreeMap<String, f64>,
) -> Result<Trace, RuntimeError> {
    let mut w = Walker {
        layout,
        cost,
        scalars: layout.program.scalars.iter().map(|s| s.init).collect(),
        env: vec![0; layout.program.indices.len()],
        phases: Vec::new(),
        serial: IterProfile::default(),
        densities: array_densities(layout, densities),
    };
    w.walk_range(0, layout.program.code.len() as u32, &mut None)?;
    w.flush_serial();
    Ok(Trace { phases: w.phases })
}

/// The bytes a density hint predicts will *not* ship for one dense-sized
/// transfer.
pub(crate) fn density_discount(bytes: u64, density: f64) -> u64 {
    bytes - (bytes as f64 * density).round() as u64
}

impl<'a> Walker<'a> {
    fn flush_serial(&mut self) {
        if !self.serial.is_trivial() {
            self.phases.push(TracePhase::Serial(self.serial));
            self.serial = IterProfile::default();
        }
    }

    fn eval(&self, e: &sia_bytecode::ScalarExpr) -> f64 {
        let env = &self.env;
        let sc = &self.scalars;
        let c = &self.layout.consts;
        eval_scalar(
            e,
            &|id: IndexId| env[id.index()],
            &|i| sc[i as usize],
            &|i| c[i as usize],
        )
    }

    fn cond(&self, e: &sia_bytecode::BoolExpr) -> bool {
        let env = &self.env;
        let sc = &self.scalars;
        let c = &self.layout.consts;
        eval_bool(
            e,
            &|id: IndexId| env[id.index()],
            &|i| sc[i as usize],
            &|i| c[i as usize],
        )
    }

    fn ref_bytes(&self, r: &BlockRef) -> u64 {
        self.layout.block_shape(&r.indices).len() as u64 * 8
    }

    /// Record a fetch with per-iteration dedup (`seen` is reset per pardo
    /// iteration, mirroring the block cache).
    fn record_fetch(
        &mut self,
        r: &BlockRef,
        seen: &mut Option<HashSet<(u32, Vec<i64>)>>,
        acc: &mut IterProfile,
    ) {
        let segs: Vec<i64> = r.indices.iter().map(|&i| self.env[i.index()]).collect();
        if let Some(set) = seen {
            if !set.insert((r.array.0, segs)) {
                return;
            }
        }
        let bytes = self.layout.block_bytes(r.array);
        let discount = density_discount(bytes, self.densities[r.array.index()]);
        match self.layout.array_kind(r.array) {
            ArrayKind::Distributed => {
                acc.gets += 1;
                acc.get_bytes += bytes;
                acc.get_discount_bytes += discount;
            }
            ArrayKind::Served => {
                acc.requests += 1;
                acc.request_bytes += bytes;
                acc.request_discount_bytes += discount;
            }
            _ => {}
        }
    }

    /// Walks `[from, to)` accumulating into `self.serial` unless inside a
    /// pardo body walk (then `iter_acc` is a Some(&mut profile) target).
    #[allow(clippy::too_many_lines)]
    fn walk_range(&mut self, from: u32, to: u32, ctx: &mut IterCtx) -> Result<(), RuntimeError> {
        let program = Arc::clone(&self.layout.program);
        let mut pc = from;
        while pc < to {
            let ins = &program.code[pc as usize];
            match ins {
                I::PardoStart {
                    indices,
                    where_clauses,
                    end_pc,
                } => {
                    if ctx.is_some() {
                        return Err(RuntimeError::BadProgram("nested pardo in trace".into()));
                    }
                    self.flush_serial();
                    let (iterations, first) = self.count_iterations(indices, where_clauses);
                    let mut per_iter = IterProfile::default();
                    if let Some(vals) = first {
                        for (idx, v) in indices.iter().zip(&vals) {
                            self.env[idx.index()] = *v;
                        }
                        let mut seen: HashSet<(u32, Vec<i64>)> = HashSet::new();
                        let mut inner = IterProfile::default();
                        {
                            let mut c = Some((&mut inner, &mut seen));
                            self.walk_range(pc + 1, *end_pc, &mut c)?;
                        }
                        per_iter = inner;
                        for idx in indices {
                            self.env[idx.index()] = 0;
                        }
                    }
                    self.phases.push(TracePhase::Pardo {
                        pc,
                        iterations,
                        per_iter,
                    });
                    pc = *end_pc + 1;
                    continue;
                }
                I::PardoEnd { .. } => {}
                I::DoStart { index, end_pc } => {
                    let (lo, hi) = self.layout.range(*index);
                    for v in lo..=hi {
                        self.env[index.index()] = v;
                        self.walk_range(pc + 1, *end_pc, ctx)?;
                    }
                    self.env[index.index()] = 0;
                    pc = *end_pc + 1;
                    continue;
                }
                I::DoInStart {
                    sub,
                    parent,
                    end_pc,
                    ..
                } => {
                    let pval = self.env[parent.index()];
                    let (lo, hi) = self.layout.sub_range(pval.max(1));
                    for v in lo..=hi {
                        self.env[sub.index()] = v;
                        self.walk_range(pc + 1, *end_pc, ctx)?;
                    }
                    self.env[sub.index()] = 0;
                    pc = *end_pc + 1;
                    continue;
                }
                I::DoEnd { .. } | I::DoInEnd { .. } => {}
                I::JumpIfFalse { cond, target } => {
                    if !self.cond(cond) {
                        pc = *target;
                        continue;
                    }
                }
                I::Jump { target } => {
                    pc = *target;
                    continue;
                }
                I::Call { proc } => {
                    let entry = program.procs[proc.index()].entry_pc;
                    // Procedure bodies end at their Return.
                    let mut end = entry;
                    while !matches!(program.code.get(end as usize), Some(I::Return) | None) {
                        end += 1;
                    }
                    self.walk_range(entry, end, ctx)?;
                }
                I::Return | I::Halt => return Ok(()),
                // `exit` ends the enclosing sequential loop at runtime. The
                // walker cannot know when a data-dependent exit fires, so it
                // stops the current body walk and lets the loop continue —
                // the trace upper-bounds work for convergence-style loops.
                I::ExitLoop { .. } => return Ok(()),
                I::Create { .. } | I::Delete { .. } => {}
                I::Get { block } | I::Request { block } => {
                    let mut tmp = IterProfile::default();
                    match ctx {
                        Some((_, seen)) => {
                            let mut opt = Some(std::mem::take(*seen));
                            self.record_fetch(block, &mut opt, &mut tmp);
                            **seen = opt.unwrap();
                        }
                        None => {
                            self.record_fetch(block, &mut None, &mut tmp);
                        }
                    }
                    self.acc(ctx).add(&tmp);
                }
                I::Put { dest, .. } => {
                    let bytes = self.ref_bytes(dest);
                    let discount = density_discount(bytes, self.densities[dest.array.index()]);
                    let acc = self.acc(ctx);
                    acc.puts += 1;
                    acc.put_bytes += bytes;
                    acc.put_discount_bytes += discount;
                }
                I::Prepare { dest, .. } => {
                    let bytes = self.ref_bytes(dest);
                    let discount = density_discount(bytes, self.densities[dest.array.index()]);
                    let acc = self.acc(ctx);
                    acc.prepares += 1;
                    acc.prepare_bytes += bytes;
                    acc.prepare_discount_bytes += discount;
                }
                I::BlocksToList { array, .. } | I::ListToBlocks { array, .. } => {
                    let blocks = self.layout.total_blocks(*array);
                    let bytes = self.layout.block_bytes(*array) * blocks;
                    let acc = self.acc(ctx);
                    acc.put_bytes += bytes;
                    acc.puts += blocks;
                }
                I::BlockFill { dest, .. } | I::BlockScale { dest, .. } => {
                    let n = self.layout.block_shape(&dest.indices).len() as u64;
                    self.acc(ctx).flops += n;
                }
                I::BlockCopy { dest, .. } | I::BlockAccumulate { dest, .. } => {
                    let n = self.layout.block_shape(&dest.indices).len() as u64;
                    self.acc(ctx).flops += 2 * n;
                }
                I::BlockContract { dest, a, b, .. } => {
                    let plan = ContractionPlan::infer(
                        &a_labels(&dest.indices),
                        &a_labels(&a.indices),
                        &a_labels(&b.indices),
                    )
                    .map_err(|e| RuntimeError::BadProgram(format!("contraction: {e}")))?;
                    let fa = self.layout.block_shape(&a.indices);
                    let fb = self.layout.block_shape(&b.indices);
                    self.acc(ctx).flops += plan.flops(&fa, &fb);
                }
                I::ScalarAssign { dest, expr } => {
                    self.scalars[dest.index()] = self.eval(expr);
                }
                I::ScalarFromBlock { .. } | I::Print { .. } => {}
                I::ExecuteSuper { name, args } => {
                    let name = &program.strings[name.index()];
                    if name == crate::interp::SIP_ALLREDUCE {
                        self.flush_serial();
                        self.phases.push(TracePhase::Collective);
                    } else {
                        let shapes: Vec<Shape> = args
                            .iter()
                            .filter_map(|a| match a {
                                sia_bytecode::Arg::Block(r) => {
                                    Some(self.layout.block_shape(&r.indices))
                                }
                                _ => None,
                            })
                            .collect();
                        self.acc(ctx).flops += (self.cost)(name, &shapes);
                    }
                }
                I::SipBarrier => {
                    self.flush_serial();
                    self.phases.push(TracePhase::SipBarrier);
                }
                I::ServerBarrier => {
                    self.flush_serial();
                    self.phases.push(TracePhase::ServerBarrier);
                }
            }
            pc += 1;
        }
        Ok(())
    }

    fn acc<'b>(&'b mut self, ctx: &'b mut IterCtx<'_>) -> &'b mut IterProfile {
        match ctx {
            Some((acc, _)) => acc,
            None => &mut self.serial,
        }
    }

    /// Counts iterations passing the where clauses, returning the first
    /// passing assignment. Uses exact enumeration up to a limit, then
    /// deterministic strided sampling.
    fn count_iterations(
        &self,
        indices: &[IndexId],
        wheres: &[sia_bytecode::BoolExpr],
    ) -> (u64, Option<Vec<i64>>) {
        let ranges: Vec<(i64, i64)> = indices.iter().map(|&i| self.layout.range(i)).collect();
        let product: u64 = ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u64)
            .product();
        if product == 0 {
            return (0, None);
        }
        let sc = &self.scalars;
        let c = &self.layout.consts;
        let passes = |vals: &[i64]| -> bool {
            let index_val = |id: IndexId| -> i64 {
                indices
                    .iter()
                    .position(|&x| x == id)
                    .map(|p| vals[p])
                    .unwrap_or(0)
            };
            wheres
                .iter()
                .all(|w| eval_bool(w, &index_val, &|i| sc[i as usize], &|i| c[i as usize]))
        };
        let decode = |mut n: u64| -> Vec<i64> {
            let mut vals = vec![0i64; ranges.len()];
            for d in (0..ranges.len()).rev() {
                let len = (ranges[d].1 - ranges[d].0 + 1) as u64;
                vals[d] = ranges[d].0 + (n % len) as i64;
                n /= len;
            }
            vals
        };
        if wheres.is_empty() {
            return (product, Some(decode(0)));
        }
        if product <= EXACT_COUNT_LIMIT {
            let mut count = 0;
            let mut first = None;
            for n in 0..product {
                let vals = decode(n);
                if passes(&vals) {
                    count += 1;
                    if first.is_none() {
                        first = Some(vals);
                    }
                }
            }
            (count, first)
        } else {
            // Deterministic strided sampling.
            let samples = 1_000_000u64;
            let stride = (product / samples).max(1);
            let mut hits = 0u64;
            let mut tried = 0u64;
            let mut first = None;
            let mut n = 0u64;
            while n < product {
                let vals = decode(n);
                tried += 1;
                if passes(&vals) {
                    hits += 1;
                    if first.is_none() {
                        first = Some(vals);
                    }
                }
                n += stride;
            }
            let est = ((hits as f64 / tried as f64) * product as f64).round() as u64;
            (est, first)
        }
    }
}

fn a_labels(indices: &[IndexId]) -> Vec<u32> {
    indices.iter().map(|i| i.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{SegmentConfig, Topology};
    use sia_bytecode::ConstBindings;

    fn trace_of(src: &str, n: i64) -> Trace {
        let program = sial_frontend::compile(src).unwrap();
        let mut b = ConstBindings::new();
        b.insert("n".into(), n);
        b.insert("nocc".into(), 2);
        let layout = Layout::new(
            Arc::new(program),
            &b,
            SegmentConfig {
                default: 4,
                ..Default::default()
            },
            Topology::new(2, 1),
        )
        .unwrap();
        generate(&layout, &default_cost_model()).unwrap()
    }

    #[test]
    fn paper_example_trace_shape() {
        let src = r#"
sial t
aoindex M = 1, n
aoindex N = 1, n
aoindex L = 1, n
aoindex S = 1, n
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp tmp(M,N,I,J)
temp tmpsum(M,N,I,J)
pardo M, N, I, J
  tmpsum(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      execute compute_integrals V(M,N,L,S)
      tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
      tmpsum(M,N,I,J) += tmp(M,N,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = tmpsum(M,N,I,J)
endpardo M, N, I, J
endsial
"#;
        let t = trace_of(src, 3);
        assert_eq!(t.phases.len(), 1);
        match &t.phases[0] {
            TracePhase::Pardo {
                iterations,
                per_iter,
                ..
            } => {
                // 3*3*2*2 pardo iterations.
                assert_eq!(*iterations, 36);
                // Inner loops L,S: 9 gets of 4^4-element blocks.
                assert_eq!(per_iter.gets, 9);
                assert_eq!(per_iter.get_bytes, 9 * 256 * 8);
                assert_eq!(per_iter.puts, 1);
                // Contraction flops dominate: GEMM dims m=n=k=16 (4×4 seg
                // pairs), 2·16³ = 8192 flops per contraction, 9 contractions.
                assert!(per_iter.flops >= 9 * 8192, "flops = {}", per_iter.flops);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_clause_reduces_iterations() {
        let src = "sial t\naoindex M = 1, n\naoindex N = 1, n\ndistributed X(M,N)\ntemp q(M,N)\npardo M, N where M < N\nq(M,N) = 0.0\nput X(M,N) = q(M,N)\nendpardo\nendsial\n";
        let t = trace_of(src, 4);
        match &t.phases[0] {
            TracePhase::Pardo { iterations, .. } => assert_eq!(*iterations, 6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn barriers_and_collectives_split_phases() {
        let src = "sial t\naoindex M = 1, n\ndistributed X(M)\ntemp q(M)\nscalar e\npardo M\nq(M) = 1.0\nput X(M) = q(M)\nendpardo\nsip_barrier\nexecute sip_allreduce e\nendsial\n";
        let t = trace_of(src, 4);
        assert_eq!(
            t.phases
                .iter()
                .map(|p| match p {
                    TracePhase::Pardo { .. } => "pardo",
                    TracePhase::SipBarrier => "barrier",
                    TracePhase::Collective => "collective",
                    TracePhase::Serial(_) => "serial",
                    TracePhase::ServerBarrier => "server",
                })
                .collect::<Vec<_>>(),
            vec!["pardo", "barrier", "collective"]
        );
    }

    #[test]
    fn gets_deduped_within_iteration() {
        // The same block fetched twice in one iteration counts once.
        let src = "sial t\naoindex M = 1, n\naoindex L = 1, n\ndistributed X(M,L)\ntemp q(M,L)\npardo M\ndo L\nget X(M,L)\nget X(M,L)\nq(M,L) = X(M,L)\nenddo L\nendpardo\nendsial\n";
        let t = trace_of(src, 3);
        match &t.phases[0] {
            TracePhase::Pardo { per_iter, .. } => assert_eq!(per_iter.gets, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pardo_in_do_traced_per_encounter() {
        let src = "sial t\nindex sweep = 1, 3\naoindex M = 1, n\ndistributed X(M)\ntemp q(M)\ndo sweep\npardo M\nq(M) = 1.0\nput X(M) = q(M)\nendpardo\nsip_barrier\nenddo sweep\nendsial\n";
        let t = trace_of(src, 4);
        let pardos = t
            .phases
            .iter()
            .filter(|p| matches!(p, TracePhase::Pardo { .. }))
            .count();
        let barriers = t
            .phases
            .iter()
            .filter(|p| matches!(p, TracePhase::SipBarrier))
            .count();
        assert_eq!(pardos, 3, "one pardo phase per sweep");
        assert_eq!(barriers, 3);
    }

    #[test]
    fn serial_section_recorded() {
        let src = "sial t\naoindex M = 1, n\nstatic F(M,M)\ntemp q(M,M)\ndo M\nq(M,M) = 1.0\nF(M,M) = q(M,M)\nenddo M\nsip_barrier\nendsial\n";
        let t = trace_of(src, 4);
        assert!(matches!(t.phases[0], TracePhase::Serial(_)));
        assert!(matches!(t.phases[1], TracePhase::SipBarrier));
    }

    #[test]
    fn totals_consistent() {
        let src = "sial t\naoindex M = 1, n\ndistributed X(M)\ntemp q(M)\npardo M\nget X(M)\nq(M) = X(M)\nput X(M) += q(M)\nendpardo\nendsial\n";
        let t = trace_of(src, 5);
        // 5 iterations × (get 32 B + put 32 B) per iteration (4-element
        // rank-1 blocks of doubles).
        assert_eq!(t.total_bytes(), 5 * 2 * 32);
        assert!(t.total_flops() > 0);
    }

    #[test]
    fn served_traffic_counted_separately() {
        let src = "sial t\naoindex M = 1, n\nserved V(M)\ntemp q(M)\npardo M\nrequest V(M)\nq(M) = V(M)\nprepare V(M) = q(M)\nendpardo\nendsial\n";
        let t = trace_of(src, 4);
        match &t.phases[0] {
            TracePhase::Pardo { per_iter, .. } => {
                assert_eq!(per_iter.requests, 1);
                assert_eq!(per_iter.prepares, 1);
                assert_eq!(per_iter.gets, 0);
            }
            other => panic!("{other:?}"),
        }
    }
}
