//! The worker block cache.
//!
//! Fetched remote blocks land here; a block "may be available … because it is
//! still available in the block cache from a recent use. Replacement is done
//! using a LRU strategy." Entries are either [`CacheEntry::Ready`] or
//! [`CacheEntry::InFlight`] (a get/request/prefetch has been issued and the
//! data has not arrived yet). In-flight entries are never evicted — evicting
//! them would strand the arriving reply.
//!
//! Zero-copy delivery makes "is this block still in use?" subtle: an
//! in-process fill *shares* the home rank's allocation, so the `Arc` holder
//! count of a perfectly idle cached copy is already ≥ 2. Each ready entry
//! therefore records the holder count observed when its data arrived (the
//! delivery baseline: the cache itself, the home pin, FT journal shares).
//! Only a holder acquired *afterwards* — the instruction currently reading
//! the block through `lookup` — raises the live count above that baseline
//! and pins the entry against eviction: prefetch pressure must not recycle
//! a block the current instruction is reading, but the home rank keeping
//! its own authoritative copy alive must not make the cache un-evictable.
//!
//! Capacity is accounted in **bytes**, not entry count, so arrays with
//! different block shapes share the cache fairly and the dry-run's
//! `cache_blocks × largest_remote_block` sizing is exact.
//!
//! The counters distinguish hits, misses, and *refetches* (a block that was
//! evicted and had to be fetched again) — the metric behind the paper's
//! BlueGene/P anecdote, where over-eager prefetching caused "eviction and
//! refetching of blocks that would be reused". Refetch detection uses a
//! fixed-size hash filter (8 KiB, one bit per hash bucket) rather than a
//! per-key map, so its memory no longer grows with the number of distinct
//! keys ever fetched; hash collisions can at worst over-count refetches on
//! huge key populations, and the counter is diagnostic only.

use crate::msg::BlockKey;
use sia_blocks::BlockHandle;
use std::collections::HashMap;

/// State of one cached block.
#[derive(Debug)]
pub enum CacheEntry {
    /// The data has arrived.
    Ready(BlockHandle),
    /// A fetch is outstanding.
    InFlight,
    /// The home rank answered that the block is absent (exactly zero) from a
    /// sparse array. Carries the Frobenius-norm bound recorded when the
    /// block was dropped, so screening can reuse it without a refetch.
    /// Holds no payload bytes and is never evicted for capacity; a barrier
    /// invalidation removes it like any ready copy (a later put can make
    /// the block real again).
    Absent { norm: f64 },
}

/// Outcome of a typed block lookup through the block-access facade.
///
/// Replaces the old `Option<BlockHandle>` shape: absence of data no longer
/// means "materialize zeros", it is a first-class answer. `AbsentZero` is
/// only produced for arrays declared `sparse`; dense arrays still
/// materialize zero blocks on first touch and always return `Ready`.
#[derive(Debug, Clone)]
pub enum BlockGet {
    /// The block's data is resident; the handle shares the cached (or
    /// home-pinned) allocation.
    Ready(BlockHandle),
    /// The block is absent from a sparse array — exactly zero. `norm` is
    /// the Frobenius-norm bound under which the payload was dropped
    /// (strictly below the run's sparsity threshold).
    AbsentZero {
        /// Frobenius-norm bound of the dropped payload.
        norm: f64,
    },
    /// A fetch is outstanding; the caller must wait for the reply.
    Pending,
}

impl BlockGet {
    /// True when data is resident.
    pub fn is_ready(&self) -> bool {
        matches!(self, BlockGet::Ready(_))
    }

    /// True when the block is typed-absent (exactly zero).
    pub fn is_absent(&self) -> bool {
        matches!(self, BlockGet::AbsentZero { .. })
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a ready entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an in-flight entry (wait, not re-issue).
    pub in_flight_hits: u64,
    /// Evictions performed to make room.
    pub evictions: u64,
    /// Fetches of a key that had been evicted earlier in the run.
    pub refetches: u64,
    /// In-flight entries whose fetch was re-issued (reply presumed lost).
    pub reissues: u64,
}

/// Fixed-size one-bit-per-bucket filter remembering which keys have ever
/// been fetched, for refetch detection with bounded memory.
struct RefetchFilter {
    bits: Box<[u64]>,
}

const REFETCH_FILTER_BITS: usize = 1 << 16;

impl RefetchFilter {
    fn new() -> Self {
        RefetchFilter {
            bits: vec![0u64; REFETCH_FILTER_BITS / 64].into_boxed_slice(),
        }
    }

    /// Sets the key's bucket; returns whether it was already set.
    fn test_and_set(&mut self, key: &BlockKey) -> bool {
        let h = key.placement_hash() as usize & (REFETCH_FILTER_BITS - 1);
        let (word, bit) = (h / 64, h % 64);
        let was = (self.bits[word] >> bit) & 1 == 1;
        self.bits[word] |= 1 << bit;
        was
    }
}

/// One resident entry plus its LRU stamp and delivery baseline.
struct Slot {
    entry: CacheEntry,
    /// LRU clock stamp of the last touch.
    stamp: u64,
    /// Holder count of the handle when the data arrived. Holders acquired
    /// later (a consumer reading through `lookup`) push the live count above
    /// this and protect the entry; the delivery shares themselves (home pin,
    /// journal copy) do not.
    base_holders: usize,
}

/// A byte-accounted LRU cache of block handles keyed by [`BlockKey`].
pub struct BlockCache {
    capacity_bytes: u64,
    map: HashMap<BlockKey, Slot>,
    clock: u64,
    ready_bytes: u64,
    ever_fetched: RefetchFilter,
    stats: CacheStats,
    /// Evicted `(key, bytes)` pairs since the last drain — `None` (and never
    /// allocated) unless the tracer asked for it.
    evict_log: Option<Vec<(BlockKey, u64)>>,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity_bytes` of ready block data.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be positive");
        BlockCache {
            capacity_bytes,
            map: HashMap::new(),
            clock: 0,
            ready_bytes: 0,
            ever_fetched: RefetchFilter::new(),
            stats: CacheStats::default(),
            evict_log: None,
        }
    }

    /// Starts logging evictions (for the event tracer). Off by default so
    /// the eviction path never allocates on untraced runs.
    pub fn enable_evict_log(&mut self) {
        self.evict_log.get_or_insert_with(Vec::new);
    }

    /// Takes the evictions logged since the last drain (empty when the log
    /// was never enabled).
    pub fn drain_evictions(&mut self) -> Vec<(BlockKey, u64)> {
        match self.evict_log.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up a block, refreshing its LRU position. Returns `None` on miss.
    pub fn lookup(&mut self, key: &BlockKey) -> Option<&CacheEntry> {
        let t = self.tick();
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.stamp = t;
                match &slot.entry {
                    CacheEntry::Ready(_) | CacheEntry::Absent { .. } => self.stats.hits += 1,
                    CacheEntry::InFlight => self.stats.in_flight_hits += 1,
                }
                Some(&slot.entry)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching LRU order or counters.
    pub fn peek(&self, key: &BlockKey) -> Option<&CacheEntry> {
        self.map.get(key).map(|s| &s.entry)
    }

    /// Marks a fetch as outstanding (no-op if the key is already present).
    /// Returns true if a new in-flight entry was created (i.e. the caller
    /// should actually issue the fetch). In-flight entries carry no data, so
    /// no room is made until the reply arrives.
    pub fn mark_in_flight(&mut self, key: BlockKey) -> bool {
        if self.map.contains_key(&key) {
            return false;
        }
        // A fresh in-flight entry is a cold lookup (the prefetcher asked for
        // a block the cache does not hold), so it counts as a miss.
        self.stats.misses += 1;
        if self.ever_fetched.test_and_set(&key) {
            self.stats.refetches += 1;
        }
        let t = self.tick();
        self.map.insert(
            key,
            Slot {
                entry: CacheEntry::InFlight,
                stamp: t,
                base_holders: 0,
            },
        );
        true
    }

    /// Re-arms an in-flight entry whose reply is presumed lost, so the
    /// caller can re-issue the fetch. Returns true when the entry exists and
    /// is in flight (LRU position refreshed — the re-issued fetch is the
    /// most recent interest in the block); a ready or absent entry returns
    /// false and is left untouched. This is what makes `InFlight` tolerate
    /// re-issue: a duplicate reply later simply re-fills a ready entry.
    pub fn refresh_in_flight(&mut self, key: &BlockKey) -> bool {
        let t = self.tick();
        match self.map.get_mut(key) {
            Some(Slot {
                entry: CacheEntry::InFlight,
                stamp,
                ..
            }) => {
                *stamp = t;
                self.stats.reissues += 1;
                true
            }
            _ => false,
        }
    }

    /// Stores arrived data, completing an in-flight entry (or inserting
    /// fresh — e.g. a block pushed by a prefetching peer). The handle is
    /// shared with the sender's allocation; no copy is made here.
    pub fn fill(&mut self, key: BlockKey, data: BlockHandle) {
        let incoming = data.heap_bytes();
        // The delivery baseline: this local binding stands in for the slot
        // that will hold the handle, so the count is exactly the shares that
        // came with the data (home pin, journal copy), not a consumer's.
        let base = data.holders();
        let t = self.tick();
        if let Some(slot) = self.map.get_mut(&key) {
            if let CacheEntry::Ready(old) = &slot.entry {
                self.ready_bytes -= old.heap_bytes();
            }
            slot.entry = CacheEntry::Ready(data);
            slot.stamp = t;
            slot.base_holders = base;
            self.ready_bytes += incoming;
            self.make_room_keeping(Some(&key));
            return;
        }
        self.ever_fetched.test_and_set(&key);
        self.map.insert(
            key,
            Slot {
                entry: CacheEntry::Ready(data),
                stamp: t,
                base_holders: base,
            },
        );
        self.ready_bytes += incoming;
        self.make_room_keeping(Some(&key));
    }

    /// Records a typed-absent answer for a sparse block, completing an
    /// in-flight entry (or inserting fresh). Absent entries carry no payload
    /// bytes, so no room is made.
    ///
    /// A `Ready` entry is never demoted: with envelope batching, a norm
    /// record for a key can legitimately arrive *after* the real payload
    /// it was screened before (the two travelled in different envelopes,
    /// or a retried multicast hop raced a demand fetch). The payload is
    /// the newer truth within an epoch — barrier invalidation removes the
    /// entry, so a genuinely newer absence always starts from an empty
    /// slot.
    pub fn fill_absent(&mut self, key: BlockKey, norm: f64) {
        let t = self.tick();
        if let Some(slot) = self.map.get_mut(&key) {
            if matches!(slot.entry, CacheEntry::Ready(_)) {
                return;
            }
            slot.entry = CacheEntry::Absent { norm };
            slot.stamp = t;
            slot.base_holders = 0;
            return;
        }
        self.ever_fetched.test_and_set(&key);
        self.map.insert(
            key,
            Slot {
                entry: CacheEntry::Absent { norm },
                stamp: t,
                base_holders: 0,
            },
        );
    }

    /// Removes a specific entry (e.g. after a barrier invalidates cached
    /// copies of an array).
    pub fn invalidate(&mut self, key: &BlockKey) {
        if let Some(Slot {
            entry: CacheEntry::Ready(h),
            ..
        }) = self.map.remove(key)
        {
            self.ready_bytes -= h.heap_bytes();
        }
    }

    /// Drops every *ready* entry belonging to `array` (in-flight entries stay:
    /// the reply will still arrive and refill them).
    pub fn invalidate_array(&mut self, array: sia_bytecode::ArrayId) {
        let bytes = &mut self.ready_bytes;
        self.map.retain(|k, slot| {
            if k.array != array {
                return true;
            }
            match &slot.entry {
                CacheEntry::InFlight => true,
                CacheEntry::Ready(h) => {
                    *bytes -= h.heap_bytes();
                    false
                }
                // A later put can make an absent block real; barrier
                // invalidation drops the cached absence like any copy.
                CacheEntry::Absent { .. } => false,
            }
        });
    }

    /// Evicts least-recently-used ready entries until at or under capacity,
    /// sparing `keep` — the entry a fill just completed, which a get may be
    /// waiting on and no consumer has had a chance to hold yet. In-flight
    /// entries and entries a consumer acquired a hold on after delivery are
    /// never evicted; if only those remain, the cache overshoots
    /// temporarily rather than stranding a reply or a live reference.
    fn make_room_keeping(&mut self, keep: Option<&BlockKey>) {
        let _ = self.evict_until_keeping(self.capacity_bytes, keep);
    }

    /// Evicts consumer-free ready entries (LRU-first) until `target_bytes`
    /// of ready data remain (or nothing evictable is left). An entry is
    /// consumer-free when its handle has no holders beyond the delivery
    /// baseline recorded at fill time. Returns the bytes freed. Exposed so
    /// the block manager can apply budget pressure beyond ordinary capacity
    /// replacement.
    pub fn evict_until(&mut self, target_bytes: u64) -> u64 {
        self.evict_until_keeping(target_bytes, None)
    }

    fn evict_until_keeping(&mut self, target_bytes: u64, keep: Option<&BlockKey>) -> u64 {
        let mut freed = 0;
        while self.ready_bytes > target_bytes {
            let victim = self
                .map
                .iter()
                .filter(|(k, s)| {
                    keep != Some(*k)
                        && matches!(&s.entry, CacheEntry::Ready(h) if h.holders() <= s.base_holders)
                })
                .min_by_key(|(_, s)| s.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(Slot {
                        entry: CacheEntry::Ready(h),
                        ..
                    }) = self.map.remove(&k)
                    {
                        let b = h.heap_bytes();
                        self.ready_bytes -= b;
                        freed += b;
                        if let Some(log) = self.evict_log.as_mut() {
                            log.push((k, b));
                        }
                    }
                    self.stats.evictions += 1;
                }
                // Everything left is in flight or held by a live consumer;
                // allow temporary overshoot rather than deadlock.
                None => break,
            }
        }
        freed
    }

    /// Number of resident entries (ready + in flight).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes of ready block data currently resident.
    pub fn ready_bytes(&self) -> u64 {
        self.ready_bytes
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_blocks::{Block, Shape};
    use sia_bytecode::ArrayId;

    fn key(i: i64) -> BlockKey {
        BlockKey::new(ArrayId(0), &[i])
    }

    /// A 2-element block: 16 bytes of payload.
    fn blk(v: f64) -> BlockHandle {
        BlockHandle::new(Block::filled(Shape::new(&[2]), v))
    }

    const B: u64 = 16;

    #[test]
    fn fill_then_hit() {
        let mut c = BlockCache::new(4 * B);
        c.fill(key(1), blk(1.0));
        match c.lookup(&key(1)) {
            Some(CacheEntry::Ready(b)) => assert_eq!(b.data()[0], 1.0),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.ready_bytes(), B);
    }

    #[test]
    fn miss_counted() {
        let mut c = BlockCache::new(4 * B);
        assert!(c.lookup(&key(9)).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BlockCache::new(2 * B);
        c.fill(key(1), blk(1.0));
        c.fill(key(2), blk(2.0));
        // Touch 1 so 2 becomes LRU.
        let _ = c.lookup(&key(1));
        c.fill(key(3), blk(3.0));
        assert!(c.peek(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.peek(&key(1)).is_some());
        assert!(c.peek(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.ready_bytes(), 2 * B);
    }

    #[test]
    fn byte_accurate_eviction_mixed_sizes() {
        // One large block displaces several small ones — entry-count LRU
        // would keep them all and blow the byte budget.
        let small = |v| BlockHandle::new(Block::filled(Shape::new(&[2]), v)); // 16 B
        let large = BlockHandle::new(Block::filled(Shape::new(&[12]), 9.0)); // 96 B
        let mut c = BlockCache::new(8 * B); // 128 B
        for i in 0..4 {
            c.fill(key(i), small(i as f64));
        }
        assert_eq!(c.ready_bytes(), 4 * B);
        c.fill(key(100), large);
        // 64 + 96 = 160 > 128: the two oldest small blocks must go.
        assert_eq!(c.ready_bytes(), 2 * B + 96);
        assert!(c.peek(&key(0)).is_none());
        assert!(c.peek(&key(1)).is_none());
        assert!(c.peek(&key(2)).is_some());
        assert!(c.peek(&key(3)).is_some());
        assert!(c.peek(&key(100)).is_some());
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn consumer_held_entries_pinned_against_eviction() {
        // A handle the "current instruction" acquired *after* delivery is
        // never evicted, even under pressure — the prefetch-vs-working-set
        // guarantee.
        let mut c = BlockCache::new(2 * B);
        c.fill(key(1), blk(1.0));
        let held = match c.lookup(&key(1)) {
            Some(CacheEntry::Ready(h)) => h.clone(), // consumer takes a hold
            other => panic!("{other:?}"),
        };
        c.fill(key(2), blk(2.0));
        c.fill(key(3), blk(3.0)); // pressure: must evict, but not key 1
        assert!(c.peek(&key(1)).is_some(), "held entry survived");
        assert!(c.peek(&key(2)).is_none(), "consumer-free LRU entry evicted");
        drop(held);
        c.fill(key(4), blk(4.0)); // key 1 back at its baseline → evictable
        assert!(c.peek(&key(1)).is_none());
        assert_eq!(c.ready_bytes(), 2 * B);
    }

    #[test]
    fn delivery_shares_do_not_pin() {
        // An in-process fill shares the home rank's allocation, so the
        // handle is "shared" from the moment it arrives. Those delivery
        // shares are the baseline, not a consumer hold: the entry must stay
        // evictable or a zero-copy fabric would make the cache unbounded.
        let home_pin = blk(1.0); // stands in for the home rank's copy
        let mut c = BlockCache::new(2 * B);
        c.fill(key(1), home_pin.clone());
        c.fill(key(2), blk(2.0));
        c.fill(key(3), blk(3.0)); // pressure: key 1 is LRU and evictable
        assert!(c.peek(&key(1)).is_none(), "delivery share did not pin");
        assert!(c.peek(&key(2)).is_some());
        assert!(c.peek(&key(3)).is_some());
        assert_eq!(c.ready_bytes(), 2 * B);
        assert!(
            home_pin.data().iter().all(|&v| v == 1.0),
            "home copy intact"
        );
    }

    #[test]
    fn in_flight_never_evicted() {
        let mut c = BlockCache::new(2 * B);
        assert!(c.mark_in_flight(key(1)));
        assert!(c.mark_in_flight(key(2)));
        // In-flight entries hold no bytes; a fill coexists with them.
        c.fill(key(3), blk(3.0));
        assert_eq!(c.len(), 3);
        assert!(c.peek(&key(1)).is_some());
        assert!(c.peek(&key(2)).is_some());
    }

    #[test]
    fn mark_in_flight_dedups() {
        let mut c = BlockCache::new(4 * B);
        assert!(c.mark_in_flight(key(1)));
        assert!(!c.mark_in_flight(key(1)), "second mark is a no-op");
        c.fill(key(1), blk(1.0));
        assert!(!c.mark_in_flight(key(1)), "ready entry needs no fetch");
    }

    #[test]
    fn refetch_counted() {
        let mut c = BlockCache::new(B);
        c.fill(key(1), blk(1.0));
        c.fill(key(2), blk(2.0)); // evicts 1
        assert!(c.mark_in_flight(key(1)), "must fetch again");
        assert_eq!(c.stats().refetches, 1);
    }

    #[test]
    fn fill_completes_in_flight() {
        let mut c = BlockCache::new(2 * B);
        c.mark_in_flight(key(1));
        assert!(matches!(c.peek(&key(1)), Some(CacheEntry::InFlight)));
        c.fill(key(1), blk(5.0));
        assert!(matches!(c.peek(&key(1)), Some(CacheEntry::Ready(_))));
        assert_eq!(c.len(), 1);
        assert_eq!(c.ready_bytes(), B);
    }

    #[test]
    fn invalidate_array_spares_in_flight() {
        let mut c = BlockCache::new(4 * B);
        c.fill(BlockKey::new(ArrayId(0), &[1]), blk(1.0));
        c.fill(BlockKey::new(ArrayId(1), &[1]), blk(2.0));
        c.mark_in_flight(BlockKey::new(ArrayId(0), &[2]));
        c.invalidate_array(ArrayId(0));
        assert!(c.peek(&BlockKey::new(ArrayId(0), &[1])).is_none());
        assert!(c.peek(&BlockKey::new(ArrayId(0), &[2])).is_some());
        assert!(c.peek(&BlockKey::new(ArrayId(1), &[1])).is_some());
        assert_eq!(c.ready_bytes(), B, "bytes credited on invalidation");
    }

    #[test]
    fn in_flight_tolerates_reissue() {
        let mut c = BlockCache::new(4 * B);
        assert!(c.mark_in_flight(key(1)));
        // The reply was dropped; the retry layer re-arms the entry instead
        // of being refused by mark_in_flight.
        assert!(!c.mark_in_flight(key(1)));
        assert!(c.refresh_in_flight(&key(1)), "in-flight entry re-armed");
        assert_eq!(c.stats().reissues, 1);
        // The re-issued fetch's reply (or a late duplicate of the original)
        // completes the entry as usual …
        c.fill(key(1), blk(7.0));
        assert!(matches!(c.peek(&key(1)), Some(CacheEntry::Ready(_))));
        // … and a second, duplicated reply just refreshes it.
        c.fill(key(1), blk(7.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.ready_bytes(), B, "duplicate fill does not double-count");
        // Ready and absent entries refuse the re-arm.
        assert!(!c.refresh_in_flight(&key(1)));
        assert!(!c.refresh_in_flight(&key(2)));
        assert_eq!(c.stats().reissues, 1);
    }

    #[test]
    fn in_flight_lookup_counted_separately() {
        let mut c = BlockCache::new(2 * B);
        c.mark_in_flight(key(1));
        assert!(matches!(c.lookup(&key(1)), Some(CacheEntry::InFlight)));
        assert_eq!(c.stats().in_flight_hits, 1);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn evict_until_frees_and_reports() {
        let mut c = BlockCache::new(8 * B);
        for i in 0..6 {
            c.fill(key(i), blk(i as f64));
        }
        let freed = c.evict_until(2 * B);
        assert_eq!(freed, 4 * B);
        assert_eq!(c.ready_bytes(), 2 * B);
        // Oldest went first.
        assert!(c.peek(&key(0)).is_none());
        assert!(c.peek(&key(5)).is_some());
    }

    #[test]
    fn absent_completes_in_flight_and_counts_hit() {
        let mut c = BlockCache::new(2 * B);
        c.mark_in_flight(key(1));
        c.fill_absent(key(1), 1e-12);
        match c.lookup(&key(1)) {
            Some(CacheEntry::Absent { norm }) => assert_eq!(*norm, 1e-12),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.ready_bytes(), 0, "absent entries carry no payload");
        assert!(!c.refresh_in_flight(&key(1)), "absent entry refuses re-arm");
    }

    /// Regression (PR 9): a norm record arriving after the real payload
    /// (batched envelopes can reorder the flush that carries each) must
    /// not supersede it. The payload wins; absence only lands in an empty
    /// or in-flight slot.
    #[test]
    fn absent_never_demotes_ready() {
        let mut c = BlockCache::new(4 * B);
        c.fill(key(1), blk(1.0));
        assert_eq!(c.ready_bytes(), B);
        c.fill_absent(key(1), 0.0);
        match c.peek(&key(1)) {
            Some(CacheEntry::Ready(h)) => assert_eq!(h.data()[0], 1.0),
            other => panic!("payload was demoted to {other:?}"),
        }
        assert_eq!(c.ready_bytes(), B, "payload bytes stay accounted");
        // After barrier invalidation the slot is empty, so a genuinely
        // newer absence lands.
        c.invalidate(&key(1));
        c.fill_absent(key(1), 0.5);
        assert!(matches!(c.peek(&key(1)), Some(CacheEntry::Absent { .. })));
        assert_eq!(c.ready_bytes(), 0);
        // And a later real fill makes the block concrete again.
        c.fill(key(1), blk(2.0));
        assert!(matches!(c.peek(&key(1)), Some(CacheEntry::Ready(_))));
        assert_eq!(c.ready_bytes(), B);
    }

    #[test]
    fn invalidate_array_drops_absent_entries() {
        let mut c = BlockCache::new(4 * B);
        c.fill_absent(BlockKey::new(ArrayId(0), &[1]), 0.0);
        c.mark_in_flight(BlockKey::new(ArrayId(0), &[2]));
        c.invalidate_array(ArrayId(0));
        assert!(
            c.peek(&BlockKey::new(ArrayId(0), &[1])).is_none(),
            "cached absence invalidated with the array"
        );
        assert!(c.peek(&BlockKey::new(ArrayId(0), &[2])).is_some());
    }
}
