//! The worker block cache.
//!
//! Fetched remote blocks land here; a block "may be available … because it is
//! still available in the block cache from a recent use. Replacement is done
//! using a LRU strategy." Entries are either [`CacheEntry::Ready`] or
//! [`CacheEntry::InFlight`] (a get/request/prefetch has been issued and the
//! data has not arrived yet). In-flight entries are never evicted — evicting
//! them would strand the arriving reply.
//!
//! The counters distinguish hits, misses, and *refetches* (a block that was
//! evicted and had to be fetched again) — the metric behind the paper's
//! BlueGene/P anecdote, where over-eager prefetching caused "eviction and
//! refetching of blocks that would be reused".

use crate::msg::BlockKey;
use sia_blocks::Block;
use std::collections::HashMap;

/// State of one cached block.
#[derive(Debug)]
pub enum CacheEntry {
    /// The data has arrived.
    Ready(Block),
    /// A fetch is outstanding.
    InFlight,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a ready entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an in-flight entry (wait, not re-issue).
    pub in_flight_hits: u64,
    /// Evictions performed to make room.
    pub evictions: u64,
    /// Fetches of a key that had been evicted earlier in the run.
    pub refetches: u64,
    /// In-flight entries whose fetch was re-issued (reply presumed lost).
    pub reissues: u64,
}

/// An LRU cache of blocks keyed by [`BlockKey`].
pub struct BlockCache {
    capacity: usize,
    map: HashMap<BlockKey, (CacheEntry, u64)>,
    clock: u64,
    ever_fetched: HashMap<BlockKey, ()>,
    stats: CacheStats,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BlockCache {
            capacity,
            map: HashMap::new(),
            clock: 0,
            ever_fetched: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up a block, refreshing its LRU position. Returns `None` on miss.
    pub fn lookup(&mut self, key: &BlockKey) -> Option<&CacheEntry> {
        let t = self.tick();
        match self.map.get_mut(key) {
            Some((entry, stamp)) => {
                *stamp = t;
                match entry {
                    CacheEntry::Ready(_) => self.stats.hits += 1,
                    CacheEntry::InFlight => self.stats.in_flight_hits += 1,
                }
                Some(&self.map[key].0)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching LRU order or counters.
    pub fn peek(&self, key: &BlockKey) -> Option<&CacheEntry> {
        self.map.get(key).map(|(e, _)| e)
    }

    /// Marks a fetch as outstanding (no-op if the key is already present).
    /// Returns true if a new in-flight entry was created (i.e. the caller
    /// should actually issue the fetch).
    pub fn mark_in_flight(&mut self, key: BlockKey) -> bool {
        if self.map.contains_key(&key) {
            return false;
        }
        self.make_room();
        if self.ever_fetched.insert(key, ()).is_some() {
            self.stats.refetches += 1;
        }
        let t = self.tick();
        self.map.insert(key, (CacheEntry::InFlight, t));
        true
    }

    /// Re-arms an in-flight entry whose reply is presumed lost, so the
    /// caller can re-issue the fetch. Returns true when the entry exists and
    /// is in flight (LRU position refreshed — the re-issued fetch is the
    /// most recent interest in the block); a ready or absent entry returns
    /// false and is left untouched. This is what makes `InFlight` tolerate
    /// re-issue: a duplicate reply later simply re-fills a ready entry.
    pub fn refresh_in_flight(&mut self, key: &BlockKey) -> bool {
        let t = self.tick();
        match self.map.get_mut(key) {
            Some((CacheEntry::InFlight, stamp)) => {
                *stamp = t;
                self.stats.reissues += 1;
                true
            }
            _ => false,
        }
    }

    /// Stores arrived data, completing an in-flight entry (or inserting
    /// fresh — e.g. a block pushed by a prefetching peer).
    pub fn fill(&mut self, key: BlockKey, data: Block) {
        let t = self.tick();
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = (CacheEntry::Ready(data), t);
            return;
        }
        self.make_room();
        self.ever_fetched.insert(key, ());
        self.map.insert(key, (CacheEntry::Ready(data), t));
    }

    /// Removes a specific entry (e.g. after a barrier invalidates cached
    /// copies of an array).
    pub fn invalidate(&mut self, key: &BlockKey) {
        self.map.remove(key);
    }

    /// Drops every *ready* entry belonging to `array` (in-flight entries stay:
    /// the reply will still arrive and refill them).
    pub fn invalidate_array(&mut self, array: sia_bytecode::ArrayId) {
        self.map
            .retain(|k, (e, _)| k.array != array || matches!(e, CacheEntry::InFlight));
    }

    /// Evicts the least-recently-used ready entry if at capacity.
    fn make_room(&mut self) {
        while self.map.len() >= self.capacity {
            let victim = self
                .map
                .iter()
                .filter(|(_, (e, _))| matches!(e, CacheEntry::Ready(_)))
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                    self.stats.evictions += 1;
                }
                // Everything is in flight; allow temporary overshoot rather
                // than deadlock.
                None => break,
            }
        }
    }

    /// Number of resident entries (ready + in flight).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_blocks::Shape;
    use sia_bytecode::ArrayId;

    fn key(i: i64) -> BlockKey {
        BlockKey::new(ArrayId(0), &[i])
    }

    fn blk(v: f64) -> Block {
        Block::filled(Shape::new(&[2]), v)
    }

    #[test]
    fn fill_then_hit() {
        let mut c = BlockCache::new(4);
        c.fill(key(1), blk(1.0));
        match c.lookup(&key(1)) {
            Some(CacheEntry::Ready(b)) => assert_eq!(b.data()[0], 1.0),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn miss_counted() {
        let mut c = BlockCache::new(4);
        assert!(c.lookup(&key(9)).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BlockCache::new(2);
        c.fill(key(1), blk(1.0));
        c.fill(key(2), blk(2.0));
        // Touch 1 so 2 becomes LRU.
        let _ = c.lookup(&key(1));
        c.fill(key(3), blk(3.0));
        assert!(c.peek(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.peek(&key(1)).is_some());
        assert!(c.peek(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn in_flight_never_evicted() {
        let mut c = BlockCache::new(2);
        assert!(c.mark_in_flight(key(1)));
        assert!(c.mark_in_flight(key(2)));
        // Cache full of in-flight entries; a third insert overshoots rather
        // than evicting an in-flight entry.
        c.fill(key(3), blk(3.0));
        assert_eq!(c.len(), 3);
        assert!(c.peek(&key(1)).is_some());
        assert!(c.peek(&key(2)).is_some());
    }

    #[test]
    fn mark_in_flight_dedups() {
        let mut c = BlockCache::new(4);
        assert!(c.mark_in_flight(key(1)));
        assert!(!c.mark_in_flight(key(1)), "second mark is a no-op");
        c.fill(key(1), blk(1.0));
        assert!(!c.mark_in_flight(key(1)), "ready entry needs no fetch");
    }

    #[test]
    fn refetch_counted() {
        let mut c = BlockCache::new(1);
        c.fill(key(1), blk(1.0));
        c.fill(key(2), blk(2.0)); // evicts 1
        assert!(c.mark_in_flight(key(1)), "must fetch again");
        assert_eq!(c.stats().refetches, 1);
    }

    #[test]
    fn fill_completes_in_flight() {
        let mut c = BlockCache::new(2);
        c.mark_in_flight(key(1));
        assert!(matches!(c.peek(&key(1)), Some(CacheEntry::InFlight)));
        c.fill(key(1), blk(5.0));
        assert!(matches!(c.peek(&key(1)), Some(CacheEntry::Ready(_))));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_array_spares_in_flight() {
        let mut c = BlockCache::new(4);
        c.fill(BlockKey::new(ArrayId(0), &[1]), blk(1.0));
        c.fill(BlockKey::new(ArrayId(1), &[1]), blk(2.0));
        c.mark_in_flight(BlockKey::new(ArrayId(0), &[2]));
        c.invalidate_array(ArrayId(0));
        assert!(c.peek(&BlockKey::new(ArrayId(0), &[1])).is_none());
        assert!(c.peek(&BlockKey::new(ArrayId(0), &[2])).is_some());
        assert!(c.peek(&BlockKey::new(ArrayId(1), &[1])).is_some());
    }

    #[test]
    fn in_flight_tolerates_reissue() {
        let mut c = BlockCache::new(4);
        assert!(c.mark_in_flight(key(1)));
        // The reply was dropped; the retry layer re-arms the entry instead
        // of being refused by mark_in_flight.
        assert!(!c.mark_in_flight(key(1)));
        assert!(c.refresh_in_flight(&key(1)), "in-flight entry re-armed");
        assert_eq!(c.stats().reissues, 1);
        // The re-issued fetch's reply (or a late duplicate of the original)
        // completes the entry as usual …
        c.fill(key(1), blk(7.0));
        assert!(matches!(c.peek(&key(1)), Some(CacheEntry::Ready(_))));
        // … and a second, duplicated reply just refreshes it.
        c.fill(key(1), blk(7.0));
        assert_eq!(c.len(), 1);
        // Ready and absent entries refuse the re-arm.
        assert!(!c.refresh_in_flight(&key(1)));
        assert!(!c.refresh_in_flight(&key(2)));
        assert_eq!(c.stats().reissues, 1);
    }

    #[test]
    fn in_flight_lookup_counted_separately() {
        let mut c = BlockCache::new(2);
        c.mark_in_flight(key(1));
        assert!(matches!(c.lookup(&key(1)), Some(CacheEntry::InFlight)));
        assert_eq!(c.stats().in_flight_hits, 1);
        assert_eq!(c.stats().hits, 0);
    }
}
