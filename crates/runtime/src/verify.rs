//! Static verification of SIA bytecode: the `sial check` pass.
//!
//! The paper leaves pardo correctness to programmer discipline — SIAL
//! "requires the programmer to ensure" that concurrent iterations do not
//! conflict and that barriers separate writes from subsequent reads
//! (§IV-C). The frontend's sema enforces part of that discipline at compile
//! time, but bytecode reaching the SIP from other sources (tests, traces,
//! optimizers, hand assembly) bypasses it entirely. This module re-checks a
//! compiled [`Program`] without running it, in two layers:
//!
//! 1. A **structural verifier**: every table id in bounds, block-ref arity
//!    and index-kind agreement with the array declaration, balanced
//!    do/pardo loop pairing, no jumps into loop bodies, where clauses
//!    referencing only indices their pardo binds, barriers outside pardo
//!    bodies, and array-kind discipline on every data instruction
//!    (`get`↔distributed, `request`↔served, …).
//!
//! 2. A **pardo race detector**: a data-free walk in the style of
//!    [`crate::trace`] that tracks which distributed/served arrays are
//!    dirty (written since the last matching barrier) and flags
//!    - replace-mode `put`/`prepare` in a pardo whose destination does not
//!      name every pardo index (two iterations overwrite the same block;
//!      `+=` accumulation is exempt — accumulates are atomic and "do not
//!      require synchronization", §IV-C),
//!    - `get` after `put` on one array without an intervening
//!      `sip_barrier`, and
//!    - `request` after `prepare` without a `server_barrier`.
//!
//! Diagnostics carry the pc and the disassembled instruction so they read
//! like the profiler's listing. The race pass only runs when the structural
//! pass is clean — its walk trusts loop pairing.

use crate::scheduler::bool_expr_indices;
use sia_bytecode::disasm::disassemble_instruction;
use sia_bytecode::ops::PrintItem;
use sia_bytecode::{
    Arg, ArrayId, ArrayKind, BlockRef, BoolExpr, IndexId, IndexKind, Instruction as I, ProcId,
    Program, PutMode, ScalarExpr,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Which verification rule a diagnostic comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A table id (index/array/scalar/const/string/proc) out of bounds.
    BadId,
    /// Block reference arity differs from the array's declared rank.
    Arity,
    /// Block reference index kind differs from the declared dimension kind.
    KindMismatch,
    /// Unbalanced or mismatched do/pardo loop pairing (including nested
    /// pardo, which the SIP does not support).
    Nesting,
    /// A branch target lands inside a loop body the branch is not in.
    JumpIntoLoop,
    /// A where clause references an index its pardo does not bind.
    WhereClause,
    /// A barrier inside a pardo body (workers parked mid-chunk deadlock).
    BarrierInPardo,
    /// An instruction applied to the wrong array kind (`get` on a served
    /// array, direct block write to a distributed array, …).
    KindUsage,
    /// Recursive procedure calls (the SIP has no call-depth bound).
    Recursion,
    /// Replace-mode `put`/`prepare` in a pardo not covering every pardo
    /// index: concurrent iterations overwrite the same block.
    WriteWriteRace,
    /// `get` of an array written by `put` with no `sip_barrier` between.
    GetAfterPut,
    /// `request` of an array written by `prepare` with no `server_barrier`
    /// between.
    RequestAfterPrepare,
    /// The `sparse` modifier on an array kind that has no home to keep a
    /// norm table (only distributed and served arrays can be sparse).
    SparseKind,
}

impl Rule {
    /// Stable kebab-case rule name (used in CLI output and tests).
    pub fn name(self) -> &'static str {
        match self {
            Rule::BadId => "bad-id",
            Rule::Arity => "arity",
            Rule::KindMismatch => "kind-mismatch",
            Rule::Nesting => "nesting",
            Rule::JumpIntoLoop => "jump-into-loop",
            Rule::WhereClause => "where-clause",
            Rule::BarrierInPardo => "barrier-in-pardo",
            Rule::KindUsage => "kind-usage",
            Rule::Recursion => "recursion",
            Rule::WriteWriteRace => "write-write-race",
            Rule::GetAfterPut => "get-after-put",
            Rule::RequestAfterPrepare => "request-after-prepare",
            Rule::SparseKind => "sparse-kind",
        }
    }

    /// True for the race-detector rules (layer 2).
    pub fn is_race(self) -> bool {
        matches!(
            self,
            Rule::WriteWriteRace | Rule::GetAfterPut | Rule::RequestAfterPrepare
        )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One verifier finding: where, which rule, why, and the offending
/// instruction disassembled.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Program counter of the offending instruction.
    pub pc: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// The instruction, disassembled.
    pub listing: String,
    /// Source `(file, line)` the instruction was lowered from, when the
    /// program carries a line table (wire v3).
    pub source: Option<(String, u32)>,
}

impl Diagnostic {
    /// Converts a verifier finding into the shared span-carrying
    /// [`sia_bytecode::diag::Diagnostic`] used by the CLI and `sial-lsp`.
    /// The code is `verify/<rule-name>`; the location is line-granular
    /// (column 1, empty byte span) because bytecode only records lines.
    pub fn to_diagnostic(&self) -> sia_bytecode::diag::Diagnostic {
        let mut d = sia_bytecode::diag::Diagnostic::error(
            &format!("verify/{}", self.rule.name()),
            sia_bytecode::diag::Span::new(0, 0),
            format!("{} ({})", self.message, self.listing.trim()),
        );
        if let Some((file, line)) = &self.source {
            d.file = file.clone();
            d.line = *line;
            d.col = 1;
        }
        d
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            Some((file, line)) => write!(
                f,
                "{file}:{line}: pc {:>4}  [{}] {}\n          {}",
                self.pc, self.rule, self.message, self.listing
            ),
            None => write!(
                f,
                "pc {:>4}  [{}] {}\n          {}",
                self.pc, self.rule, self.message, self.listing
            ),
        }
    }
}

/// Statically verifies a compiled program. Returns every finding, sorted by
/// pc; an empty vector means the program passed. The race pass only runs
/// when the structural pass found nothing (it trusts loop pairing).
pub fn check_program(p: &Program) -> Vec<Diagnostic> {
    let mut v = Verifier::new(p);
    v.structural();
    if v.diags.is_empty() {
        RaceWalk::new(&mut v).run();
    }
    v.diags.sort_by_key(|d| (d.pc, d.rule.name()));
    v.diags
}

/// Renders diagnostics as a report block for CLI output.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&d.to_string());
        s.push('\n');
    }
    s
}

// ---- shared verifier state -------------------------------------------------

struct Verifier<'a> {
    p: &'a Program,
    diags: Vec<Diagnostic>,
    /// Matched loop intervals `(start_pc, end_pc)` from the pairing scan.
    intervals: Vec<(u32, u32)>,
}

/// What a stack entry was opened by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopKind {
    Pardo,
    Do,
    DoIn,
}

impl<'a> Verifier<'a> {
    fn new(p: &'a Program) -> Self {
        Verifier {
            p,
            diags: Vec::new(),
            intervals: Vec::new(),
        }
    }

    fn emit(&mut self, pc: u32, rule: Rule, message: String) {
        let listing = self
            .p
            .code
            .get(pc as usize)
            .map(|ins| disassemble_instruction(self.p, ins))
            .unwrap_or_else(|| "<pc out of range>".into());
        let source = self
            .p
            .source_of(pc)
            .map(|(file, line)| (file.to_string(), line));
        self.diags.push(Diagnostic {
            pc,
            rule,
            message,
            listing,
            source,
        });
    }

    fn index_name(&self, id: IndexId) -> String {
        self.p
            .indices
            .get(id.index())
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("#{}", id.0))
    }

    fn array_name(&self, id: ArrayId) -> String {
        self.p
            .arrays
            .get(id.index())
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("#{}", id.0))
    }

    /// The segment kind an index addresses arrays with, looking through one
    /// level of subindexing (sema's rule: a subindex addresses its parent's
    /// segments; a subindex of a subindex is malformed).
    fn effective_kind(&self, id: IndexId) -> Result<IndexKind, String> {
        let decl = self
            .p
            .indices
            .get(id.index())
            .ok_or_else(|| format!("index #{} out of bounds", id.0))?;
        match decl.kind {
            IndexKind::Subindex { parent } => {
                let pd = self
                    .p
                    .indices
                    .get(parent.index())
                    .ok_or_else(|| format!("parent index #{} out of bounds", parent.0))?;
                match pd.kind {
                    IndexKind::Subindex { .. } => Err(format!(
                        "`{}` is a subindex of subindex `{}`",
                        decl.name, pd.name
                    )),
                    k => Ok(k),
                }
            }
            k => Ok(k),
        }
    }

    /// The parent of a subindex, if `id` is one.
    fn parent_of(&self, id: IndexId) -> Option<IndexId> {
        match self.p.indices.get(id.index())?.kind {
            IndexKind::Subindex { parent } => Some(parent),
            _ => None,
        }
    }

    // ---- layer 1: structural ------------------------------------------------

    fn structural(&mut self) {
        self.scan_array_decls();
        for pc in 0..self.p.code.len() as u32 {
            let ins = self.p.code[pc as usize].clone();
            self.check_instruction_ids(pc, &ins);
        }
        self.scan_loops();
        self.scan_jumps();
        self.scan_procs();
    }

    /// Declaration-table discipline: the `sparse` modifier only makes sense
    /// on remote arrays — a home (worker or I/O server) is what holds the
    /// norm table that typed absence replaces the payload with.
    fn scan_array_decls(&mut self) {
        for decl in self.p.arrays.iter() {
            if decl.sparse && !decl.kind.is_remote() {
                self.diags.push(Diagnostic {
                    pc: 0,
                    rule: Rule::SparseKind,
                    message: format!(
                        "`{}` is declared sparse but is {:?}; only distributed and \
                         served arrays can be sparse",
                        decl.name, decl.kind
                    ),
                    listing: format!("<declaration of `{}`>", decl.name),
                    source: None,
                });
            }
        }
    }

    fn check_index_id(&mut self, pc: u32, id: IndexId) -> bool {
        if id.index() >= self.p.indices.len() {
            self.emit(
                pc,
                Rule::BadId,
                format!(
                    "index id #{} out of bounds (table has {})",
                    id.0,
                    self.p.indices.len()
                ),
            );
            return false;
        }
        true
    }

    fn check_scalar_expr(&mut self, pc: u32, e: &ScalarExpr) {
        match e {
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Scalar(id) => {
                if id.index() >= self.p.scalars.len() {
                    self.emit(
                        pc,
                        Rule::BadId,
                        format!(
                            "scalar id #{} out of bounds (table has {})",
                            id.0,
                            self.p.scalars.len()
                        ),
                    );
                }
            }
            ScalarExpr::IndexVal(id) => {
                self.check_index_id(pc, *id);
            }
            ScalarExpr::Const(id) => {
                if id.index() >= self.p.consts.len() {
                    self.emit(
                        pc,
                        Rule::BadId,
                        format!(
                            "const id #{} out of bounds (table has {})",
                            id.0,
                            self.p.consts.len()
                        ),
                    );
                }
            }
            ScalarExpr::Bin(_, l, r) => {
                self.check_scalar_expr(pc, l);
                self.check_scalar_expr(pc, r);
            }
            ScalarExpr::Neg(x) => self.check_scalar_expr(pc, x),
        }
    }

    fn check_bool_expr(&mut self, pc: u32, e: &BoolExpr) {
        match e {
            BoolExpr::Cmp(l, _, r) => {
                self.check_scalar_expr(pc, l);
                self.check_scalar_expr(pc, r);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                self.check_bool_expr(pc, a);
                self.check_bool_expr(pc, b);
            }
            BoolExpr::Not(x) => self.check_bool_expr(pc, x),
        }
    }

    fn check_string_id(&mut self, pc: u32, id: sia_bytecode::StringId) {
        if id.index() >= self.p.strings.len() {
            self.emit(
                pc,
                Rule::BadId,
                format!(
                    "string id #{} out of bounds (table has {})",
                    id.0,
                    self.p.strings.len()
                ),
            );
        }
    }

    /// Bounds, arity, and kind agreement for one block reference.
    fn check_block_ref(&mut self, pc: u32, r: &BlockRef) {
        let Some(decl) = self.p.arrays.get(r.array.index()) else {
            self.emit(
                pc,
                Rule::BadId,
                format!(
                    "array id #{} out of bounds (table has {})",
                    r.array.0,
                    self.p.arrays.len()
                ),
            );
            return;
        };
        let decl = decl.clone();
        let mut ids_ok = true;
        for &id in &r.indices {
            ids_ok &= self.check_index_id(pc, id);
        }
        if !ids_ok {
            return;
        }
        if r.indices.len() != decl.dims.len() {
            self.emit(
                pc,
                Rule::Arity,
                format!(
                    "`{}` is rank {} but the reference has {} indices",
                    decl.name,
                    decl.dims.len(),
                    r.indices.len()
                ),
            );
            return;
        }
        for (d, (&ri, &di)) in r.indices.iter().zip(&decl.dims).enumerate() {
            let rk = match self.effective_kind(ri) {
                Ok(k) => k,
                Err(m) => {
                    self.emit(pc, Rule::KindMismatch, m);
                    continue;
                }
            };
            if rk == IndexKind::Simple {
                self.emit(
                    pc,
                    Rule::KindMismatch,
                    format!(
                        "simple index `{}` cannot address a segment of `{}`",
                        self.index_name(ri),
                        decl.name
                    ),
                );
                continue;
            }
            let dk = match self.effective_kind(di) {
                Ok(k) => k,
                Err(m) => {
                    self.emit(pc, Rule::KindMismatch, m);
                    continue;
                }
            };
            if rk != dk {
                self.emit(
                    pc,
                    Rule::KindMismatch,
                    format!(
                        "dimension {} of `{}` is declared {:?} but `{}` is {:?}",
                        d,
                        decl.name,
                        dk,
                        self.index_name(ri),
                        rk
                    ),
                );
            }
        }
    }

    /// Array-kind discipline: the instruction must address the kind of
    /// array its semantics require.
    fn check_array_kind(
        &mut self,
        pc: u32,
        array: ArrayId,
        ok: impl Fn(ArrayKind) -> bool,
        what: &str,
    ) {
        let Some(decl) = self.p.arrays.get(array.index()) else {
            return; // bad id diagnosed by the ref/id check
        };
        if !ok(decl.kind) {
            let (name, kind) = (decl.name.clone(), decl.kind);
            self.emit(pc, Rule::KindUsage, format!("{what}; `{name}` is {kind:?}"));
        }
    }

    #[allow(clippy::too_many_lines)]
    fn check_instruction_ids(&mut self, pc: u32, ins: &I) {
        match ins {
            I::PardoStart {
                indices,
                where_clauses,
                ..
            } => {
                for &id in indices {
                    self.check_index_id(pc, id);
                }
                let mut mentioned = Vec::new();
                for w in where_clauses {
                    self.check_bool_expr(pc, w);
                    bool_expr_indices(w, &mut mentioned);
                }
                for id in mentioned {
                    if !indices.contains(&id) {
                        self.emit(
                            pc,
                            Rule::WhereClause,
                            format!(
                                "where clause references `{}` which this pardo does not bind",
                                self.index_name(id)
                            ),
                        );
                    }
                }
            }
            I::DoStart { index, .. } => {
                self.check_index_id(pc, *index);
            }
            I::DoInStart { sub, parent, .. } => {
                if self.check_index_id(pc, *sub) && self.check_index_id(pc, *parent) {
                    match self.p.indices[sub.index()].kind {
                        IndexKind::Subindex { parent: declared } if declared == *parent => {}
                        IndexKind::Subindex { parent: declared } => self.emit(
                            pc,
                            Rule::KindMismatch,
                            format!(
                                "`{}` is a subindex of `{}`, not of `{}`",
                                self.index_name(*sub),
                                self.index_name(declared),
                                self.index_name(*parent)
                            ),
                        ),
                        _ => self.emit(
                            pc,
                            Rule::KindMismatch,
                            format!("`{}` is not a subindex", self.index_name(*sub)),
                        ),
                    }
                }
            }
            I::Call { proc } => {
                if proc.index() >= self.p.procs.len() {
                    self.emit(
                        pc,
                        Rule::BadId,
                        format!(
                            "proc id #{} out of bounds (table has {})",
                            proc.0,
                            self.p.procs.len()
                        ),
                    );
                }
            }
            I::Create { array } | I::Delete { array } => {
                if array.index() >= self.p.arrays.len() {
                    self.emit(
                        pc,
                        Rule::BadId,
                        format!("array id #{} out of bounds", array.0),
                    );
                } else {
                    self.check_array_kind(
                        pc,
                        *array,
                        |k| k.is_remote() || k == ArrayKind::Local,
                        "`create`/`delete` applies to distributed, served, or local arrays",
                    );
                }
            }
            I::Get { block } => {
                self.check_block_ref(pc, block);
                self.check_array_kind(
                    pc,
                    block.array,
                    |k| k == ArrayKind::Distributed,
                    "`get` requires a distributed array",
                );
            }
            I::Put { dest, src, .. } => {
                self.check_block_ref(pc, dest);
                self.check_block_ref(pc, src);
                self.check_array_kind(
                    pc,
                    dest.array,
                    |k| k == ArrayKind::Distributed,
                    "`put` requires a distributed array",
                );
                self.check_array_kind(
                    pc,
                    src.array,
                    |k| !k.is_remote(),
                    "`put` source must be worker-local",
                );
            }
            I::Request { block } => {
                self.check_block_ref(pc, block);
                self.check_array_kind(
                    pc,
                    block.array,
                    |k| k == ArrayKind::Served,
                    "`request` requires a served array",
                );
            }
            I::Prepare { dest, src, .. } => {
                self.check_block_ref(pc, dest);
                self.check_block_ref(pc, src);
                self.check_array_kind(
                    pc,
                    dest.array,
                    |k| k == ArrayKind::Served,
                    "`prepare` requires a served array",
                );
                self.check_array_kind(
                    pc,
                    src.array,
                    |k| !k.is_remote(),
                    "`prepare` source must be worker-local",
                );
            }
            I::BlocksToList { array, label } | I::ListToBlocks { array, label } => {
                self.check_string_id(pc, *label);
                if array.index() >= self.p.arrays.len() {
                    self.emit(
                        pc,
                        Rule::BadId,
                        format!("array id #{} out of bounds", array.0),
                    );
                } else {
                    self.check_array_kind(
                        pc,
                        *array,
                        |k| k.is_remote(),
                        "checkpointing applies to distributed or served arrays",
                    );
                }
            }
            I::BlockFill { dest, value } => {
                self.check_block_ref(pc, dest);
                self.check_scalar_expr(pc, value);
                self.check_array_kind(
                    pc,
                    dest.array,
                    |k| !k.is_remote(),
                    "direct block write requires a local array (use put/prepare)",
                );
            }
            I::BlockCopy { dest, src } => {
                self.check_block_ref(pc, dest);
                self.check_block_ref(pc, src);
                self.check_array_kind(
                    pc,
                    dest.array,
                    |k| !k.is_remote(),
                    "direct block write requires a local array (use put/prepare)",
                );
            }
            I::BlockAccumulate { dest, src, .. } => {
                self.check_block_ref(pc, dest);
                self.check_block_ref(pc, src);
                self.check_array_kind(
                    pc,
                    dest.array,
                    |k| !k.is_remote(),
                    "direct block write requires a local array (use put/prepare)",
                );
            }
            I::BlockScale { dest, factor } => {
                self.check_block_ref(pc, dest);
                self.check_scalar_expr(pc, factor);
                self.check_array_kind(
                    pc,
                    dest.array,
                    |k| !k.is_remote(),
                    "direct block write requires a local array (use put/prepare)",
                );
            }
            I::BlockContract { dest, a, b, .. } => {
                self.check_block_ref(pc, dest);
                self.check_block_ref(pc, a);
                self.check_block_ref(pc, b);
                self.check_array_kind(
                    pc,
                    dest.array,
                    |k| !k.is_remote(),
                    "direct block write requires a local array (use put/prepare)",
                );
            }
            I::ScalarAssign { dest, expr } => {
                if dest.index() >= self.p.scalars.len() {
                    self.emit(
                        pc,
                        Rule::BadId,
                        format!("scalar id #{} out of bounds", dest.0),
                    );
                }
                self.check_scalar_expr(pc, expr);
            }
            I::ScalarFromBlock { dest, src, .. } => {
                if dest.index() >= self.p.scalars.len() {
                    self.emit(
                        pc,
                        Rule::BadId,
                        format!("scalar id #{} out of bounds", dest.0),
                    );
                }
                self.check_block_ref(pc, src);
            }
            I::ExecuteSuper { name, args } => {
                self.check_string_id(pc, *name);
                for a in args {
                    match a {
                        Arg::Block(b) => self.check_block_ref(pc, b),
                        Arg::Scalar(id) => {
                            if id.index() >= self.p.scalars.len() {
                                self.emit(
                                    pc,
                                    Rule::BadId,
                                    format!("scalar id #{} out of bounds", id.0),
                                );
                            }
                        }
                        Arg::Index(id) => {
                            self.check_index_id(pc, *id);
                        }
                    }
                }
            }
            I::Print { items } => {
                for item in items {
                    match item {
                        PrintItem::Str(id) => self.check_string_id(pc, *id),
                        PrintItem::Expr(e) => self.check_scalar_expr(pc, e),
                    }
                }
            }
            I::PardoEnd { .. }
            | I::DoEnd { .. }
            | I::DoInEnd { .. }
            | I::ExitLoop { .. }
            | I::JumpIfFalse { .. }
            | I::Jump { .. }
            | I::Return
            | I::Halt
            | I::SipBarrier
            | I::ServerBarrier => {}
        }
        if let I::JumpIfFalse { cond, .. } = ins {
            self.check_bool_expr(pc, cond);
        }
    }

    /// Loop pairing: every start's `end_pc` must hold the matching end
    /// whose `start_pc` points back; loops close in LIFO order; pardo does
    /// not nest; the stack is empty at `Return`/`Halt`; barriers do not
    /// appear inside pardo bodies. Also records matched loop intervals for
    /// the jump scan.
    fn scan_loops(&mut self) {
        let len = self.p.code.len() as u32;
        let mut stack: Vec<(u32, u32, LoopKind)> = Vec::new();
        for pc in 0..len {
            match &self.p.code[pc as usize] {
                I::PardoStart { end_pc, .. } => {
                    if stack.iter().any(|&(_, _, k)| k == LoopKind::Pardo) {
                        self.emit(
                            pc,
                            Rule::Nesting,
                            "nested pardo: the SIP schedules one pardo at a time".into(),
                        );
                    }
                    self.open_loop(pc, *end_pc, LoopKind::Pardo, &mut stack);
                }
                I::DoStart { end_pc, .. } => {
                    self.open_loop(pc, *end_pc, LoopKind::Do, &mut stack);
                }
                I::DoInStart { end_pc, .. } => {
                    self.open_loop(pc, *end_pc, LoopKind::DoIn, &mut stack);
                }
                I::PardoEnd { start_pc } => {
                    self.close_loop(pc, *start_pc, LoopKind::Pardo, &mut stack);
                }
                I::DoEnd { start_pc } => {
                    self.close_loop(pc, *start_pc, LoopKind::Do, &mut stack);
                }
                I::DoInEnd { start_pc } => {
                    self.close_loop(pc, *start_pc, LoopKind::DoIn, &mut stack);
                }
                I::ExitLoop { loop_start_pc, .. } => {
                    let enclosing = stack
                        .iter()
                        .rev()
                        .find(|&&(s, _, k)| s == *loop_start_pc && k != LoopKind::Pardo);
                    if enclosing.is_none() {
                        self.emit(
                            pc,
                            Rule::Nesting,
                            format!(
                                "exit references pc {loop_start_pc} which is not an \
                                 enclosing sequential loop"
                            ),
                        );
                    }
                }
                I::SipBarrier | I::ServerBarrier
                    if stack.iter().any(|&(_, _, k)| k == LoopKind::Pardo) =>
                {
                    self.emit(
                        pc,
                        Rule::BarrierInPardo,
                        "barrier inside a pardo body: workers parked mid-chunk \
                         never all arrive"
                            .into(),
                    );
                }
                I::Return | I::Halt => {
                    for &(s, _, _) in &stack {
                        self.emit(
                            pc,
                            Rule::Nesting,
                            format!("loop opened at pc {s} is still open here"),
                        );
                    }
                    stack.clear();
                }
                _ => {}
            }
        }
        for (s, _, _) in stack {
            self.emit(
                s,
                Rule::Nesting,
                "loop never closed before end of code".into(),
            );
        }
    }

    fn open_loop(
        &mut self,
        pc: u32,
        end_pc: u32,
        kind: LoopKind,
        stack: &mut Vec<(u32, u32, LoopKind)>,
    ) {
        let len = self.p.code.len() as u32;
        let end_ok = end_pc > pc
            && end_pc < len
            && match (&self.p.code[end_pc as usize], kind) {
                (I::PardoEnd { start_pc }, LoopKind::Pardo)
                | (I::DoEnd { start_pc }, LoopKind::Do)
                | (I::DoInEnd { start_pc }, LoopKind::DoIn) => *start_pc == pc,
                _ => false,
            };
        if !end_ok {
            self.emit(
                pc,
                Rule::Nesting,
                format!("end_pc {end_pc} does not hold the matching loop end"),
            );
        } else {
            self.intervals.push((pc, end_pc));
        }
        stack.push((pc, end_pc, kind));
    }

    fn close_loop(
        &mut self,
        pc: u32,
        start_pc: u32,
        kind: LoopKind,
        stack: &mut Vec<(u32, u32, LoopKind)>,
    ) {
        match stack.last() {
            Some(&(s, _, k)) if s == start_pc && k == kind => {
                stack.pop();
            }
            _ => self.emit(
                pc,
                Rule::Nesting,
                format!("loop end for start pc {start_pc} does not match the innermost open loop"),
            ),
        }
    }

    /// Every branch target in bounds and never into a loop body the branch
    /// is outside of (a jump past a `DoStart` enters a body whose loop
    /// frame was never pushed).
    fn scan_jumps(&mut self) {
        let len = self.p.code.len() as u32;
        let intervals = self.intervals.clone();
        for pc in 0..len {
            let target = match &self.p.code[pc as usize] {
                I::Jump { target } | I::JumpIfFalse { target, .. } | I::ExitLoop { target, .. } => {
                    *target
                }
                _ => continue,
            };
            if target >= len {
                self.emit(
                    pc,
                    Rule::JumpIntoLoop,
                    format!("branch target {target} out of bounds (code has {len})"),
                );
                continue;
            }
            for &(s, e) in &intervals {
                let enters_body = s < target && target <= e;
                let from_inside = s <= pc && pc <= e;
                if enters_body && !from_inside {
                    self.emit(
                        pc,
                        Rule::JumpIntoLoop,
                        format!("branch into the body of the loop at pcs {s}..{e}"),
                    );
                }
            }
        }
    }

    /// Procedure sanity: entry pcs in bounds, each body reaches a `Return`,
    /// and the call graph is acyclic (the SIP has no call-depth bound, so
    /// recursion never terminates).
    fn scan_procs(&mut self) {
        let len = self.p.code.len() as u32;
        let mut calls: Vec<Vec<ProcId>> = vec![Vec::new(); self.p.procs.len()];
        for (i, proc) in self.p.procs.iter().enumerate() {
            if proc.entry_pc >= len {
                self.emit(
                    proc.entry_pc.min(len.saturating_sub(1)),
                    Rule::BadId,
                    format!(
                        "proc `{}` entry pc {} out of bounds",
                        proc.name, proc.entry_pc
                    ),
                );
                continue;
            }
            match proc_body_end(self.p, proc.entry_pc) {
                Some(end) => {
                    for pc in proc.entry_pc..end {
                        if let I::Call { proc: callee } = &self.p.code[pc as usize] {
                            if callee.index() < self.p.procs.len() {
                                calls[i].push(*callee);
                            }
                        }
                    }
                }
                None => self.emit(
                    proc.entry_pc,
                    Rule::Nesting,
                    format!("proc `{}` has no return", proc.name),
                ),
            }
        }
        // Cycle detection over the proc call graph.
        let n = self.p.procs.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            state[start] = 1;
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                if *edge < calls[node].len() {
                    let next = calls[node][*edge].index();
                    *edge += 1;
                    match state[next] {
                        0 => {
                            state[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => {
                            let entry = self.p.procs[next].entry_pc;
                            let name = self.p.procs[next].name.clone();
                            self.emit(
                                entry,
                                Rule::Recursion,
                                format!("proc `{name}` is called recursively"),
                            );
                            state[next] = 2; // report each cycle head once
                        }
                        _ => {}
                    }
                } else {
                    state[node] = 2;
                    stack.pop();
                }
            }
        }
    }
}

/// The pc one past a proc body: scans from `entry` to the first `Return`.
fn proc_body_end(p: &Program, entry: u32) -> Option<u32> {
    (entry..p.code.len() as u32).find(|&pc| matches!(p.code[pc as usize], I::Return))
}

// ---- layer 2: race detection -----------------------------------------------

/// What we remember about the most recent unbarriered write to an array.
#[derive(Debug, Clone)]
struct DirtyWrite {
    /// Pc of the write.
    pc: u32,
    /// Pardo instance the write happened in (`None` for serial bulk
    /// restores like `list_to_blocks`).
    instance: Option<u64>,
    /// The write's destination index ids (`None` for whole-array writes).
    indices: Option<Vec<IndexId>>,
    /// True when the destination names every pardo index (each iteration
    /// writes its own block).
    covers: bool,
}

/// A data-free walk over the program (in the style of [`crate::trace`]):
/// loop bodies are visited rather than iterated — sequential loop bodies
/// twice, to catch loop-carried hazards — and calls are inlined.
struct RaceWalk<'a, 'b> {
    v: &'b mut Verifier<'a>,
    dirty_dist: HashMap<ArrayId, DirtyWrite>,
    dirty_served: HashMap<ArrayId, DirtyWrite>,
    /// Current pardo: (instance number, bound indices).
    pardo: Option<(u64, Vec<IndexId>)>,
    instances: u64,
    call_stack: Vec<ProcId>,
    reported: HashSet<(u32, Rule)>,
}

impl<'a, 'b> RaceWalk<'a, 'b> {
    fn new(v: &'b mut Verifier<'a>) -> Self {
        RaceWalk {
            v,
            dirty_dist: HashMap::new(),
            dirty_served: HashMap::new(),
            pardo: None,
            instances: 0,
            call_stack: Vec::new(),
            reported: HashSet::new(),
        }
    }

    fn run(&mut self) {
        self.walk(0, self.v.p.code.len() as u32);
    }

    fn report(&mut self, pc: u32, rule: Rule, message: String) {
        if self.reported.insert((pc, rule)) {
            self.v.emit(pc, rule, message);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn walk(&mut self, lo: u32, hi: u32) {
        let mut pc = lo;
        while pc < hi {
            match &self.v.p.code[pc as usize].clone() {
                I::PardoStart {
                    indices, end_pc, ..
                } => {
                    if self.pardo.is_some() {
                        // Reached through a call from inside another pardo —
                        // invisible to the linear structural scan.
                        self.report(
                            pc,
                            Rule::Nesting,
                            "nested pardo: the SIP schedules one pardo at a time".into(),
                        );
                    }
                    self.instances += 1;
                    let saved = self.pardo.replace((self.instances, indices.clone()));
                    self.walk(pc + 1, *end_pc);
                    self.pardo = saved;
                    pc = *end_pc + 1;
                }
                I::DoStart { end_pc, .. } | I::DoInStart { end_pc, .. } => {
                    // Twice: the second pass sees state the first left
                    // behind, catching hazards carried around the loop.
                    self.walk(pc + 1, *end_pc);
                    self.walk(pc + 1, *end_pc);
                    pc = *end_pc + 1;
                }
                I::Call { proc } => {
                    if !self.call_stack.contains(proc) {
                        let entry = self.v.p.procs[proc.index()].entry_pc;
                        if let Some(end) = proc_body_end(self.v.p, entry) {
                            self.call_stack.push(*proc);
                            self.walk(entry, end);
                            self.call_stack.pop();
                        }
                    }
                    pc += 1;
                }
                I::Halt | I::Return => return,
                I::SipBarrier => {
                    self.dirty_dist.clear();
                    pc += 1;
                }
                I::ServerBarrier => {
                    self.dirty_served.clear();
                    pc += 1;
                }
                I::Put { dest, mode, .. } => {
                    self.handle_write(pc, dest, *mode, true);
                    pc += 1;
                }
                I::Prepare { dest, mode, .. } => {
                    self.handle_write(pc, dest, *mode, false);
                    pc += 1;
                }
                I::Get { block } => {
                    self.handle_read(pc, block, true);
                    pc += 1;
                }
                I::Request { block } => {
                    self.handle_read(pc, block, false);
                    pc += 1;
                }
                I::BlocksToList { array, .. } => {
                    if let Some(w) = self.dirty_dist.get(array) {
                        let (wpc, name) = (w.pc, self.v.array_name(*array));
                        self.report(
                            pc,
                            Rule::GetAfterPut,
                            format!(
                                "`{name}` is serialized while dirty from the put at pc {wpc} \
                                 with no sip_barrier between"
                            ),
                        );
                    }
                    pc += 1;
                }
                I::ListToBlocks { array, .. } => {
                    self.dirty_dist.insert(
                        *array,
                        DirtyWrite {
                            pc,
                            instance: None,
                            indices: None,
                            covers: false,
                        },
                    );
                    pc += 1;
                }
                I::Create { array } | I::Delete { array } => {
                    self.dirty_dist.remove(array);
                    self.dirty_served.remove(array);
                    pc += 1;
                }
                _ => pc += 1,
            }
        }
    }

    /// A `put`/`prepare`. In a pardo, a replace-mode write whose
    /// destination does not name every pardo index is a write-write race:
    /// two iterations differing only in an unnamed index address the same
    /// block. Accumulate-mode writes are exempt — the paper makes `+=`
    /// atomic precisely so concurrent iterations may combine into one
    /// block without synchronization (§IV-C).
    fn handle_write(&mut self, pc: u32, dest: &BlockRef, mode: PutMode, dist: bool) {
        let covers = match &self.pardo {
            Some((_, pindices)) => {
                let uncovered: Vec<IndexId> = pindices
                    .iter()
                    .copied()
                    .filter(|&p| {
                        !dest.indices.contains(&p)
                            && !dest
                                .indices
                                .iter()
                                .any(|&ri| self.v.parent_of(ri) == Some(p))
                    })
                    .collect();
                if !uncovered.is_empty() && mode == PutMode::Replace {
                    let names: Vec<String> =
                        uncovered.iter().map(|&i| self.v.index_name(i)).collect();
                    let array = self.v.array_name(dest.array);
                    let verb = if dist { "put" } else { "prepare" };
                    self.report(
                        pc,
                        Rule::WriteWriteRace,
                        format!(
                            "replace-mode {verb} to `{array}` does not name pardo \
                             index{} {}; concurrent iterations overwrite the same \
                             block (accumulate with += or add the index)",
                            if names.len() == 1 { "" } else { "es" },
                            names.join(", ")
                        ),
                    );
                }
                uncovered.is_empty()
            }
            None => false,
        };
        let entry = DirtyWrite {
            pc,
            instance: self.pardo.as_ref().map(|(i, _)| *i),
            indices: Some(dest.indices.clone()),
            covers,
        };
        // Serial puts are redundant deterministic writes (every worker
        // executes the same serial code); only pardo writes and bulk
        // restores participate in the read-after-write rules.
        if entry.instance.is_some() {
            if dist {
                self.dirty_dist.insert(dest.array, entry);
            } else {
                self.dirty_served.insert(dest.array, entry);
            }
        }
    }

    /// A `get`/`request`. Reading an array dirty from an unbarriered write
    /// is a race — except the self-read pattern `put X(M..) … get X(M..)`
    /// inside one pardo iteration whose destination covers the pardo
    /// indices: there each iteration reads back the very block only it
    /// writes, and fabric FIFO per peer pair orders the two.
    fn handle_read(&mut self, pc: u32, block: &BlockRef, dist: bool) {
        let map = if dist {
            &self.dirty_dist
        } else {
            &self.dirty_served
        };
        let Some(w) = map.get(&block.array) else {
            return;
        };
        let same_instance = match (&self.pardo, w.instance) {
            (Some((cur, _)), Some(wi)) => *cur == wi,
            _ => false,
        };
        let same_ref = w.indices.as_deref() == Some(&block.indices[..]);
        if same_instance && same_ref && w.covers {
            return;
        }
        let (wpc, name) = (w.pc, self.v.array_name(block.array));
        if dist {
            self.report(
                pc,
                Rule::GetAfterPut,
                format!(
                    "get of `{name}` races the put at pc {wpc}: no sip_barrier \
                     separates the write from this read"
                ),
            );
        } else {
            self.report(
                pc,
                Rule::RequestAfterPrepare,
                format!(
                    "request of `{name}` races the prepare at pc {wpc}: no \
                     server_barrier separates the write from this read"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests;
