//! I/O servers: the disk tier behind SIAL `served` arrays.
//!
//! "Each I/O server contains a cache for served array blocks. Blocks
//! arriving as a result of a prepare command are placed in the cache and
//! lazily written to disk … Replacement is done using a LRU strategy. All
//! operations of an I/O server are non-blocking." (§V-B)
//!
//! Our server keeps an LRU write-behind cache over a directory of block
//! files. Each message-loop tick flushes at most one dirty block, so a long
//! prepare burst never blocks request service — the in-process analogue of
//! the original's asynchronous I/O.

use crate::error::RuntimeError;
use crate::events::{EventKind, TraceSink};
use crate::layout::Layout;
use crate::msg::{BlockKey, OpId, SipMsg};
use sia_blocks::{Block, BlockHandle, Shape};
use sia_bytecode::PutMode;
use sia_fabric::Endpoint;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::metrics::ServerStats;

struct Entry {
    block: BlockHandle,
    dirty: bool,
    stamp: u64,
}

/// One I/O server: an LRU write-behind cache over a block directory.
pub struct IoServer {
    layout: Arc<Layout>,
    endpoint: Endpoint<SipMsg>,
    dir: PathBuf,
    capacity: usize,
    cache: HashMap<BlockKey, Entry>,
    /// Norm table for sparse served arrays: blocks whose prepare was dropped
    /// under the sparsity threshold, keyed to the recorded Frobenius-norm
    /// bound. A key with a resident (cache or disk) payload is never here.
    norms: HashMap<BlockKey, f64>,
    clock: u64,
    stats: ServerStats,
    /// Applied prepare op ids → served epoch they arrived in (duplicate
    /// suppression; pruned two epochs back at each `EpochMark`).
    applied_ops: HashMap<u64, u64>,
    /// Completed served epochs (advanced by `EpochMark`).
    epoch: u64,
    /// Event recorder (disabled unless the runtime installs a live sink).
    trace: TraceSink,
    /// Cross-job warm block cache (serving mode): consulted before disk on
    /// a local-cache miss, fed on every flush. Keyed by block-file path, so
    /// only jobs sharing this server's directory share entries.
    warm: Option<Arc<crate::serve::WarmCache>>,
}

fn key_filename(key: &BlockKey) -> String {
    let segs: Vec<String> = key.segs().iter().map(|s| s.to_string()).collect();
    format!("a{}_{}.blk", key.array.0, segs.join("_"))
}

fn write_block_file(path: &Path, block: &Block) -> Result<(), RuntimeError> {
    let mut buf: Vec<u8> = Vec::with_capacity(16 + block.len() * 8);
    let dims = block.shape().dims();
    buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        buf.extend_from_slice(&d.to_le_bytes());
    }
    for v in block.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let tmp = path.with_extension("tmp");
    fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(&buf))
        .and_then(|_| fs::rename(&tmp, path))
        .map_err(|e| RuntimeError::ServedIo(format!("write {}: {e}", path.display())))
}

fn read_block_file(path: &Path) -> Result<Option<Block>, RuntimeError> {
    let mut raw = Vec::new();
    match fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)
                .map_err(|e| RuntimeError::ServedIo(format!("read {}: {e}", path.display())))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(RuntimeError::ServedIo(format!(
                "open {}: {e}",
                path.display()
            )));
        }
    }
    if raw.len() < 4 {
        return Err(RuntimeError::ServedIo("truncated block file".into()));
    }
    let rank = u32::from_le_bytes(raw[0..4].try_into().unwrap()) as usize;
    let mut off = 4;
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize);
        off += 4;
    }
    let shape = if dims.is_empty() {
        Shape::scalar()
    } else {
        Shape::new(&dims)
    };
    let mut data = Vec::with_capacity(shape.len());
    for _ in 0..shape.len() {
        data.push(f64::from_le_bytes(raw[off..off + 8].try_into().map_err(
            |_| RuntimeError::ServedIo("truncated block file".into()),
        )?));
        off += 8;
    }
    Ok(Some(Block::from_data(shape, data)))
}

impl IoServer {
    /// Creates a server storing block files under `dir` (created if absent).
    pub fn new(
        layout: Arc<Layout>,
        endpoint: Endpoint<SipMsg>,
        dir: PathBuf,
        capacity: usize,
    ) -> Result<Self, RuntimeError> {
        fs::create_dir_all(&dir)
            .map_err(|e| RuntimeError::ServedIo(format!("create {}: {e}", dir.display())))?;
        Ok(IoServer {
            layout,
            endpoint,
            dir,
            capacity: capacity.max(1),
            cache: HashMap::new(),
            norms: HashMap::new(),
            clock: 0,
            stats: ServerStats::default(),
            applied_ops: HashMap::new(),
            epoch: 0,
            trace: TraceSink::disabled(),
            warm: None,
        })
    }

    /// Installs the event sink (called by the runtime before `run`).
    pub(crate) fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Installs the cross-job warm block cache (serving mode).
    pub(crate) fn set_warm(&mut self, warm: Arc<crate::serve::WarmCache>) {
        self.warm = Some(warm);
    }

    fn path_of(&self, key: &BlockKey) -> PathBuf {
        self.dir.join(key_filename(key))
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Flushes one dirty block (the oldest) — the lazy write-behind step.
    fn flush_one(&mut self) -> Result<bool, RuntimeError> {
        let victim = self
            .cache
            .iter()
            .filter(|(_, e)| e.dirty)
            .min_by_key(|(_, e)| e.stamp)
            .map(|(k, _)| *k);
        let Some(key) = victim else {
            return Ok(false);
        };
        let path = self.path_of(&key);
        let entry = self.cache.get_mut(&key).unwrap();
        write_block_file(&path, &entry.block)?;
        entry.dirty = false;
        self.stats.disk_writes += 1;
        if let Some(w) = &self.warm {
            w.insert(path, entry.block.clone());
        }
        self.trace.instant(EventKind::Flush { blocks: 1 });
        Ok(true)
    }

    /// Evicts clean LRU entries (flushing if everything is dirty) until the
    /// cache is within capacity.
    fn make_room(&mut self) -> Result<(), RuntimeError> {
        while self.cache.len() >= self.capacity {
            let clean_victim = self
                .cache
                .iter()
                .filter(|(_, e)| !e.dirty)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            match clean_victim {
                Some(k) => {
                    self.cache.remove(&k);
                }
                None => {
                    // Everything dirty: flush the oldest, then loop.
                    if !self.flush_one()? {
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    fn load(&mut self, key: BlockKey) -> Result<BlockHandle, RuntimeError> {
        if let Some(e) = self.cache.get_mut(&key) {
            self.stats.cache_hits += 1;
            e.stamp = self.clock + 1;
            self.clock += 1;
            // The served copy aliases the cache entry: the reply envelope
            // rides on the same allocation.
            return Ok(e.block.clone());
        }
        let path = self.path_of(&key);
        // Serving mode: another job's server (or a previous job) may have
        // this block warm in memory — cheaper than the disk round trip.
        let warm_hit = self.warm.as_ref().and_then(|w| w.get(&path));
        let block: BlockHandle = match warm_hit {
            Some(b) => {
                self.stats.warm_hits += 1;
                b
            }
            None => match read_block_file(&path)? {
                Some(b) => {
                    self.stats.disk_reads += 1;
                    let b: BlockHandle = b.into();
                    if let Some(w) = &self.warm {
                        w.insert(path.clone(), b.clone());
                    }
                    b
                }
                None => {
                    // Never prepared: zeros, consistent with lazy allocation.
                    self.stats.zero_serves += 1;
                    BlockHandle::zeros(self.layout.declared_block_shape(key.array))
                }
            },
        };
        self.make_room()?;
        let stamp = self.tick();
        self.cache.insert(
            key,
            Entry {
                block: block.clone(),
                dirty: false,
                stamp,
            },
        );
        Ok(block)
    }

    /// True when `key` has no payload anywhere (neither cache nor disk) —
    /// the typed-absent state of a sparse served block.
    fn is_absent(&self, key: &BlockKey) -> bool {
        !self.cache.contains_key(key) && !self.path_of(key).exists()
    }

    /// Applies a dropped (norm-only) prepare: a Replace removes any resident
    /// payload and records the bound; an Accumulate onto a resident block is
    /// a no-op, onto an absent one it accumulates the bound.
    fn prepare_absent(&mut self, key: BlockKey, norm: f64, mode: PutMode) {
        self.stats.prepares += 1;
        match mode {
            PutMode::Replace => {
                self.cache.remove(&key);
                let path = self.path_of(&key);
                let _ = fs::remove_file(&path);
                if let Some(w) = &self.warm {
                    w.invalidate(&path);
                }
                self.norms.insert(key, norm);
            }
            PutMode::Accumulate => {
                if self.is_absent(&key) {
                    let prior = self.norms.get(&key).copied().unwrap_or(0.0);
                    self.norms.insert(key, prior + norm);
                }
            }
        }
    }

    /// [`IoServer::prepare_absent`] behind the same duplicate suppression as
    /// [`IoServer::prepare_deduped`].
    fn prepare_absent_deduped(&mut self, key: BlockKey, norm: f64, mode: PutMode, op: OpId) {
        if op.is_tracked() && self.applied_ops.insert(op.0, self.epoch).is_some() {
            self.stats.dup_prepares_suppressed += 1;
            return;
        }
        self.prepare_absent(key, norm, mode);
    }

    fn prepare(
        &mut self,
        key: BlockKey,
        data: BlockHandle,
        mode: PutMode,
    ) -> Result<(), RuntimeError> {
        self.stats.prepares += 1;
        // A real payload supersedes any recorded absence.
        self.norms.remove(&key);
        // Any warm copy of this block is now stale (the fresh payload is
        // dirty in the local cache until the next flush republishes it).
        if let Some(w) = &self.warm {
            w.invalidate(&self.path_of(&key));
        }
        match mode {
            PutMode::Replace => {
                self.make_room()?;
                let stamp = self.tick();
                self.cache.insert(
                    key,
                    Entry {
                        block: data,
                        dirty: true,
                        stamp,
                    },
                );
            }
            PutMode::Accumulate => {
                // Accumulate needs the current value (cache or disk).
                let mut cur = self.load(key)?;
                cur.make_mut().accumulate(&data);
                let stamp = self.tick();
                self.cache.insert(
                    key,
                    Entry {
                        block: cur,
                        dirty: true,
                        stamp,
                    },
                );
            }
        }
        Ok(())
    }

    /// Applies a prepare unless its op id was already applied (a duplicate
    /// from a sender retry, fabric duplication, or chunk re-execution).
    /// Duplicates are suppressed but still acknowledged, so the sender's
    /// retry loop settles.
    fn prepare_deduped(
        &mut self,
        key: BlockKey,
        data: BlockHandle,
        mode: PutMode,
        op: OpId,
    ) -> Result<(), RuntimeError> {
        if op.is_tracked() && self.applied_ops.insert(op.0, self.epoch).is_some() {
            self.stats.dup_prepares_suppressed += 1;
            return Ok(());
        }
        self.prepare(key, data, mode)
    }

    /// Commits a served epoch: flushes everything dirty, records the epoch
    /// in this server's manifest, and prunes the duplicate-suppression
    /// window (nothing can retry across two committed epochs).
    fn mark_epoch(&mut self, epoch: u64) -> Result<(), RuntimeError> {
        self.flush_all()?;
        self.epoch = epoch;
        let path = self
            .dir
            .join(format!("manifest_r{}.txt", self.endpoint.rank().0));
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, format!("{epoch}\n"))
            .and_then(|_| fs::rename(&tmp, &path))
            .map_err(|e| RuntimeError::ServedIo(format!("manifest {}: {e}", path.display())))?;
        self.applied_ops.retain(|_, e| *e + 2 > epoch);
        Ok(())
    }

    fn delete_array(&mut self, array: sia_bytecode::ArrayId) -> Result<(), RuntimeError> {
        self.cache.retain(|k, _| k.array != array);
        self.norms.retain(|k, _| k.array != array);
        let prefix = format!("a{}_", array.0);
        if let Some(w) = &self.warm {
            w.invalidate_prefix(&self.dir, &prefix);
        }
        let entries =
            fs::read_dir(&self.dir).map_err(|e| RuntimeError::ServedIo(format!("readdir: {e}")))?;
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with(&prefix) {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Flushes all dirty blocks (shutdown).
    pub fn flush_all(&mut self) -> Result<(), RuntimeError> {
        while self.flush_one()? {}
        Ok(())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Runs the server's nonblocking message loop until shutdown.
    pub fn run(&mut self) -> Result<ServerStats, RuntimeError> {
        loop {
            match self.endpoint.recv_timeout(Duration::from_micros(500)) {
                Some(env) => {
                    let src = env.src;
                    match env.msg {
                        SipMsg::RequestBlock { key, req } => {
                            // A sparse block with no payload anywhere is
                            // typed-absent: ship the norm bound instead of
                            // materializing and caching a zero block.
                            if self.layout.array_sparse(key.array) && self.is_absent(&key) {
                                let norm = self.norms.get(&key).copied().unwrap_or(0.0);
                                let _ = self
                                    .endpoint
                                    .send(src, SipMsg::BlockAbsent { key, norm, req });
                                continue;
                            }
                            let t0 = Instant::now();
                            let reads0 = self.stats.disk_reads;
                            let data = self.load(key)?;
                            let disk = self.stats.disk_reads > reads0;
                            self.trace.span_since(EventKind::Serve { key, disk }, t0);
                            let _ = self
                                .endpoint
                                .send(src, SipMsg::BlockData { key, data, req });
                        }
                        SipMsg::PrepareBlock {
                            key,
                            data,
                            mode,
                            op,
                        } => {
                            self.prepare_deduped(key, data, mode, op)?;
                            let _ = self.endpoint.send(src, SipMsg::PrepareAck { key, op });
                        }
                        SipMsg::PutAbsent {
                            key,
                            norm,
                            mode,
                            op,
                        } => {
                            self.prepare_absent_deduped(key, norm, mode, op);
                            let _ = self.endpoint.send(src, SipMsg::PrepareAck { key, op });
                        }
                        SipMsg::EpochMark { epoch } => {
                            self.mark_epoch(epoch)?;
                            let _ = self
                                .endpoint
                                .send(self.layout.topology.master(), SipMsg::EpochAck { epoch });
                        }
                        SipMsg::DeleteArray { array } => {
                            self.delete_array(array)?;
                        }
                        SipMsg::Shutdown => {
                            self.flush_all()?;
                            // Ship counters (and recorded events) to the
                            // master, which is draining its inbox for these
                            // after the shutdown broadcast.
                            let (events, dropped) = self.trace.drain();
                            let _ = self.endpoint.send(
                                self.layout.topology.master(),
                                SipMsg::ServerDone {
                                    stats: self.stats,
                                    events,
                                    dropped,
                                },
                            );
                            return Ok(self.stats);
                        }
                        _ => {}
                    }
                }
                None => {
                    // Idle: lazy write-behind makes progress.
                    self.flush_one()?;
                    if self.endpoint.shutdown_raised() {
                        self.flush_all()?;
                        return Ok(self.stats);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{SegmentConfig, Topology};
    use sia_bytecode::{
        ArrayDecl, ArrayId, ArrayKind, ConstBindings, IndexDecl, IndexId, IndexKind, Program, Value,
    };
    use std::sync::Arc;

    fn test_layout() -> Arc<Layout> {
        let program = Program {
            indices: vec![IndexDecl {
                name: "i".into(),
                kind: IndexKind::AoIndex,
                low: Value::Lit(1),
                high: Value::Lit(4),
            }],
            arrays: vec![ArrayDecl {
                name: "S".into(),
                kind: ArrayKind::Served,
                dims: vec![IndexId(0), IndexId(0)],
                sparse: false,
            }],
            ..Default::default()
        };
        Arc::new(
            Layout::new(
                Arc::new(program),
                &ConstBindings::new(),
                SegmentConfig {
                    default: 4,
                    ..Default::default()
                },
                Topology::new(1, 1),
            )
            .unwrap(),
        )
    }

    fn sparse_test_layout() -> Arc<Layout> {
        let program = Program {
            indices: vec![IndexDecl {
                name: "i".into(),
                kind: IndexKind::AoIndex,
                low: Value::Lit(1),
                high: Value::Lit(4),
            }],
            arrays: vec![ArrayDecl {
                name: "S".into(),
                kind: ArrayKind::Served,
                dims: vec![IndexId(0), IndexId(0)],
                sparse: true,
            }],
            ..Default::default()
        };
        Arc::new(
            Layout::new(
                Arc::new(program),
                &ConstBindings::new(),
                SegmentConfig {
                    default: 4,
                    ..Default::default()
                },
                Topology::new(1, 1),
            )
            .unwrap(),
        )
    }

    fn test_server(dir: &Path, capacity: usize) -> IoServer {
        let (mut eps, _) = sia_fabric::build::<SipMsg>(3);
        let ep = eps.remove(2);
        IoServer::new(test_layout(), ep, dir.to_path_buf(), capacity).unwrap()
    }

    fn sparse_server(dir: &Path, capacity: usize) -> IoServer {
        let (mut eps, _) = sia_fabric::build::<SipMsg>(3);
        let ep = eps.remove(2);
        IoServer::new(sparse_test_layout(), ep, dir.to_path_buf(), capacity).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "sia-io-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn blk(v: f64) -> BlockHandle {
        BlockHandle::new(Block::filled(Shape::new(&[4, 4]), v))
    }

    #[test]
    fn prepare_then_request_roundtrip() {
        let dir = tmpdir("rt");
        let mut s = test_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[1, 2]);
        s.prepare(key, blk(3.0), PutMode::Replace).unwrap();
        let got = s.load(key).unwrap();
        assert_eq!(got, blk(3.0));
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn accumulate_mode_adds() {
        let dir = tmpdir("acc");
        let mut s = test_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[1, 1]);
        s.prepare(key, blk(1.0), PutMode::Replace).unwrap();
        s.prepare(key, blk(2.0), PutMode::Accumulate).unwrap();
        assert_eq!(s.load(key).unwrap(), blk(3.0));
    }

    #[test]
    fn unprepared_block_reads_zero() {
        let dir = tmpdir("zero");
        let mut s = test_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[3, 3]);
        let got = s.load(key).unwrap();
        assert!(got.data().iter().all(|&x| x == 0.0));
        assert_eq!(s.stats().zero_serves, 1);
    }

    #[test]
    fn eviction_flushes_and_disk_survives() {
        let dir = tmpdir("evict");
        let mut s = test_server(&dir, 2);
        let k1 = BlockKey::new(ArrayId(0), &[1, 1]);
        let k2 = BlockKey::new(ArrayId(0), &[2, 2]);
        let k3 = BlockKey::new(ArrayId(0), &[3, 3]);
        s.prepare(k1, blk(1.0), PutMode::Replace).unwrap();
        s.prepare(k2, blk(2.0), PutMode::Replace).unwrap();
        s.prepare(k3, blk(3.0), PutMode::Replace).unwrap();
        // k1 must have been flushed to disk before eviction; reading it back
        // must hit disk, not zeros.
        let got = s.load(k1).unwrap();
        assert_eq!(got, blk(1.0));
        assert!(s.stats().disk_writes >= 1);
        assert!(s.stats().disk_reads >= 1);
    }

    #[test]
    fn flush_all_persists_everything() {
        let dir = tmpdir("flush");
        let key = BlockKey::new(ArrayId(0), &[4, 4]);
        {
            let mut s = test_server(&dir, 8);
            s.prepare(key, blk(9.0), PutMode::Replace).unwrap();
            s.flush_all().unwrap();
        }
        // A brand-new server over the same directory sees the data.
        let mut s2 = test_server(&dir, 8);
        assert_eq!(s2.load(key).unwrap(), blk(9.0));
        assert_eq!(s2.stats().disk_reads, 1);
    }

    #[test]
    fn delete_array_removes_cache_and_files() {
        let dir = tmpdir("del");
        let mut s = test_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[1, 4]);
        s.prepare(key, blk(5.0), PutMode::Replace).unwrap();
        s.flush_all().unwrap();
        s.delete_array(ArrayId(0)).unwrap();
        let got = s.load(key).unwrap();
        assert!(
            got.data().iter().all(|&x| x == 0.0),
            "deleted block reads zero"
        );
    }

    #[test]
    fn block_file_format_roundtrips() {
        let dir = tmpdir("fmt");
        let path = dir.join("x.blk");
        let b = Block::from_fn(Shape::new(&[2, 3]), |i| (i[0] * 3 + i[1]) as f64);
        write_block_file(&path, &b).unwrap();
        let back = read_block_file(&path).unwrap().unwrap();
        assert_eq!(b, back);
        assert!(read_block_file(&dir.join("missing.blk")).unwrap().is_none());
    }

    #[test]
    fn duplicate_prepare_suppressed() {
        let dir = tmpdir("dup");
        let mut s = test_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[2, 3]);
        let op = OpId(0xdead_beef);
        // An accumulate retried (or duplicated by the fabric, or re-executed
        // by a takeover chunk) must count exactly once.
        s.prepare_deduped(key, blk(2.0), PutMode::Accumulate, op)
            .unwrap();
        s.prepare_deduped(key, blk(2.0), PutMode::Accumulate, op)
            .unwrap();
        assert_eq!(s.load(key).unwrap(), blk(2.0));
        assert_eq!(s.stats().dup_prepares_suppressed, 1);
        // A different op id is a genuinely new operation.
        s.prepare_deduped(key, blk(3.0), PutMode::Accumulate, OpId(0xfeed))
            .unwrap();
        assert_eq!(s.load(key).unwrap(), blk(5.0));
        // Untracked ops bypass suppression entirely.
        s.prepare_deduped(key, blk(1.0), PutMode::Replace, OpId::NONE)
            .unwrap();
        s.prepare_deduped(key, blk(1.0), PutMode::Replace, OpId::NONE)
            .unwrap();
        assert_eq!(s.stats().dup_prepares_suppressed, 1);
    }

    #[test]
    fn epoch_mark_flushes_and_writes_manifest() {
        let dir = tmpdir("epoch");
        let mut s = test_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[1, 2]);
        s.prepare_deduped(key, blk(4.0), PutMode::Replace, OpId(7))
            .unwrap();
        s.mark_epoch(1).unwrap();
        assert!(s.stats().disk_writes >= 1, "mark flushes dirty blocks");
        let manifest = dir.join(format!("manifest_r{}.txt", s.endpoint.rank().0));
        assert_eq!(fs::read_to_string(manifest).unwrap().trim(), "1");
        // The suppression window prunes entries two epochs back.
        s.mark_epoch(2).unwrap();
        s.mark_epoch(3).unwrap();
        assert!(
            !s.applied_ops.contains_key(&7),
            "old applied ops are pruned"
        );
    }

    #[test]
    fn absent_replace_drops_payload_and_real_prepare_clears_norm() {
        let dir = tmpdir("absent");
        let mut s = sparse_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[1, 2]);
        s.prepare(key, blk(3.0), PutMode::Replace).unwrap();
        s.flush_all().unwrap();
        assert!(!s.is_absent(&key));
        // A dropped Replace removes both the cached copy and the disk file.
        s.prepare_absent(key, 1e-12, PutMode::Replace);
        assert!(s.is_absent(&key), "payload gone from cache and disk");
        assert_eq!(s.norms.get(&key).copied(), Some(1e-12));
        // A later real prepare makes the block resident again and clears the
        // norm entry so it cannot shadow live data.
        s.prepare(key, blk(2.0), PutMode::Replace).unwrap();
        assert!(!s.is_absent(&key));
        assert!(!s.norms.contains_key(&key));
        assert_eq!(s.load(key).unwrap(), blk(2.0));
    }

    #[test]
    fn absent_accumulate_bounds_and_resident_noop() {
        let dir = tmpdir("absacc");
        let mut s = sparse_server(&dir, 8);
        let absent = BlockKey::new(ArrayId(0), &[3, 3]);
        // Accumulating norm bounds onto an absent block sums them
        // (triangle inequality keeps the bound sound).
        s.prepare_absent(absent, 0.25, PutMode::Accumulate);
        s.prepare_absent(absent, 0.50, PutMode::Accumulate);
        assert_eq!(s.norms.get(&absent).copied(), Some(0.75));
        // Onto a resident block it is a no-op: the payload stays exact.
        let resident = BlockKey::new(ArrayId(0), &[1, 1]);
        s.prepare(resident, blk(4.0), PutMode::Replace).unwrap();
        s.prepare_absent(resident, 0.25, PutMode::Accumulate);
        assert!(!s.norms.contains_key(&resident));
        assert_eq!(s.load(resident).unwrap(), blk(4.0));
    }

    #[test]
    fn duplicate_put_absent_suppressed() {
        let dir = tmpdir("absdup");
        let mut s = sparse_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[2, 4]);
        let op = OpId(0xabcd);
        // A retried/duplicated dropped-accumulate must bound the norm once.
        s.prepare_absent_deduped(key, 0.5, PutMode::Accumulate, op);
        s.prepare_absent_deduped(key, 0.5, PutMode::Accumulate, op);
        assert_eq!(s.norms.get(&key).copied(), Some(0.5));
        assert_eq!(s.stats().dup_prepares_suppressed, 1);
        // Real and absent prepares share one dedup window: a dropped resend
        // of an already-applied real prepare is suppressed too.
        let key2 = BlockKey::new(ArrayId(0), &[4, 2]);
        let op2 = OpId(0xbeef);
        s.prepare_deduped(key2, blk(2.0), PutMode::Accumulate, op2)
            .unwrap();
        s.prepare_absent_deduped(key2, 0.1, PutMode::Accumulate, op2);
        assert_eq!(s.load(key2).unwrap(), blk(2.0));
        assert!(!s.norms.contains_key(&key2));
    }

    #[test]
    fn delete_array_clears_norm_table() {
        let dir = tmpdir("absdel");
        let mut s = sparse_server(&dir, 8);
        let key = BlockKey::new(ArrayId(0), &[1, 3]);
        s.prepare_absent(key, 0.5, PutMode::Replace);
        s.delete_array(ArrayId(0)).unwrap();
        assert!(s.norms.is_empty());
    }

    #[test]
    fn lazy_write_behind_flushes_one_at_a_time() {
        let dir = tmpdir("lazy");
        let mut s = test_server(&dir, 8);
        for i in 1..=3 {
            s.prepare(
                BlockKey::new(ArrayId(0), &[i, i]),
                blk(i as f64),
                PutMode::Replace,
            )
            .unwrap();
        }
        assert_eq!(s.stats().disk_writes, 0, "prepares are lazy");
        assert!(s.flush_one().unwrap());
        assert_eq!(s.stats().disk_writes, 1);
        assert!(s.flush_one().unwrap());
        assert!(s.flush_one().unwrap());
        assert!(!s.flush_one().unwrap(), "nothing left to flush");
    }
}
