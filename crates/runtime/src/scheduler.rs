//! Pardo iteration enumeration and guided chunk scheduling.
//!
//! The master "divides [the iterations] into 'chunks' and doles them out …
//! When a worker completes its chunk, it requests another chunk from the
//! master. The chunk size decreases as the computation proceeds" — the
//! guided-scheduling scheme of OpenMP. [`IterationSpace`] materializes the
//! filtered cross product of the pardo indices; [`GuidedScheduler`] hands out
//! shrinking chunks of it.

use crate::error::RuntimeError;
use sia_bytecode::{BoolExpr, IndexId, ScalarExpr};

/// Appends every index id a scalar expression mentions to `out`.
/// Shared by [`IterationSpace::enumerate`] and the static verifier, so both
/// reject the same set of malformed where clauses.
pub fn scalar_expr_indices(e: &ScalarExpr, out: &mut Vec<IndexId>) {
    match e {
        ScalarExpr::Lit(_) | ScalarExpr::Scalar(_) | ScalarExpr::Const(_) => {}
        ScalarExpr::IndexVal(id) => out.push(*id),
        ScalarExpr::Bin(_, l, r) => {
            scalar_expr_indices(l, out);
            scalar_expr_indices(r, out);
        }
        ScalarExpr::Neg(x) => scalar_expr_indices(x, out),
    }
}

/// Appends every index id a boolean expression mentions to `out`.
pub fn bool_expr_indices(e: &BoolExpr, out: &mut Vec<IndexId>) {
    match e {
        BoolExpr::Cmp(l, _, r) => {
            scalar_expr_indices(l, out);
            scalar_expr_indices(r, out);
        }
        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
            bool_expr_indices(a, out);
            bool_expr_indices(b, out);
        }
        BoolExpr::Not(x) => bool_expr_indices(x, out),
    }
}

/// Evaluates a scalar expression given index values and scalar/const tables.
/// Shared by the master (where-clause filtering) and workers (interpreter).
pub fn eval_scalar(
    e: &ScalarExpr,
    index_val: &dyn Fn(IndexId) -> i64,
    scalar_val: &dyn Fn(u32) -> f64,
    const_val: &dyn Fn(u32) -> i64,
) -> f64 {
    match e {
        ScalarExpr::Lit(x) => *x,
        ScalarExpr::Scalar(id) => scalar_val(id.0),
        ScalarExpr::IndexVal(id) => index_val(*id) as f64,
        ScalarExpr::Const(id) => const_val(id.0) as f64,
        ScalarExpr::Bin(op, l, r) => op.eval(
            eval_scalar(l, index_val, scalar_val, const_val),
            eval_scalar(r, index_val, scalar_val, const_val),
        ),
        ScalarExpr::Neg(x) => -eval_scalar(x, index_val, scalar_val, const_val),
    }
}

/// Evaluates a boolean expression with the same environment hooks.
pub fn eval_bool(
    e: &BoolExpr,
    index_val: &dyn Fn(IndexId) -> i64,
    scalar_val: &dyn Fn(u32) -> f64,
    const_val: &dyn Fn(u32) -> i64,
) -> bool {
    match e {
        BoolExpr::Cmp(l, op, r) => op.eval(
            eval_scalar(l, index_val, scalar_val, const_val),
            eval_scalar(r, index_val, scalar_val, const_val),
        ),
        BoolExpr::And(a, b) => {
            eval_bool(a, index_val, scalar_val, const_val)
                && eval_bool(b, index_val, scalar_val, const_val)
        }
        BoolExpr::Or(a, b) => {
            eval_bool(a, index_val, scalar_val, const_val)
                || eval_bool(b, index_val, scalar_val, const_val)
        }
        BoolExpr::Not(x) => !eval_bool(x, index_val, scalar_val, const_val),
    }
}

/// The filtered iteration space of one pardo: every combination of index
/// values (over their declared ranges) passing all where clauses, flattened
/// in row-major order (last index fastest).
#[derive(Debug, Clone)]
pub struct IterationSpace {
    /// The pardo's indices.
    pub indices: Vec<IndexId>,
    /// The surviving iterations, each a value per index.
    pub iters: Vec<Vec<i64>>,
}

impl IterationSpace {
    /// Enumerates the space. `ranges` gives the inclusive range per pardo
    /// index (parallel to `indices`); `wheres` are evaluated with the given
    /// scalar/const environments.
    ///
    /// Fails with [`RuntimeError::BadBytecode`] when a where clause mentions
    /// an index the pardo does not bind — such an index has no value here,
    /// and the old behavior of evaluating it as 0 silently mis-filtered the
    /// iteration space.
    pub fn enumerate(
        indices: &[IndexId],
        ranges: &[(i64, i64)],
        wheres: &[BoolExpr],
        scalar_val: &dyn Fn(u32) -> f64,
        const_val: &dyn Fn(u32) -> i64,
    ) -> Result<Self, RuntimeError> {
        assert_eq!(indices.len(), ranges.len());
        let mut mentioned = Vec::new();
        for w in wheres {
            bool_expr_indices(w, &mut mentioned);
        }
        if let Some(bad) = mentioned.iter().find(|id| !indices.contains(id)) {
            return Err(RuntimeError::BadBytecode(format!(
                "where clause references index #{} which the pardo does not bind",
                bad.0
            )));
        }
        let mut iters = Vec::new();
        let mut cur: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
        if indices.is_empty() {
            return Ok(IterationSpace {
                indices: indices.to_vec(),
                iters,
            });
        }
        'outer: loop {
            let index_val = |id: IndexId| -> i64 {
                let p = indices
                    .iter()
                    .position(|&x| x == id)
                    .expect("where-clause indices validated against the pardo");
                cur[p]
            };
            if wheres
                .iter()
                .all(|w| eval_bool(w, &index_val, scalar_val, const_val))
            {
                iters.push(cur.clone());
            }
            // Odometer, last index fastest.
            let mut d = indices.len();
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                cur[d] += 1;
                if cur[d] <= ranges[d].1 {
                    break;
                }
                cur[d] = ranges[d].0;
            }
        }
        Ok(IterationSpace {
            indices: indices.to_vec(),
            iters,
        })
    }

    /// Number of surviving iterations.
    pub fn len(&self) -> usize {
        self.iters.len()
    }

    /// True when no iterations survive the filters.
    pub fn is_empty(&self) -> bool {
        self.iters.is_empty()
    }
}

/// How the master sizes pardo chunks.
///
/// The SIP uses guided scheduling ("the chunk size decreases as the
/// computation proceeds. This is similar to … guided scheduling in
/// OpenMP"). The alternative policies exist for the ablation harness
/// (`cargo run -p sia-bench --bin ablations`): fixed-size chunking shows
/// the tail-imbalance guided avoids, and single-task chunking shows the
/// master-traffic cost of maximal balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// `chunk = max(remaining / (factor·workers), 1)` — the SIP default.
    Guided {
        /// The divisor factor (2 in the original).
        factor: usize,
    },
    /// Every chunk has the same size.
    Fixed {
        /// Tasks per chunk.
        size: u64,
    },
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy::Guided { factor: 2 }
    }
}

/// Chunk scheduler over a number of tasks, parameterized by [`ChunkPolicy`].
#[derive(Debug)]
pub struct GuidedScheduler {
    total: u64,
    next: u64,
    workers: usize,
    policy: ChunkPolicy,
}

impl GuidedScheduler {
    /// Creates a guided scheduler over `total` tasks for `workers` workers
    /// (the SIP default policy).
    pub fn new(total: u64, workers: usize, factor: usize) -> Self {
        Self::with_policy(
            total,
            workers,
            ChunkPolicy::Guided {
                factor: factor.max(1),
            },
        )
    }

    /// Creates a scheduler with an explicit policy.
    pub fn with_policy(total: u64, workers: usize, policy: ChunkPolicy) -> Self {
        GuidedScheduler {
            total,
            next: 0,
            workers: workers.max(1),
            policy,
        }
    }

    /// The next chunk as a range of flattened task ids, or `None` when the
    /// space is exhausted.
    pub fn next_chunk(&mut self) -> Option<std::ops::Range<u64>> {
        self.next_chunk_scaled(1.0)
    }

    /// Like [`GuidedScheduler::next_chunk`], but the policy's chunk size is
    /// multiplied by `scale` (clamped to (0, 1]) before clamping to at
    /// least one task. Fair-share serving uses fractional scales to slow a
    /// job that is ahead of its peers without ever starving it.
    pub fn next_chunk_scaled(&mut self, scale: f64) -> Option<std::ops::Range<u64>> {
        if self.next >= self.total {
            return None;
        }
        let remaining = self.total - self.next;
        let size = match self.policy {
            ChunkPolicy::Guided { factor } => {
                (remaining / (factor.max(1) as u64 * self.workers as u64)).max(1)
            }
            ChunkPolicy::Fixed { size } => size.max(1),
        };
        let scale = if scale.is_finite() {
            scale.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let size = ((size as f64 * scale).round() as u64).max(1);
        let start = self.next;
        self.next += size.min(remaining);
        Some(start..self.next)
    }

    /// Remaining unassigned tasks.
    pub fn remaining(&self) -> u64 {
        self.total - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_bytecode::{CmpOp, ScalarExpr as SE};

    fn no_scalars(_: u32) -> f64 {
        0.0
    }
    fn no_consts(_: u32) -> i64 {
        0
    }

    #[test]
    fn full_cross_product() {
        let sp = IterationSpace::enumerate(
            &[IndexId(0), IndexId(1)],
            &[(1, 3), (1, 2)],
            &[],
            &no_scalars,
            &no_consts,
        )
        .unwrap();
        assert_eq!(sp.len(), 6);
        assert_eq!(sp.iters[0], vec![1, 1]);
        assert_eq!(sp.iters[1], vec![1, 2]); // last index fastest
        assert_eq!(sp.iters[5], vec![3, 2]);
    }

    #[test]
    fn where_filters_triangle() {
        // where i < j over 1..4 x 1..4 → 6 iterations.
        let w = BoolExpr::Cmp(
            SE::IndexVal(IndexId(0)),
            CmpOp::Lt,
            SE::IndexVal(IndexId(1)),
        );
        let sp = IterationSpace::enumerate(
            &[IndexId(0), IndexId(1)],
            &[(1, 4), (1, 4)],
            &[w],
            &no_scalars,
            &no_consts,
        )
        .unwrap();
        assert_eq!(sp.len(), 6);
        assert!(sp.iters.iter().all(|v| v[0] < v[1]));
    }

    #[test]
    fn where_matches_brute_force() {
        // Conjunction of two clauses equals filtering the cross product.
        let w1 = BoolExpr::Cmp(
            SE::IndexVal(IndexId(0)),
            CmpOp::Le,
            SE::IndexVal(IndexId(1)),
        );
        let w2 = BoolExpr::Cmp(
            SE::Bin(
                sia_bytecode::BinOp::Add,
                Box::new(SE::IndexVal(IndexId(0))),
                Box::new(SE::IndexVal(IndexId(1))),
            ),
            CmpOp::Ne,
            SE::Lit(4.0),
        );
        let sp = IterationSpace::enumerate(
            &[IndexId(0), IndexId(1)],
            &[(1, 5), (2, 4)],
            &[w1.clone(), w2.clone()],
            &no_scalars,
            &no_consts,
        )
        .unwrap();
        let mut expect = 0;
        for i in 1..=5i64 {
            for j in 2..=4i64 {
                if i <= j && i + j != 4 {
                    expect += 1;
                }
            }
        }
        assert_eq!(sp.len(), expect);
    }

    #[test]
    fn empty_where_space() {
        let w = BoolExpr::Cmp(SE::IndexVal(IndexId(0)), CmpOp::Gt, SE::Lit(100.0));
        let sp = IterationSpace::enumerate(&[IndexId(0)], &[(1, 5)], &[w], &no_scalars, &no_consts)
            .unwrap();
        assert!(sp.is_empty());
    }

    #[test]
    fn where_on_unbound_index_is_bad_bytecode() {
        // The clause mentions IndexId(7), which the pardo does not bind.
        // The old behavior evaluated it as 0 and silently mis-filtered the
        // space; now enumeration refuses the bytecode outright.
        let w = BoolExpr::Cmp(
            SE::IndexVal(IndexId(7)),
            CmpOp::Lt,
            SE::IndexVal(IndexId(0)),
        );
        let err =
            IterationSpace::enumerate(&[IndexId(0)], &[(1, 5)], &[w], &no_scalars, &no_consts)
                .unwrap_err();
        match err {
            crate::error::RuntimeError::BadBytecode(m) => {
                assert!(m.contains("#7"), "{m}");
            }
            other => panic!("expected BadBytecode, got {other:?}"),
        }
    }

    #[test]
    fn guided_chunks_partition_exactly() {
        let mut s = GuidedScheduler::new(100, 4, 2);
        let mut seen = [false; 100];
        let mut sizes = Vec::new();
        while let Some(r) = s.next_chunk() {
            sizes.push(r.end - r.start);
            for i in r {
                assert!(!seen[i as usize], "task {i} assigned twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "all tasks assigned");
        // Guided: sizes non-increasing, first chunk is remaining/(f*w) = 12.
        assert_eq!(sizes[0], 12);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "sizes must not increase: {sizes:?}");
        }
        assert_eq!(*sizes.last().unwrap(), 1);
    }

    #[test]
    fn fixed_policy_uniform_chunks() {
        let mut s = GuidedScheduler::with_policy(100, 4, ChunkPolicy::Fixed { size: 7 });
        let mut sizes = Vec::new();
        let mut next = 0;
        while let Some(r) = s.next_chunk() {
            assert_eq!(r.start, next);
            next = r.end;
            sizes.push(r.end - r.start);
        }
        assert_eq!(next, 100);
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 7));
        assert_eq!(*sizes.last().unwrap(), 100 % 7);
    }

    #[test]
    fn fixed_policy_size_zero_clamped() {
        let mut s = GuidedScheduler::with_policy(5, 4, ChunkPolicy::Fixed { size: 0 });
        let mut count = 0;
        while s.next_chunk().is_some() {
            count += 1;
        }
        assert_eq!(count, 5, "size 0 clamps to 1");
    }

    #[test]
    fn guided_handles_tiny_spaces() {
        let mut s = GuidedScheduler::new(1, 8, 2);
        assert_eq!(s.next_chunk(), Some(0..1));
        assert_eq!(s.next_chunk(), None);
        let mut s = GuidedScheduler::new(0, 8, 2);
        assert_eq!(s.next_chunk(), None);
    }

    #[test]
    fn eval_scalar_all_forms() {
        let e = SE::Bin(
            sia_bytecode::BinOp::Mul,
            Box::new(SE::Neg(Box::new(SE::Lit(2.0)))),
            Box::new(SE::Bin(
                sia_bytecode::BinOp::Add,
                Box::new(SE::IndexVal(IndexId(0))),
                Box::new(SE::Const(sia_bytecode::ConstId(0))),
            )),
        );
        let v = eval_scalar(&e, &|_| 3, &no_scalars, &|_| 4);
        assert_eq!(v, -14.0);
    }

    #[test]
    fn eval_bool_connectives() {
        let t = BoolExpr::Cmp(SE::Lit(1.0), CmpOp::Lt, SE::Lit(2.0));
        let f = BoolExpr::Cmp(SE::Lit(1.0), CmpOp::Gt, SE::Lit(2.0));
        let and = BoolExpr::And(Box::new(t.clone()), Box::new(f.clone()));
        let or = BoolExpr::Or(Box::new(t.clone()), Box::new(f.clone()));
        let not = BoolExpr::Not(Box::new(f.clone()));
        assert!(!eval_bool(&and, &|_| 0, &no_scalars, &no_consts));
        assert!(eval_bool(&or, &|_| 0, &no_scalars, &no_consts));
        assert!(eval_bool(&not, &|_| 0, &no_scalars, &no_consts));
    }
}
