//! Worker state and the asynchronous progress engine.
//!
//! Each worker "loops through the instruction table executing bytecode
//! instructions, periodically checking for messages and processing them"
//! (§V-B). This module holds the worker's stores (home blocks, cache,
//! temps, locals), its pardo machinery, outstanding-ack tracking, and the
//! message pump; the instruction dispatch lives in [`crate::interp`].

use crate::cache::{BlockCache, CacheEntry};
use crate::error::RuntimeError;
use crate::layout::{Layout, SipConfig};
use crate::msg::{BarrierKind, BlockKey, SipMsg};
use crate::profile::WorkerProfile;
use crate::registry::SuperRegistry;
use sia_blocks::Block;
use sia_blocks::{BlockPool, ContractCtx, GemmConfig, PoolConfig};
use sia_bytecode::{ArrayId, ArrayKind, IndexId, PutMode};
use sia_fabric::{Endpoint, Rank};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An active sequential loop.
#[derive(Debug, Clone)]
pub(crate) struct LoopFrame {
    /// Pc of the `DoStart`/`DoInStart`.
    pub start_pc: u32,
    /// The loop index.
    pub index: IndexId,
    /// Current value.
    pub current: i64,
    /// Inclusive upper bound.
    pub high: i64,
}

/// The in-progress pardo of a worker.
#[derive(Debug)]
pub(crate) struct PardoState {
    pub start_pc: u32,
    /// Which encounter of this pardo this is (increments every time the
    /// worker reaches the PardoStart).
    pub epoch: u64,
    pub end_pc: u32,
    pub indices: Vec<IndexId>,
    /// Assigned iterations not yet executed.
    pub queue: VecDeque<Vec<i64>>,
    /// A ChunkRequest is outstanding.
    pub requested: bool,
    /// Master said the space is exhausted.
    pub exhausted: bool,
}

/// One SIP worker.
pub struct Worker {
    pub(crate) layout: Arc<Layout>,
    pub(crate) config: SipConfig,
    pub(crate) endpoint: Endpoint<SipMsg>,
    pub(crate) registry: SuperRegistry,

    // ---- data state ----
    /// Blocks of distributed arrays homed at this worker (authoritative).
    pub(crate) dist_store: HashMap<BlockKey, Block>,
    /// Blocks of local and static arrays.
    pub(crate) local_store: HashMap<BlockKey, Block>,
    /// One live block per temp array.
    pub(crate) temps: HashMap<ArrayId, (BlockKey, Block)>,
    /// Cache of fetched remote (distributed/served) blocks.
    pub(crate) cache: BlockCache,
    /// Pool recycling temp-block storage.
    pub(crate) pool: BlockPool,
    /// Contraction context: scratch drawn from `pool`, GEMM tuning and
    /// transpose-folding policy from the run config, plus hot-path counters
    /// that land in the profile.
    pub(crate) contract_ctx: ContractCtx,
    /// Named scalar values.
    pub(crate) scalars: Vec<f64>,
    /// Current index values (0 = undefined; segments are 1-based).
    pub(crate) env: Vec<i64>,

    // ---- control state ----
    pub(crate) loop_stack: Vec<LoopFrame>,
    pub(crate) call_stack: Vec<u32>,
    pub(crate) pardo: Option<PardoState>,
    /// Encounter counters per pardo pc.
    pub(crate) pardo_epochs: HashMap<u32, u64>,

    // ---- communication state ----
    pub(crate) outstanding_puts: u64,
    pub(crate) outstanding_prepares: u64,
    pub(crate) barrier_release: Option<BarrierKind>,
    pub(crate) reduce_result: Option<f64>,
    pub(crate) ckpt_released: HashSet<u32>,
    pub(crate) shutdown_seen: bool,

    // ---- conflict detection ----
    /// Barrier epoch for distributed arrays.
    pub(crate) dist_epoch: u64,
    /// Last epoch a Replace-put landed per block (home side).
    pub(crate) replace_epoch: HashMap<BlockKey, u64>,
    /// Last epoch a get was served per block (home side).
    pub(crate) serve_epoch: HashMap<BlockKey, u64>,

    // ---- reporting ----
    pub(crate) profile: WorkerProfile,
    pub(crate) warnings: Vec<String>,
    /// Worker start time (backs the `sip_time` intrinsic).
    pub(crate) started: Instant,
}

impl Worker {
    /// Creates a worker bound to its fabric endpoint.
    pub fn new(
        layout: Arc<Layout>,
        config: SipConfig,
        endpoint: Endpoint<SipMsg>,
        registry: SuperRegistry,
    ) -> Self {
        let n_idx = layout.program.indices.len();
        let scalars = layout.program.scalars.iter().map(|s| s.init).collect();
        let pool = BlockPool::new(PoolConfig {
            max_bytes: config.pool_bytes,
        });
        Worker {
            cache: BlockCache::new(config.cache_blocks),
            contract_ctx: ContractCtx::with_pool(pool.clone())
                .gemm(GemmConfig {
                    threads: config.gemm_threads,
                })
                .fold_transposes(config.fold_transposes),
            pool,
            layout,
            config,
            endpoint,
            registry,
            dist_store: HashMap::new(),
            local_store: HashMap::new(),
            temps: HashMap::new(),
            scalars,
            env: vec![0; n_idx],
            loop_stack: Vec::new(),
            call_stack: Vec::new(),
            pardo: None,
            pardo_epochs: HashMap::new(),
            outstanding_puts: 0,
            outstanding_prepares: 0,
            barrier_release: None,
            reduce_result: None,
            ckpt_released: HashSet::new(),
            shutdown_seen: false,
            dist_epoch: 0,
            replace_epoch: HashMap::new(),
            serve_epoch: HashMap::new(),
            profile: WorkerProfile::default(),
            warnings: Vec::new(),
            started: Instant::now(),
        }
    }

    /// This worker's 0-based index.
    pub fn worker_index(&self) -> usize {
        self.layout.topology.worker_index(self.endpoint.rank())
    }

    // ---- message pump ---------------------------------------------------------

    /// Drains the inbox, handling every pending message.
    pub(crate) fn service_messages(&mut self) {
        while let Some(env) = self.endpoint.try_recv() {
            self.handle(env.src, env.msg);
        }
    }

    /// Keeps serving peers (gets/puts against blocks homed here) after this
    /// worker's program finished, until the master broadcasts shutdown.
    pub(crate) fn service_until_shutdown(&mut self) {
        loop {
            if self.shutdown_seen || self.endpoint.shutdown_raised() {
                return;
            }
            if let Some(env) = self.endpoint.recv_timeout(Duration::from_millis(1)) {
                let src = env.src;
                self.handle(src, env.msg);
            }
        }
    }

    fn handle(&mut self, src: Rank, msg: SipMsg) {
        match msg {
            SipMsg::GetBlock { key } => {
                // Serve from the authoritative store; unfilled blocks read as
                // zero ("blocks are allocated … only when actually filled"),
                // which is what makes symmetric-array declarations cheap.
                let data = match self.dist_store.get(&key) {
                    Some(b) => b.clone(),
                    None => Block::zeros(self.layout.declared_block_shape(key.array)),
                };
                // Conflict check: serving a block Replace-put in this same
                // epoch means the program raced a read against a write.
                if self.replace_epoch.get(&key) == Some(&self.dist_epoch) {
                    self.warnings.push(format!(
                        "possible barrier misuse: block {key:?} read and replaced in the \
                         same sip_barrier epoch"
                    ));
                }
                self.serve_epoch.insert(key, self.dist_epoch);
                let _ = self.endpoint.send(src, SipMsg::BlockData { key, data });
            }
            SipMsg::PutBlock { key, data, mode } => {
                self.apply_put_local(key, data, mode);
                let _ = self.endpoint.send(src, SipMsg::PutAck { key });
            }
            SipMsg::PutAck { .. } => {
                self.outstanding_puts = self.outstanding_puts.saturating_sub(1);
            }
            SipMsg::PrepareAck { .. } => {
                self.outstanding_prepares = self.outstanding_prepares.saturating_sub(1);
            }
            SipMsg::BlockData { key, data } => {
                self.cache.fill(key, data);
            }
            SipMsg::ChunkAssign {
                pardo_pc,
                epoch,
                iters,
            } => {
                if let Some(p) = &mut self.pardo {
                    if p.start_pc == pardo_pc && p.epoch == epoch {
                        p.queue.extend(iters);
                        p.requested = false;
                    }
                }
            }
            SipMsg::NoMoreChunks { pardo_pc, epoch } => {
                if let Some(p) = &mut self.pardo {
                    if p.start_pc == pardo_pc && p.epoch == epoch {
                        p.exhausted = true;
                        p.requested = false;
                    }
                }
            }
            SipMsg::BarrierRelease { kind } => {
                self.barrier_release = Some(kind);
            }
            SipMsg::ReduceResult { value } => {
                self.reduce_result = Some(value);
            }
            SipMsg::CkptRelease { label } => {
                self.ckpt_released.insert(label);
            }
            SipMsg::DeleteArray { array } => {
                self.dist_store.retain(|k, _| k.array != array);
                self.cache.invalidate_array(array);
            }
            SipMsg::Shutdown => {
                self.shutdown_seen = true;
            }
            // Messages a worker never receives.
            SipMsg::ChunkRequest { .. }
            | SipMsg::RequestBlock { .. }
            | SipMsg::PrepareBlock { .. }
            | SipMsg::BarrierEnter { .. }
            | SipMsg::ReduceContrib { .. }
            | SipMsg::CkptBlock { .. }
            | SipMsg::CkptDone { .. }
            | SipMsg::WorkerDone { .. }
            | SipMsg::WorkerFailed { .. } => {
                self.warnings
                    .push(format!("worker received unexpected message from {src}"));
            }
        }
    }

    /// Applies a put to the authoritative store (used by the home for remote
    /// puts and by the owner for local ones).
    pub(crate) fn apply_put_local(&mut self, key: BlockKey, data: Block, mode: PutMode) {
        match mode {
            PutMode::Replace => {
                if self.serve_epoch.get(&key) == Some(&self.dist_epoch) {
                    self.warnings.push(format!(
                        "possible barrier misuse: block {key:?} replaced after being read \
                         in the same sip_barrier epoch"
                    ));
                }
                self.replace_epoch.insert(key, self.dist_epoch);
                self.dist_store.insert(key, data);
            }
            PutMode::Accumulate => match self.dist_store.get_mut(&key) {
                Some(existing) => existing.accumulate(&data),
                None => {
                    self.dist_store.insert(key, data);
                }
            },
        }
        // A fresher value exists; drop any stale cached copy.
        self.cache.invalidate(&key);
    }

    /// Waits (servicing messages) until `done(self)` holds. Returns the time
    /// spent waiting. Aborts with an error if shutdown is raised mid-wait.
    pub(crate) fn wait_until(
        &mut self,
        what: &str,
        mut done: impl FnMut(&Self) -> bool,
    ) -> Result<Duration, RuntimeError> {
        let t0 = Instant::now();
        loop {
            self.service_messages();
            if done(self) {
                return Ok(t0.elapsed());
            }
            if self.shutdown_seen || self.endpoint.shutdown_raised() {
                return Err(RuntimeError::PeerGone(format!(
                    "run aborted while waiting for {what}"
                )));
            }
            // Block briefly on the inbox rather than spinning.
            if let Some(env) = self.endpoint.recv_timeout(Duration::from_micros(200)) {
                let src = env.src;
                self.handle(src, env.msg);
            }
        }
    }

    // ---- index environment -------------------------------------------------------

    pub(crate) fn index_value(&self, id: IndexId) -> i64 {
        self.env[id.index()]
    }

    pub(crate) fn set_index(&mut self, id: IndexId, v: i64) {
        self.env[id.index()] = v;
    }

    /// Values of a ref's indices (errors if any is unbound — sema prevents,
    /// but corrupted bytecode shouldn't panic).
    pub(crate) fn seg_values(&self, indices: &[IndexId]) -> Result<Vec<i64>, RuntimeError> {
        indices
            .iter()
            .map(|&i| {
                let v = self.index_value(i);
                if v == 0 {
                    Err(RuntimeError::BadProgram(format!(
                        "index `{}` used while undefined",
                        self.layout.program.indices[i.index()].name
                    )))
                } else {
                    Ok(v)
                }
            })
            .collect()
    }

    // ---- block access ---------------------------------------------------------------

    /// Issues the asynchronous fetch behind `get`/`request` (no-op when the
    /// block is local or already cached/in flight). Returns whether a message
    /// was actually sent.
    pub(crate) fn issue_fetch(&mut self, key: BlockKey) -> Result<bool, RuntimeError> {
        let kind = self.layout.array_kind(key.array);
        let home = match kind {
            ArrayKind::Distributed => self.layout.topology.home_of_distributed(&key),
            ArrayKind::Served => {
                if self.layout.topology.io_servers == 0 {
                    return Err(RuntimeError::ServedIo(
                        "program uses served arrays but io_servers = 0".into(),
                    ));
                }
                self.layout.topology.home_of_served(&key)
            }
            other => {
                return Err(RuntimeError::BadProgram(format!(
                    "get/request on {other:?} array"
                )));
            }
        };
        if home == self.endpoint.rank() {
            return Ok(false); // read directly from dist_store at use time
        }
        if !self.cache.mark_in_flight(key) {
            return Ok(false); // already cached or in flight
        }
        let msg = match kind {
            ArrayKind::Distributed => SipMsg::GetBlock { key },
            _ => SipMsg::RequestBlock { key },
        };
        self.endpoint
            .send(home, msg)
            .map_err(|e| RuntimeError::PeerGone(e.to_string()))?;
        Ok(true)
    }

    /// Reads the block a ref denotes, waiting for in-flight fetches. Returns
    /// an owned copy (see crate docs: correctness over zero-copy).
    ///
    /// `wait` accumulates blocked time for the profiler.
    pub(crate) fn read_block(
        &mut self,
        array: ArrayId,
        ref_indices: &[IndexId],
        wait: &mut Duration,
    ) -> Result<Block, RuntimeError> {
        let segs = self.seg_values(ref_indices)?;
        let (key, slice) = self.layout.storage_target(array, ref_indices, &segs);
        let kind = self.layout.array_kind(array);
        let whole = match kind {
            ArrayKind::Temp => match self.temps.get(&array) {
                Some((stored_key, block)) if *stored_key == key => block.clone(),
                _ => {
                    return Err(RuntimeError::TempUndefined {
                        array: self.layout.array(array).name.clone(),
                    });
                }
            },
            ArrayKind::Local | ArrayKind::Static => match self.local_store.get(&key) {
                Some(b) => b.clone(),
                None => {
                    return Err(RuntimeError::BlockNotAvailable {
                        key,
                        context: format!(
                            "local/static block of `{}` never written",
                            self.layout.array(array).name
                        ),
                    });
                }
            },
            ArrayKind::Distributed | ArrayKind::Served => self.read_remote(key, wait)?,
        };
        match slice {
            None => Ok(whole),
            Some((offsets, extents)) => {
                let spec = sia_blocks::SliceSpec::new(&offsets, &extents);
                sia_blocks::extract_slice(&whole, &spec)
                    .map_err(|e| RuntimeError::Internal(format!("slice extraction failed: {e}")))
            }
        }
    }

    /// Reads a distributed/served block: own store, then cache, then fetch
    /// (a well-tuned program issued `get` earlier, so the fetch overlapped
    /// computation; the wait here is what the profiler reports).
    fn read_remote(&mut self, key: BlockKey, wait: &mut Duration) -> Result<Block, RuntimeError> {
        let kind = self.layout.array_kind(key.array);
        if kind == ArrayKind::Distributed
            && self.layout.topology.home_of_distributed(&key) == self.endpoint.rank()
        {
            return Ok(match self.dist_store.get(&key) {
                Some(b) => b.clone(),
                None => Block::zeros(self.layout.declared_block_shape(key.array)),
            });
        }
        match self.cache.lookup(&key) {
            Some(CacheEntry::Ready(b)) => return Ok(b.clone()),
            Some(CacheEntry::InFlight) => {}
            None => {
                // Late fetch — the contraction operator "ensures that the
                // necessary blocks are available and waits … if necessary".
                self.issue_fetch(key)?;
            }
        }
        let waited = self.wait_until(&format!("block {key:?}"), |w| {
            matches!(w.cache.peek(&key), Some(CacheEntry::Ready(_)))
        })?;
        *wait += waited;
        match self.cache.lookup(&key) {
            Some(CacheEntry::Ready(b)) => Ok(b.clone()),
            _ => Err(RuntimeError::Internal("block vanished after wait".into())),
        }
    }

    /// Writes `block` to the storage a ref denotes (temp/local/static only;
    /// distributed/served writes go through put/prepare).
    pub(crate) fn write_block(
        &mut self,
        array: ArrayId,
        ref_indices: &[IndexId],
        block: Block,
    ) -> Result<(), RuntimeError> {
        let segs = self.seg_values(ref_indices)?;
        let (key, slice) = self.layout.storage_target(array, ref_indices, &segs);
        let kind = self.layout.array_kind(array);
        match slice {
            None => match kind {
                ArrayKind::Temp => {
                    if let Some((_, old)) = self.temps.insert(array, (key, block)) {
                        self.pool.release(old);
                    }
                    Ok(())
                }
                ArrayKind::Local | ArrayKind::Static => {
                    self.local_store.insert(key, block);
                    Ok(())
                }
                other => Err(RuntimeError::BadProgram(format!(
                    "direct write to {other:?} array"
                ))),
            },
            Some((offsets, extents)) => {
                // Insertion: write the subblock into the (existing or fresh)
                // parent block.
                let spec = sia_blocks::SliceSpec::new(&offsets, &extents);
                let parent_shape = self.layout.declared_block_shape(array);
                match kind {
                    ArrayKind::Temp => {
                        let entry = self
                            .temps
                            .entry(array)
                            .or_insert_with(|| (key, Block::zeros(parent_shape)));
                        if entry.0 != key {
                            *entry = (key, Block::zeros(parent_shape));
                        }
                        sia_blocks::insert_slice(&mut entry.1, &spec, &block)
                            .map_err(|e| RuntimeError::Internal(format!("insert failed: {e}")))
                    }
                    ArrayKind::Local | ArrayKind::Static => {
                        let parent = self
                            .local_store
                            .entry(key)
                            .or_insert_with(|| Block::zeros(parent_shape));
                        sia_blocks::insert_slice(parent, &spec, &block)
                            .map_err(|e| RuntimeError::Internal(format!("insert failed: {e}")))
                    }
                    other => Err(RuntimeError::BadProgram(format!(
                        "direct write to {other:?} array"
                    ))),
                }
            }
        }
    }

    /// Mutates a writable block in place (for `+=`, `*=` on temps/locals).
    pub(crate) fn modify_block(
        &mut self,
        array: ArrayId,
        ref_indices: &[IndexId],
        f: impl FnOnce(&mut Block),
    ) -> Result<(), RuntimeError> {
        let segs = self.seg_values(ref_indices)?;
        let (key, slice) = self.layout.storage_target(array, ref_indices, &segs);
        if slice.is_some() {
            // Read-modify-write through the slice path.
            let mut wait = Duration::ZERO;
            let mut sub = self.read_block(array, ref_indices, &mut wait)?;
            f(&mut sub);
            return self.write_block(array, ref_indices, sub);
        }
        match self.layout.array_kind(array) {
            ArrayKind::Temp => match self.temps.get_mut(&array) {
                Some((stored_key, block)) if *stored_key == key => {
                    f(block);
                    Ok(())
                }
                _ => Err(RuntimeError::TempUndefined {
                    array: self.layout.array(array).name.clone(),
                }),
            },
            ArrayKind::Local | ArrayKind::Static => match self.local_store.get_mut(&key) {
                Some(block) => {
                    f(block);
                    Ok(())
                }
                None => Err(RuntimeError::BlockNotAvailable {
                    key,
                    context: "in-place update of unwritten local/static block".into(),
                }),
            },
            other => Err(RuntimeError::BadProgram(format!(
                "in-place update of {other:?} array"
            ))),
        }
    }

    /// Frees all temp blocks (end of a pardo iteration) back to the pool.
    pub(crate) fn free_temps(&mut self) {
        for (_, (_, block)) in self.temps.drain() {
            self.pool.release(block);
        }
    }

    /// Invalidate cached copies of every array of `kind` (stale after a
    /// barrier).
    pub(crate) fn invalidate_cached_kind(&mut self, kind: ArrayKind) {
        for (i, decl) in self.layout.program.arrays.iter().enumerate() {
            if decl.kind == kind {
                self.cache.invalidate_array(ArrayId(i as u32));
            }
        }
    }
}
