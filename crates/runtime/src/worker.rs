//! Worker state and the asynchronous progress engine.
//!
//! Each worker "loops through the instruction table executing bytecode
//! instructions, periodically checking for messages and processing them"
//! (§V-B). This module holds the worker's stores (home blocks, cache,
//! temps, locals), its pardo machinery, outstanding-ack tracking, and the
//! message pump; the instruction dispatch lives in [`crate::interp`].

use crate::cache::{BlockGet, CacheEntry};
use crate::error::{CommKind, RuntimeError};
use crate::events::{CommOp, EventKind, RecoveryEvent, TraceSink};
use crate::ft::{self, FetchState, FtState, JournalEntry, TakeoverChunk};
use crate::layout::{Layout, Placement, SipConfig};
use crate::memory::BlockManager;
use crate::metrics::WaitCause;
use crate::msg::{BarrierKind, BlockKey, OpId, SipMsg};
use crate::plan::CommPlan;
use crate::profile::WorkerProfile;
use crate::registry::SuperRegistry;
use sia_blocks::{Block, BlockHandle};
use sia_blocks::{BlockPool, ContractCtx, GemmConfig, PoolConfig};
use sia_bytecode::{ArrayId, ArrayKind, IndexId, PutMode};
use sia_fabric::{Endpoint, Rank, ReqId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a block access treats a non-resident block: issue the fetch and
/// return immediately (`get`/`request`/prefetch), or block until the data
/// is resident (operand reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fetch {
    NoWait,
    Wait,
}

/// An active sequential loop.
#[derive(Debug, Clone)]
pub(crate) struct LoopFrame {
    /// Pc of the `DoStart`/`DoInStart`.
    pub start_pc: u32,
    /// The loop index.
    pub index: IndexId,
    /// Current value.
    pub current: i64,
    /// Inclusive upper bound.
    pub high: i64,
}

/// The in-progress pardo of a worker.
#[derive(Debug)]
pub(crate) struct PardoState {
    pub start_pc: u32,
    /// Which encounter of this pardo this is (increments every time the
    /// worker reaches the PardoStart).
    pub epoch: u64,
    pub end_pc: u32,
    pub indices: Vec<IndexId>,
    /// Assigned iterations not yet executed.
    pub queue: VecDeque<Vec<i64>>,
    /// A ChunkRequest is outstanding.
    pub requested: bool,
    /// Master said the space is exhausted.
    pub exhausted: bool,
}

/// One SIP worker.
pub struct Worker {
    pub(crate) layout: Arc<Layout>,
    pub(crate) config: SipConfig,
    pub(crate) endpoint: Endpoint<SipMsg>,
    pub(crate) registry: SuperRegistry,

    // ---- data state ----
    /// The unified block store: authoritative home blocks of distributed
    /// arrays, local/static blocks, and the byte-LRU cache of fetched
    /// remote copies — byte-accounted, budget-enforced.
    pub(crate) mem: BlockManager,
    /// One live block per temp array.
    pub(crate) temps: HashMap<ArrayId, (BlockKey, BlockHandle)>,
    /// Pool recycling temp-block storage.
    pub(crate) pool: BlockPool,
    /// Contraction context: scratch drawn from `pool`, GEMM tuning and
    /// transpose-folding policy from the run config, plus hot-path counters
    /// that land in the profile.
    pub(crate) contract_ctx: ContractCtx,
    /// Named scalar values.
    pub(crate) scalars: Vec<f64>,
    /// Current index values (0 = undefined; segments are 1-based).
    pub(crate) env: Vec<i64>,

    // ---- control state ----
    pub(crate) loop_stack: Vec<LoopFrame>,
    pub(crate) call_stack: Vec<u32>,
    pub(crate) pardo: Option<PardoState>,
    /// Encounter counters per pardo pc.
    pub(crate) pardo_epochs: HashMap<u32, u64>,

    // ---- communication state ----
    pub(crate) outstanding_puts: u64,
    pub(crate) outstanding_prepares: u64,
    pub(crate) barrier_release: Option<BarrierKind>,
    pub(crate) reduce_result: Option<f64>,
    pub(crate) ckpt_released: HashSet<u32>,
    pub(crate) shutdown_seen: bool,

    // ---- fault tolerance ----
    /// Fault-tolerance state (`None` on fault-free runs — every hot path
    /// then keeps its original counter-based ack tracking).
    pub(crate) ft: Option<Box<FtState>>,
    /// Resolved run directory for epoch checkpoints (set by the runtime on
    /// fault-tolerant runs).
    pub(crate) run_dir: Option<PathBuf>,
    /// Total pardo iterations executed (drives the deterministic crash
    /// schedule).
    pub(crate) pardo_iters_done: u64,
    /// Per-iteration op-id sequence (reset when an iteration binds, so a
    /// re-executed iteration reproduces its op ids).
    pub(crate) op_seq: u64,

    // ---- conflict detection ----
    /// Barrier epoch for distributed arrays.
    pub(crate) dist_epoch: u64,
    /// Last epoch a Replace-put landed per block (home side).
    pub(crate) replace_epoch: HashMap<BlockKey, u64>,
    /// Last epoch a get was served per block (home side).
    pub(crate) serve_epoch: HashMap<BlockKey, u64>,

    // ---- reporting ----
    pub(crate) profile: WorkerProfile,
    pub(crate) warnings: Vec<String>,
    /// Worker start time (backs the `sip_time` intrinsic).
    pub(crate) started: Instant,

    // ---- communication plan ----
    /// The derived communication plan (an empty default unless the runtime
    /// installs one before the program starts). Drives the pardo-entry
    /// multicast push under planned placement.
    pub(crate) plan: Arc<CommPlan>,
    /// Multicast forwards staged on the endpoint but not yet flushed (set
    /// while draining a batch so consecutive forwards coalesce).
    pub(crate) staged_forwards: bool,

    // ---- observability ----
    /// Event recorder (disabled — and allocation-free — unless the runtime
    /// installs an enabled sink before the program starts).
    pub(crate) trace: TraceSink,
    /// Issue time and request id of each in-flight GET/REQUEST, keyed by
    /// block. Always on: it backs the comm-overlap metric, at one map
    /// insert/remove per remote fetch.
    pub(crate) flights: HashMap<BlockKey, (Instant, u64)>,
    /// Issue times of tracked PUT/PREPARE flights by op id. Populated only
    /// while tracing, so it stays empty (and unallocated) otherwise.
    pub(crate) put_flights: HashMap<u64, Instant>,
}

impl Worker {
    /// Creates a worker bound to its fabric endpoint.
    pub fn new(
        layout: Arc<Layout>,
        config: SipConfig,
        endpoint: Endpoint<SipMsg>,
        registry: SuperRegistry,
    ) -> Self {
        let n_idx = layout.program.indices.len();
        let scalars = layout.program.scalars.iter().map(|s| s.init).collect();
        let pool = BlockPool::new(PoolConfig {
            max_bytes: config.pool_bytes,
        });
        let ft = config
            .fault
            .as_ref()
            .map(|f| Box::new(FtState::new(f.clone(), config.workers)));
        let run_dir = config.run_dir.clone();
        // Cache capacity in bytes, matching the dry run's sizing formula
        // (`cache_blocks × largest remote block`).
        let cache_bytes = (config.cache_blocks as u64 * layout.largest_remote_block_bytes()).max(1);
        Worker {
            mem: BlockManager::new(cache_bytes, config.memory_budget),
            contract_ctx: ContractCtx::with_pool(pool.clone())
                .gemm(GemmConfig::with_threads(config.gemm_threads))
                .fold_transposes(config.fold_transposes),
            pool,
            layout,
            config,
            endpoint,
            registry,
            temps: HashMap::new(),
            scalars,
            env: vec![0; n_idx],
            loop_stack: Vec::new(),
            call_stack: Vec::new(),
            pardo: None,
            pardo_epochs: HashMap::new(),
            outstanding_puts: 0,
            outstanding_prepares: 0,
            barrier_release: None,
            reduce_result: None,
            ckpt_released: HashSet::new(),
            shutdown_seen: false,
            ft,
            run_dir,
            pardo_iters_done: 0,
            op_seq: 0,
            dist_epoch: 0,
            replace_epoch: HashMap::new(),
            serve_epoch: HashMap::new(),
            profile: WorkerProfile::default(),
            warnings: Vec::new(),
            started: Instant::now(),
            plan: Arc::new(CommPlan::default()),
            staged_forwards: false,
            trace: TraceSink::disabled(),
            flights: HashMap::new(),
            put_flights: HashMap::new(),
        }
    }

    /// Installs the event sink (called by the runtime before the program
    /// starts) and, when it is live, turns on the cache's evict log.
    pub(crate) fn set_trace(&mut self, sink: TraceSink) {
        if sink.is_on() {
            self.mem.enable_evict_log();
        }
        self.trace = sink;
    }

    /// Installs the communication plan (called by the runtime before the
    /// program starts).
    pub(crate) fn set_plan(&mut self, plan: Arc<CommPlan>) {
        self.plan = plan;
    }

    /// This worker's 0-based index.
    pub fn worker_index(&self) -> usize {
        self.layout.topology.worker_index(self.endpoint.rank())
    }

    // ---- message pump ---------------------------------------------------------

    /// Drains the inbox, handling every pending message.
    pub(crate) fn service_messages(&mut self) {
        while let Some(env) = self.endpoint.try_recv() {
            self.handle(env.src, env.msg);
        }
        self.flush_forwards();
    }

    /// Ships any multicast forwards staged while draining the inbox (so
    /// forwards of several blocks to the same child coalesce into one
    /// envelope). A no-op unless something was staged.
    pub(crate) fn flush_forwards(&mut self) {
        if self.staged_forwards {
            self.staged_forwards = false;
            let _ = self.endpoint.flush();
        }
    }

    /// Keeps serving peers (gets/puts against blocks homed here) after this
    /// worker's program finished, until the master broadcasts shutdown.
    pub(crate) fn service_until_shutdown(&mut self) {
        loop {
            if self.shutdown_seen || self.endpoint.shutdown_raised() || self.endpoint.is_crashed() {
                return;
            }
            self.maybe_heartbeat();
            let _ = self.pump_retries();
            if let Some(env) = self.endpoint.recv_timeout(self.config.service_poll) {
                let src = env.src;
                self.handle(src, env.msg);
                self.flush_forwards();
            }
        }
    }

    fn handle(&mut self, src: Rank, msg: SipMsg) {
        match msg {
            SipMsg::GetBlock { key, req } => {
                // Conflict check: serving a block Replace-put in this same
                // epoch means the program raced a read against a write.
                if self.replace_epoch.get(&key) == Some(&self.dist_epoch) {
                    self.warnings.push(format!(
                        "possible barrier misuse: block {key:?} read and replaced in the \
                         same sip_barrier epoch"
                    ));
                }
                self.serve_epoch.insert(key, self.dist_epoch);
                match self.mem.serve_home(&key) {
                    // Serve from the authoritative store; the reply shares
                    // the store's allocation (zero-copy).
                    Some(data) => {
                        let _ = self
                            .endpoint
                            .send(src, SipMsg::BlockData { key, data, req });
                    }
                    // A sparse array's missing block is typed-absent: ship
                    // the norm bound, never a zero payload.
                    None if self.layout.array_sparse(key.array) => {
                        let norm = self.mem.home_absent_norm(&key).unwrap_or(0.0);
                        let _ = self
                            .endpoint
                            .send(src, SipMsg::BlockAbsent { key, norm, req });
                    }
                    // Dense unfilled blocks read as zero ("blocks are
                    // allocated … only when actually filled"), which is what
                    // makes symmetric-array declarations cheap.
                    None => {
                        let data = BlockHandle::zeros(self.layout.declared_block_shape(key.array));
                        let _ = self
                            .endpoint
                            .send(src, SipMsg::BlockData { key, data, req });
                    }
                }
            }
            SipMsg::PutBlock {
                key,
                data,
                mode,
                op,
            } => {
                self.apply_put_deduped(key, data, mode, op);
                let _ = self.endpoint.send(src, SipMsg::PutAck { key, op });
            }
            SipMsg::PutAck { key, op } => {
                self.profile.metrics.comm.puts_acked += 1;
                self.finish_put_flight(op, key, CommOp::Put);
                match self.ft.as_mut() {
                    Some(ft) if op.is_tracked() => {
                        ft.pending.remove(&op.0);
                    }
                    _ => {
                        self.outstanding_puts = self.outstanding_puts.saturating_sub(1);
                    }
                }
            }
            SipMsg::PrepareAck { key, op } => {
                self.profile.metrics.comm.prepares_acked += 1;
                self.finish_put_flight(op, key, CommOp::Prepare);
                match self.ft.as_mut() {
                    Some(ft) if op.is_tracked() => {
                        ft.pending.remove(&op.0);
                    }
                    _ => {
                        self.outstanding_prepares = self.outstanding_prepares.saturating_sub(1);
                    }
                }
            }
            SipMsg::BlockData { key, data, .. } => {
                if let Some(ft) = self.ft.as_mut() {
                    ft.fetches.remove(&key);
                }
                if let Some((t0, id)) = self.flights.remove(&key) {
                    let flight_ns = t0.elapsed().as_nanos() as u64;
                    self.profile.metrics.comm.flight_nanos += flight_ns;
                    if self.trace.is_on() {
                        let end = self.trace.now_ns();
                        self.trace.span(
                            EventKind::Flight {
                                op: CommOp::Get,
                                key,
                                id,
                            },
                            end.saturating_sub(flight_ns),
                            end,
                        );
                        self.trace.instant(EventKind::CacheFill {
                            key,
                            bytes: data.heap_bytes(),
                        });
                    }
                }
                // The cache entry shares the envelope's allocation.
                self.mem.cache_fill(key, data);
                self.drain_evictions_into_trace();
            }
            SipMsg::BlockAbsent { key, norm, .. } => {
                // The typed-absent counterpart of BlockData: completes the
                // in-flight fetch with a norm bound instead of a payload.
                if let Some(ft) = self.ft.as_mut() {
                    ft.fetches.remove(&key);
                }
                if let Some((t0, id)) = self.flights.remove(&key) {
                    let flight_ns = t0.elapsed().as_nanos() as u64;
                    self.profile.metrics.comm.flight_nanos += flight_ns;
                    if self.trace.is_on() {
                        let end = self.trace.now_ns();
                        self.trace.span(
                            EventKind::Flight {
                                op: CommOp::Get,
                                key,
                                id,
                            },
                            end.saturating_sub(flight_ns),
                            end,
                        );
                    }
                }
                self.profile.metrics.sparse.bytes_not_shipped += self.layout.block_bytes(key.array);
                self.mem.cache_fill_absent(key, norm);
            }
            SipMsg::PutAbsent {
                key,
                norm,
                mode,
                op,
            } => {
                self.apply_absent_deduped(key, norm, mode, op);
                let _ = self.endpoint.send(src, SipMsg::PutAck { key, op });
            }
            SipMsg::ChunkAssign {
                pardo_pc,
                epoch,
                chunk,
                iters,
            } => {
                if let Some(p) = &mut self.pardo {
                    if p.start_pc == pardo_pc && p.epoch == epoch {
                        if let Some(ft) = self.ft.as_mut() {
                            ft.chunk_acks.push_back((chunk, iters.len()));
                        }
                        p.queue.extend(iters);
                        p.requested = false;
                    }
                }
            }
            SipMsg::Takeover {
                pardo_pc,
                epoch,
                chunk,
                iters,
            } => {
                if let Some(ft) = self.ft.as_mut() {
                    ft.takeovers.push_back(TakeoverChunk {
                        pardo_pc,
                        epoch,
                        chunk,
                        iters,
                    });
                }
            }
            SipMsg::RankDead {
                rank,
                inherited_ops,
            } => {
                self.on_rank_dead(rank, inherited_ops);
            }
            SipMsg::NoMoreChunks { pardo_pc, epoch } => {
                if let Some(p) = &mut self.pardo {
                    if p.start_pc == pardo_pc && p.epoch == epoch {
                        p.exhausted = true;
                        p.requested = false;
                    }
                }
            }
            SipMsg::BarrierRelease { kind } => {
                self.barrier_release = Some(kind);
            }
            SipMsg::ReduceResult { value } => {
                self.reduce_result = Some(value);
            }
            SipMsg::CkptRelease { label } => {
                self.ckpt_released.insert(label);
            }
            SipMsg::MulticastBlock {
                key,
                data,
                epoch,
                pos,
                flight,
            } => {
                self.on_multicast(key, data, epoch, pos, flight);
            }
            SipMsg::MulticastAbsent {
                key,
                norm,
                epoch,
                pos,
                flight,
            } => {
                self.on_multicast_absent(key, norm, epoch, pos, flight);
            }
            SipMsg::DeleteArray { array } => {
                self.mem.home_remove_array(array);
                self.mem.cache_invalidate_array(array);
            }
            SipMsg::Shutdown => {
                self.shutdown_seen = true;
            }
            // A stray heartbeat (e.g. duplicated routing in tests) is harmless.
            SipMsg::Heartbeat => {}
            // Messages a worker never receives (a Batch is unpacked by the
            // fabric endpoint before delivery, so a bare one is a protocol
            // error too).
            SipMsg::Batch(_)
            | SipMsg::ChunkRequest { .. }
            | SipMsg::ChunkDone { .. }
            | SipMsg::RequestBlock { .. }
            | SipMsg::PrepareBlock { .. }
            | SipMsg::BarrierEnter { .. }
            | SipMsg::ReduceContrib { .. }
            | SipMsg::CkptBlock { .. }
            | SipMsg::CkptDone { .. }
            | SipMsg::EpochMark { .. }
            | SipMsg::EpochAck { .. }
            | SipMsg::WorkerDone { .. }
            | SipMsg::WorkerFailed { .. }
            | SipMsg::ServerDone { .. } => {
                self.warnings
                    .push(format!("worker received unexpected message from {src}"));
            }
        }
    }

    /// Forwards any cache evictions logged since the last call to the event
    /// sink (the log is only enabled while tracing, so this is a no-op with
    /// no allocation otherwise).
    pub(crate) fn drain_evictions_into_trace(&mut self) {
        if !self.trace.is_on() {
            return;
        }
        for (key, bytes) in self.mem.drain_evictions() {
            self.trace.instant(EventKind::CacheEvict { key, bytes });
        }
    }

    // ---- multicast ------------------------------------------------------------

    /// Pushes this worker's broadcast-shaped home blocks down their
    /// multicast trees on pardo entry (planned placement only; a no-op
    /// otherwise). Best-effort: a receiver that already crossed a barrier
    /// drops the stale copy and its consumers fall back to demand GETs.
    pub(crate) fn multicast_push(&mut self, pardo_pc: u32) {
        if self.layout.topology.placement != Placement::Planned {
            return;
        }
        let workers = self.layout.topology.workers;
        if workers < 2 {
            return;
        }
        let plan = Arc::clone(&self.plan);
        let Some(region) = plan.region(pardo_pc) else {
            return;
        };
        let own = self.worker_index();
        for b in &region.broadcast {
            let ranges: Vec<(i64, i64)> = b.indices.iter().map(|&i| self.layout.range(i)).collect();
            if ranges.is_empty() {
                continue;
            }
            let mut segs: Vec<i64> = ranges.iter().map(|r| r.0).collect();
            loop {
                let key = BlockKey::new(b.array, &segs);
                if self.layout.slot_of_distributed(&key) == own {
                    match self.mem.serve_home(&key) {
                        Some(data) => {
                            let flight = self.new_multicast_hop(key, 0);
                            self.multicast_forward(key, data, self.dist_epoch, 0, flight);
                        }
                        // A sparse array's absent block rides the same tree
                        // as a lightweight norm record, so consumers don't
                        // each pay a point-to-point GET just to learn
                        // absence. Dense unfilled blocks stay on the demand
                        // path (they read as zeros there).
                        None if self.layout.array_sparse(key.array) => {
                            let norm = self.mem.home_absent_norm(&key).unwrap_or(0.0);
                            let flight = self.new_multicast_hop(key, 0);
                            self.multicast_forward_absent(key, norm, self.dist_epoch, 0, flight);
                        }
                        None => {}
                    }
                }
                let mut d = segs.len();
                let mut done = false;
                loop {
                    if d == 0 {
                        done = true;
                        break;
                    }
                    d -= 1;
                    segs[d] += 1;
                    if segs[d] <= ranges[d].1 {
                        break;
                    }
                    segs[d] = ranges[d].0;
                }
                if done {
                    break;
                }
            }
        }
        self.flush_forwards();
    }

    /// Accepts a pushed multicast copy: fills the cache exactly like a
    /// solicited `BlockData` (completing any demand fetch already in
    /// flight) and forwards the block to this tree position's children.
    fn on_multicast(
        &mut self,
        key: BlockKey,
        data: BlockHandle,
        epoch: u64,
        pos: u32,
        flight: u64,
    ) {
        // Stale push — the sender raced a barrier. Drop it; demand fetches
        // recover.
        if epoch != self.dist_epoch {
            return;
        }
        if let Some(ft) = self.ft.as_mut() {
            ft.fetches.remove(&key);
        }
        if let Some((t0, _)) = self.flights.remove(&key) {
            self.profile.metrics.comm.flight_nanos += t0.elapsed().as_nanos() as u64;
        }
        let hop = self.new_multicast_hop(key, flight);
        if self.trace.is_on() {
            self.trace.instant(EventKind::CacheFill {
                key,
                bytes: data.heap_bytes(),
            });
        }
        self.multicast_forward(key, data.clone(), epoch, pos, hop);
        self.mem.cache_fill(key, data);
        self.drain_evictions_into_trace();
    }

    /// Accepts a pushed typed-absent record: fills the cache like a
    /// solicited [`SipMsg::BlockAbsent`] (completing any demand fetch in
    /// flight) and forwards the record to this tree position's children.
    fn on_multicast_absent(&mut self, key: BlockKey, norm: f64, epoch: u64, pos: u32, flight: u64) {
        if epoch != self.dist_epoch {
            return;
        }
        if let Some(ft) = self.ft.as_mut() {
            ft.fetches.remove(&key);
        }
        if let Some((t0, _)) = self.flights.remove(&key) {
            self.profile.metrics.comm.flight_nanos += t0.elapsed().as_nanos() as u64;
        }
        let hop = self.new_multicast_hop(key, flight);
        self.multicast_forward_absent(key, norm, epoch, pos, hop);
        self.profile.metrics.sparse.bytes_not_shipped += self.layout.block_bytes(key.array);
        self.mem.cache_fill_absent(key, norm);
    }

    /// Records a multicast hop in the trace and returns its globally
    /// unique flight id (0 when tracing is off — the id only exists for
    /// trace correlation).
    fn new_multicast_hop(&mut self, key: BlockKey, parent: u64) -> u64 {
        if !self.trace.is_on() {
            return 0;
        }
        let seq = self.endpoint.next_req_id().0;
        let id = ((self.endpoint.rank().0 as u64) << 48) | (seq & 0xffff_ffff_ffff);
        let t = self.trace.now_ns();
        self.trace
            .span(EventKind::Multicast { key, id, parent }, t, t);
        id
    }

    /// Stages the block to the tree children of `pos` (positions `2p+1`
    /// and `2p+2`, ranks rotated so the home slot is the root). Staged —
    /// not sent — so several forwards to one child batch into a single
    /// envelope at the next [`Worker::flush_forwards`].
    fn multicast_forward(
        &mut self,
        key: BlockKey,
        data: BlockHandle,
        epoch: u64,
        pos: u32,
        flight: u64,
    ) {
        let workers = self.layout.topology.workers;
        let own = self.worker_index();
        let home = (own + workers - (pos as usize % workers)) % workers;
        for child in [2 * pos + 1, 2 * pos + 2] {
            if (child as usize) >= workers {
                continue;
            }
            let widx = (home + child as usize) % workers;
            let to = self.layout.topology.worker(widx);
            self.profile.metrics.plan.multicast_blocks += 1;
            self.profile.metrics.plan.multicast_bytes += data.heap_bytes();
            let _ = self.endpoint.stage(
                to,
                SipMsg::MulticastBlock {
                    key,
                    data: data.clone(),
                    epoch,
                    pos: child,
                    flight,
                },
            );
            self.staged_forwards = true;
        }
    }

    /// Stages a typed-absent record to the tree children of `pos` — the
    /// payload-free counterpart of [`Worker::multicast_forward`].
    fn multicast_forward_absent(
        &mut self,
        key: BlockKey,
        norm: f64,
        epoch: u64,
        pos: u32,
        flight: u64,
    ) {
        let workers = self.layout.topology.workers;
        let own = self.worker_index();
        let home = (own + workers - (pos as usize % workers)) % workers;
        for child in [2 * pos + 1, 2 * pos + 2] {
            if (child as usize) >= workers {
                continue;
            }
            let widx = (home + child as usize) % workers;
            let to = self.layout.topology.worker(widx);
            // A norm record is a multicast block with zero shipped payload:
            // count the hop, not the bytes.
            self.profile.metrics.plan.multicast_blocks += 1;
            let _ = self.endpoint.stage(
                to,
                SipMsg::MulticastAbsent {
                    key,
                    norm,
                    epoch,
                    pos: child,
                    flight,
                },
            );
            self.staged_forwards = true;
        }
    }

    /// Closes the traced flight span of an acknowledged PUT/PREPARE.
    fn finish_put_flight(&mut self, op: OpId, key: BlockKey, kind: CommOp) {
        if !self.trace.is_on() {
            return;
        }
        if let Some(t0) = self.put_flights.remove(&op.0) {
            let ns = t0.elapsed().as_nanos() as u64;
            let end = self.trace.now_ns();
            self.trace.span(
                EventKind::Flight {
                    op: kind,
                    key,
                    id: op.0,
                },
                end.saturating_sub(ns),
                end,
            );
        }
    }

    /// Applies a put to the authoritative store (used by the home for remote
    /// puts and by the owner for local ones). A Replace adopts the payload
    /// handle outright; an Accumulate mutates the resident block
    /// copy-on-write (in place unless a concurrent serve still shares it).
    pub(crate) fn apply_put_local(&mut self, key: BlockKey, data: BlockHandle, mode: PutMode) {
        // Sparse screening at the home: a payload under the threshold is
        // dropped and only its norm bound is recorded. Also reached by a
        // fault-tolerance journal replay of a put the sender dropped (replay
        // resends the full block), keeping replay idempotent with the drop.
        if self.sparsity_active(key.array) {
            let norm = data.norm();
            if norm < self.config.sparsity_threshold {
                self.apply_absent_local(key, norm, mode);
                return;
            }
        }
        match mode {
            PutMode::Replace => {
                if self.serve_epoch.get(&key) == Some(&self.dist_epoch) {
                    self.warnings.push(format!(
                        "possible barrier misuse: block {key:?} replaced after being read \
                         in the same sip_barrier epoch"
                    ));
                }
                self.replace_epoch.insert(key, self.dist_epoch);
                self.mem.home_insert(key, data);
            }
            PutMode::Accumulate => match self.mem.home_entry_mut(&key) {
                Some(existing) => existing.make_mut().accumulate(&data),
                None => {
                    self.mem.home_insert(key, data);
                }
            },
        }
        // A fresher value exists; drop any stale cached copy.
        self.mem.cache_invalidate(&key);
    }

    /// True when blocks of `array` are screened: the array is declared
    /// sparse and the run has a positive sparsity threshold.
    pub(crate) fn sparsity_active(&self, array: ArrayId) -> bool {
        self.config.sparsity_threshold > 0.0 && self.layout.array_sparse(array)
    }

    /// Applies a dropped (absent) put to the authoritative store: a Replace
    /// removes any resident payload and records the norm bound; an
    /// Accumulate onto a resident block is a no-op (the dropped contribution
    /// is within the screening bound), onto an absent block it accumulates
    /// the bound (triangle inequality).
    pub(crate) fn apply_absent_local(&mut self, key: BlockKey, norm: f64, mode: PutMode) {
        match mode {
            PutMode::Replace => {
                if self.serve_epoch.get(&key) == Some(&self.dist_epoch) {
                    self.warnings.push(format!(
                        "possible barrier misuse: block {key:?} replaced after being read \
                         in the same sip_barrier epoch"
                    ));
                }
                self.replace_epoch.insert(key, self.dist_epoch);
                self.mem.home_record_absent(key, norm);
            }
            PutMode::Accumulate => {
                if !self.mem.home_contains(&key) {
                    let prior = self.mem.home_absent_norm(&key).unwrap_or(0.0);
                    self.mem.home_record_absent(key, prior + norm);
                }
            }
        }
        self.mem.cache_invalidate(&key);
    }

    /// [`Worker::apply_absent_local`] with the same duplicate suppression as
    /// [`Worker::apply_put_deduped`], so retried/duplicated `PutAbsent`
    /// messages cannot re-accumulate a norm bound.
    pub(crate) fn apply_absent_deduped(
        &mut self,
        key: BlockKey,
        norm: f64,
        mode: PutMode,
        op: OpId,
    ) {
        let epoch = self.dist_epoch;
        let duplicate = op.is_tracked()
            && !self
                .ft
                .as_mut()
                .map(|ft| ft.note_applied(op.0, epoch))
                .unwrap_or(true);
        if duplicate {
            self.profile.metrics.fault.dup_puts_suppressed += 1;
        } else {
            self.apply_absent_local(key, norm, mode);
        }
    }

    /// Waits (servicing messages and pumping retries) until `done(self)`
    /// holds. Returns the time spent waiting. Aborts with an error if
    /// shutdown is raised mid-wait or the retry budget runs out.
    ///
    /// This is the *single* accounting point for wait time: every blocked
    /// interval lands in the cause-attributed `metrics.wait` totals exactly
    /// once, here — callers that also fold the returned duration into a
    /// per-pc figure are attributing, not re-counting.
    pub(crate) fn wait_until(
        &mut self,
        cause: WaitCause,
        what: &str,
        mut done: impl FnMut(&Self) -> bool,
    ) -> Result<Duration, RuntimeError> {
        let t0 = Instant::now();
        loop {
            self.service_messages();
            self.maybe_heartbeat();
            self.pump_retries()?;
            if done(self) {
                let waited = t0.elapsed();
                self.profile.add_wait(cause, waited);
                // Sub-microsecond "waits" (the condition held on entry) would
                // only smear noise over the timeline.
                if waited.as_nanos() >= 1_000 {
                    self.trace.span_since(EventKind::Wait { cause }, t0);
                }
                return Ok(waited);
            }
            if self.shutdown_seen || self.endpoint.shutdown_raised() {
                return Err(RuntimeError::Comm {
                    kind: CommKind::Poisoned,
                    rank: self.endpoint.rank(),
                    key: None,
                    context: format!("run aborted while waiting for {what}"),
                });
            }
            if self.endpoint.is_crashed() {
                return Err(RuntimeError::Comm {
                    kind: CommKind::RankDead,
                    rank: self.endpoint.rank(),
                    key: None,
                    context: format!("rank crashed while waiting for {what}"),
                });
            }
            // Block briefly on the inbox rather than spinning.
            if let Some(env) = self.endpoint.recv_timeout(self.config.wait_poll) {
                let src = env.src;
                self.handle(src, env.msg);
                self.flush_forwards();
            }
        }
    }

    // ---- index environment -------------------------------------------------------

    pub(crate) fn index_value(&self, id: IndexId) -> i64 {
        self.env[id.index()]
    }

    pub(crate) fn set_index(&mut self, id: IndexId, v: i64) {
        self.env[id.index()] = v;
    }

    /// Values of a ref's indices (errors if any is unbound — sema prevents,
    /// but corrupted bytecode shouldn't panic).
    pub(crate) fn seg_values(&self, indices: &[IndexId]) -> Result<Vec<i64>, RuntimeError> {
        indices
            .iter()
            .map(|&i| {
                let v = self.index_value(i);
                if v == 0 {
                    Err(RuntimeError::BadProgram(format!(
                        "index `{}` used while undefined",
                        self.layout.program.indices[i.index()].name
                    )))
                } else {
                    Ok(v)
                }
            })
            .collect()
    }

    // ---- block access ---------------------------------------------------------------

    /// Home of a distributed block, skipping dead workers under fault
    /// tolerance. The single resolver for distributed homes on the worker:
    /// every caller goes through here (or through the layout facade with an
    /// explicit dead mask), so nothing can pick the stale non-excluding
    /// variant during recovery.
    pub(crate) fn dist_home(&self, key: &BlockKey) -> Rank {
        let dead = self.ft.as_ref().map(|ft| ft.dead.as_slice()).unwrap_or(&[]);
        self.layout.home_of_distributed_excluding(key, dead)
    }

    /// The single entry point for distributed/served block access, returning
    /// a typed [`BlockGet`] instead of implicitly materializing zero blocks.
    ///
    /// [`Fetch::NoWait`] issues the asynchronous fetch behind
    /// `get`/`request`/prefetch (a no-op when the block is homed here,
    /// cached, or already in flight) and returns [`BlockGet::Pending`].
    /// [`Fetch::Wait`] blocks on an in-flight fetch — or issues a late one —
    /// if necessary, and returns [`BlockGet::Ready`] with the data or
    /// [`BlockGet::AbsentZero`] when the block is typed-absent from a sparse
    /// array; the time blocked is added to `wait` for the profiler.
    pub(crate) fn access_key(
        &mut self,
        key: BlockKey,
        fetch: Fetch,
        wait: &mut Duration,
    ) -> Result<BlockGet, RuntimeError> {
        let kind = self.layout.array_kind(key.array);
        let home = match kind {
            ArrayKind::Distributed => self.dist_home(&key),
            ArrayKind::Served => {
                if self.layout.topology.io_servers == 0 {
                    return Err(RuntimeError::ServedIo(
                        "program uses served arrays but io_servers = 0".into(),
                    ));
                }
                self.layout.home_of_served(&key)
            }
            other => {
                return Err(RuntimeError::BadProgram(format!(
                    "block access on {other:?} array"
                )));
            }
        };
        if home == self.endpoint.rank() {
            // Authoritative store; nothing to fetch. The handle shares the
            // store's allocation. Unfilled blocks of a dense array read as
            // zero ("blocks are allocated … only when actually filled");
            // missing blocks of a sparse array are typed-absent.
            return Ok(match fetch {
                Fetch::NoWait => BlockGet::Pending,
                Fetch::Wait => match self.mem.serve_home(&key) {
                    Some(h) => BlockGet::Ready(h),
                    None if self.layout.array_sparse(key.array) => BlockGet::AbsentZero {
                        norm: self.mem.home_absent_norm(&key).unwrap_or(0.0),
                    },
                    None => BlockGet::Ready(BlockHandle::zeros(
                        self.layout.declared_block_shape(key.array),
                    )),
                },
            });
        }
        if fetch == Fetch::NoWait {
            if self.mem.cache_mark_in_flight(key) {
                self.send_fetch(home, key, kind)?;
            }
            return Ok(BlockGet::Pending);
        }
        loop {
            let hit = match self.mem.cache_lookup(&key) {
                Some(CacheEntry::Ready(b)) => Some(BlockGet::Ready(b.clone())),
                Some(&CacheEntry::Absent { norm }) => Some(BlockGet::AbsentZero { norm }),
                Some(CacheEntry::InFlight) => None,
                None => {
                    // Late fetch — the contraction operator "ensures that the
                    // necessary blocks are available and waits … if
                    // necessary". Also reached when cache pressure evicted a
                    // filled entry before this waiter observed it: the next
                    // round trip re-fetches (counted as a refetch).
                    if self.mem.cache_mark_in_flight(key) {
                        self.send_fetch(home, key, kind)?;
                    }
                    None
                }
            };
            match hit {
                Some(BlockGet::Ready(h)) => {
                    // Sharing the cached handle pins it against eviction
                    // while the caller holds it.
                    self.mem.note_share(&h);
                    return Ok(BlockGet::Ready(h));
                }
                Some(got) => return Ok(got),
                None => {}
            }
            // Wait until the entry leaves the in-flight state: Ready (the
            // next lookup shares it — eviction only runs on this thread, so
            // it cannot vanish in between) or evicted/absent (loop re-arms
            // the fetch).
            let waited =
                self.wait_until(WaitCause::BlockArrival, &format!("block {key:?}"), |w| {
                    !matches!(w.mem.cache_peek(&key), Some(CacheEntry::InFlight))
                })?;
            // Time blocked on a fetch is comm latency the prefetcher failed
            // to hide — the "exposed" half of the overlap metric.
            self.profile.metrics.comm.exposed_nanos += waited.as_nanos() as u64;
            *wait += waited;
        }
    }

    /// Sends the GET/REQUEST for a block just marked in flight, registering
    /// it for retry under fault tolerance.
    fn send_fetch(
        &mut self,
        home: Rank,
        key: BlockKey,
        kind: ArrayKind,
    ) -> Result<(), RuntimeError> {
        // A real id is only needed for retry correlation (FT) or flight
        // correlation in the trace; fault-free untraced runs skip it.
        let req = if self.ft.is_some() || self.trace.is_on() {
            self.endpoint.next_req_id()
        } else {
            ReqId::NONE
        };
        self.profile.metrics.comm.fetches += 1;
        self.flights.insert(key, (Instant::now(), req.0));
        if let Some(ft) = self.ft.as_mut() {
            let timeout = ft.cfg.retry_timeout;
            ft.fetches.insert(
                key,
                FetchState {
                    req,
                    served: kind == ArrayKind::Served,
                    sent_at: Instant::now(),
                    timeout,
                    attempts: 0,
                },
            );
        }
        let msg = match kind {
            ArrayKind::Served => SipMsg::RequestBlock { key, req },
            _ => SipMsg::GetBlock { key, req },
        };
        if self.ft.is_some() {
            // The fetch is registered for retry; a send failure means the
            // home just died and the retry will re-route after RankDead.
            let _ = self.endpoint.send(home, msg);
        } else {
            self.endpoint.send(home, msg)?;
        }
        Ok(())
    }

    /// Reads the block a ref denotes, waiting for in-flight fetches. Returns
    /// a shared handle aliasing the resident block — mutation by the caller
    /// goes through copy-on-write, so correctness is preserved without the
    /// old defensive deep copy.
    ///
    /// `wait` accumulates blocked time for the profiler.
    pub(crate) fn read_block(
        &mut self,
        array: ArrayId,
        ref_indices: &[IndexId],
        wait: &mut Duration,
    ) -> Result<BlockHandle, RuntimeError> {
        let segs = self.seg_values(ref_indices)?;
        let (key, slice) = self.layout.storage_target(array, ref_indices, &segs);
        let kind = self.layout.array_kind(array);
        let whole = match kind {
            ArrayKind::Temp => match self.temps.get(&array) {
                Some((stored_key, block)) if *stored_key == key => {
                    let h = block.clone();
                    self.mem.note_share(&h);
                    h
                }
                _ => {
                    return Err(RuntimeError::TempUndefined {
                        array: self.layout.array(array).name.clone(),
                    });
                }
            },
            ArrayKind::Local | ArrayKind::Static => match self.mem.local_share(&key) {
                Some(h) => h,
                None => {
                    return Err(RuntimeError::BlockNotAvailable {
                        key,
                        context: format!(
                            "local/static block of `{}` never written",
                            self.layout.array(array).name
                        ),
                    });
                }
            },
            ArrayKind::Distributed | ArrayKind::Served => {
                match self.access_key(key, Fetch::Wait, wait)? {
                    BlockGet::Ready(h) => h,
                    // Dense consumers still see an absent block as zeros;
                    // screening-aware consumers use `read_block_get`.
                    BlockGet::AbsentZero { .. } => {
                        BlockHandle::zeros(self.layout.declared_block_shape(array))
                    }
                    BlockGet::Pending => {
                        return Err(RuntimeError::Internal(
                            "wait-mode access returned pending".into(),
                        ));
                    }
                }
            }
        };
        match slice {
            None => Ok(whole),
            Some((offsets, extents)) => {
                let spec = sia_blocks::SliceSpec::new(&offsets, &extents);
                sia_blocks::extract_slice(&whole, &spec)
                    .map(BlockHandle::new)
                    .map_err(|e| RuntimeError::Internal(format!("slice extraction failed: {e}")))
            }
        }
    }

    /// Screening-aware read for consumers that can exploit typed absence
    /// (the contraction path): like [`Worker::read_block`], but an absent
    /// sparse block comes back as [`BlockGet::AbsentZero`] with its norm
    /// bound instead of a materialized zero block. A slice of an absent
    /// block is absent with the same bound (`‖sub‖F ≤ ‖whole‖F`).
    pub(crate) fn read_block_get(
        &mut self,
        array: ArrayId,
        ref_indices: &[IndexId],
        wait: &mut Duration,
    ) -> Result<BlockGet, RuntimeError> {
        let kind = self.layout.array_kind(array);
        if !matches!(kind, ArrayKind::Distributed | ArrayKind::Served) {
            // Temp/local/static arrays are never sparse.
            return self
                .read_block(array, ref_indices, wait)
                .map(BlockGet::Ready);
        }
        let segs = self.seg_values(ref_indices)?;
        let (key, slice) = self.layout.storage_target(array, ref_indices, &segs);
        match self.access_key(key, Fetch::Wait, wait)? {
            BlockGet::Ready(whole) => match slice {
                None => Ok(BlockGet::Ready(whole)),
                Some((offsets, extents)) => {
                    let spec = sia_blocks::SliceSpec::new(&offsets, &extents);
                    sia_blocks::extract_slice(&whole, &spec)
                        .map(|b| BlockGet::Ready(BlockHandle::new(b)))
                        .map_err(|e| {
                            RuntimeError::Internal(format!("slice extraction failed: {e}"))
                        })
                }
            },
            absent @ BlockGet::AbsentZero { .. } => Ok(absent),
            BlockGet::Pending => Err(RuntimeError::Internal(
                "wait-mode access returned pending".into(),
            )),
        }
    }

    /// Writes `block` to the storage a ref denotes (temp/local/static only;
    /// distributed/served writes go through put/prepare). Accepts anything
    /// convertible to a [`BlockHandle`], so a shared handle is stored without
    /// materializing a copy.
    pub(crate) fn write_block(
        &mut self,
        array: ArrayId,
        ref_indices: &[IndexId],
        block: impl Into<BlockHandle>,
    ) -> Result<(), RuntimeError> {
        let block = block.into();
        let segs = self.seg_values(ref_indices)?;
        let (key, slice) = self.layout.storage_target(array, ref_indices, &segs);
        let kind = self.layout.array_kind(array);
        match slice {
            None => match kind {
                ArrayKind::Temp => {
                    if let Some((_, old)) = self.temps.insert(array, (key, block)) {
                        self.release_handle(old);
                    }
                    Ok(())
                }
                ArrayKind::Local | ArrayKind::Static => {
                    self.mem.local_insert(key, block);
                    Ok(())
                }
                other => Err(RuntimeError::BadProgram(format!(
                    "direct write to {other:?} array"
                ))),
            },
            Some((offsets, extents)) => {
                // Insertion: write the subblock into the (existing or fresh)
                // parent block.
                let spec = sia_blocks::SliceSpec::new(&offsets, &extents);
                let parent_shape = self.layout.declared_block_shape(array);
                match kind {
                    ArrayKind::Temp => {
                        let entry = self
                            .temps
                            .entry(array)
                            .or_insert_with(|| (key, BlockHandle::zeros(parent_shape)));
                        if entry.0 != key {
                            *entry = (key, BlockHandle::zeros(parent_shape));
                        }
                        sia_blocks::insert_slice(entry.1.make_mut(), &spec, &block)
                            .map_err(|e| RuntimeError::Internal(format!("insert failed: {e}")))
                    }
                    ArrayKind::Local | ArrayKind::Static => {
                        let parent = self
                            .mem
                            .local_mut_or_insert(key, || BlockHandle::zeros(parent_shape));
                        sia_blocks::insert_slice(parent.make_mut(), &spec, &block)
                            .map_err(|e| RuntimeError::Internal(format!("insert failed: {e}")))
                    }
                    other => Err(RuntimeError::BadProgram(format!(
                        "direct write to {other:?} array"
                    ))),
                }
            }
        }
    }

    /// Mutates a writable block in place (for `+=`, `*=` on temps/locals).
    pub(crate) fn modify_block(
        &mut self,
        array: ArrayId,
        ref_indices: &[IndexId],
        f: impl FnOnce(&mut Block),
    ) -> Result<(), RuntimeError> {
        let segs = self.seg_values(ref_indices)?;
        let (key, slice) = self.layout.storage_target(array, ref_indices, &segs);
        if slice.is_some() {
            // Read-modify-write through the slice path.
            let mut wait = Duration::ZERO;
            let mut sub = self.read_block(array, ref_indices, &mut wait)?;
            f(sub.make_mut());
            return self.write_block(array, ref_indices, sub);
        }
        match self.layout.array_kind(array) {
            ArrayKind::Temp => match self.temps.get_mut(&array) {
                Some((stored_key, block)) if *stored_key == key => {
                    f(block.make_mut());
                    Ok(())
                }
                _ => Err(RuntimeError::TempUndefined {
                    array: self.layout.array(array).name.clone(),
                }),
            },
            ArrayKind::Local | ArrayKind::Static => match self.mem.local_get_mut(&key) {
                Some(block) => {
                    f(block.make_mut());
                    Ok(())
                }
                None => Err(RuntimeError::BlockNotAvailable {
                    key,
                    context: "in-place update of unwritten local/static block".into(),
                }),
            },
            other => Err(RuntimeError::BadProgram(format!(
                "in-place update of {other:?} array"
            ))),
        }
    }

    /// Returns a handle's storage to the pool if this was the last holder;
    /// a still-shared handle is simply dropped (the other holder — a flight
    /// in the retry state, a journal entry — keeps the allocation alive).
    pub(crate) fn release_handle(&mut self, h: BlockHandle) {
        if !h.is_shared() {
            self.pool.release(h.into_block());
        }
    }

    /// Frees all temp blocks (end of a pardo iteration) back to the pool.
    pub(crate) fn free_temps(&mut self) {
        let drained: Vec<BlockHandle> = self.temps.drain().map(|(_, (_, b))| b).collect();
        for block in drained {
            self.release_handle(block);
        }
    }

    /// Invalidate cached copies of every array of `kind` (stale after a
    /// barrier).
    pub(crate) fn invalidate_cached_kind(&mut self, kind: ArrayKind) {
        for (i, decl) in self.layout.program.arrays.iter().enumerate() {
            if decl.kind == kind {
                self.mem.cache_invalidate_array(ArrayId(i as u32));
            }
        }
    }

    // ---- fault tolerance --------------------------------------------------------

    /// Sends a PUT to `home`, tracking the op for retry/journal replay under
    /// fault tolerance (or counting an outstanding ack on the fault-free
    /// fast path). The journal entry, the retained pending payload, and the
    /// wire message all share one allocation.
    pub(crate) fn send_put(
        &mut self,
        home: Rank,
        key: BlockKey,
        data: BlockHandle,
        mode: PutMode,
        op: OpId,
    ) -> Result<(), RuntimeError> {
        // Tracked ops get a traced flight span; untracked (`OpId::NONE`)
        // puts have no correlatable id, so they are counted but not spanned.
        if self.trace.is_on() && op.is_tracked() {
            self.put_flights.insert(op.0, Instant::now());
        }
        // Sparse screening at the sender: a payload under the threshold
        // ships as a norm-only PutAbsent instead of the block.
        let dropped = self.screen_outgoing(&key, &data);
        if let Some(ft) = self.ft.as_mut() {
            if ft.cfg.expects_crash() {
                self.mem.note_share(&data);
                ft.journal.push(JournalEntry {
                    op: op.0,
                    key,
                    data: data.clone(),
                    mode,
                });
            }
            self.mem.note_share(&data);
            // The retained payload backs retries and journal replay even
            // when the first transmission is a PutAbsent: a retry resends
            // the full block and the home's op dedup keeps it idempotent.
            let msg = ft.arm_flight(op, key, data, mode, false);
            let msg = match dropped {
                Some(norm) => SipMsg::PutAbsent {
                    key,
                    norm,
                    mode,
                    op,
                },
                None => msg,
            };
            // Tracked for retry: a failed send to a dying home re-routes
            // once the master broadcasts RankDead.
            let _ = self.endpoint.send(home, msg);
        } else {
            self.outstanding_puts += 1;
            let msg = match dropped {
                Some(norm) => SipMsg::PutAbsent {
                    key,
                    norm,
                    mode,
                    op,
                },
                None => ft::flight_msg(op, key, data, mode, false),
            };
            self.endpoint.send(home, msg)?;
        }
        Ok(())
    }

    /// Sender-side sparse screening: when `key`'s array is screened and the
    /// payload's Frobenius norm falls under the threshold, counts the bytes
    /// the fabric will not ship and returns the norm; `None` means ship the
    /// block.
    fn screen_outgoing(&mut self, key: &BlockKey, data: &BlockHandle) -> Option<f64> {
        if !self.sparsity_active(key.array) {
            return None;
        }
        let norm = data.norm();
        if norm >= self.config.sparsity_threshold {
            return None;
        }
        self.profile.metrics.sparse.bytes_not_shipped += data.heap_bytes();
        Some(norm)
    }

    /// Sends a PREPARE to an I/O server, tracking the op for retry under
    /// fault tolerance. I/O servers never die in the fault model, so
    /// prepares are not journaled.
    pub(crate) fn send_prepare(
        &mut self,
        home: Rank,
        key: BlockKey,
        data: BlockHandle,
        mode: PutMode,
        op: OpId,
    ) -> Result<(), RuntimeError> {
        if self.trace.is_on() && op.is_tracked() {
            self.put_flights.insert(op.0, Instant::now());
        }
        // Screened like puts: a negligible prepare ships norm-only (the
        // server answers with a PrepareAck either way).
        let dropped = self.screen_outgoing(&key, &data);
        if let Some(ft) = self.ft.as_mut() {
            self.mem.note_share(&data);
            let msg = ft.arm_flight(op, key, data, mode, true);
            let msg = match dropped {
                Some(norm) => SipMsg::PutAbsent {
                    key,
                    norm,
                    mode,
                    op,
                },
                None => msg,
            };
            let _ = self.endpoint.send(home, msg);
        } else {
            self.outstanding_prepares += 1;
            let msg = match dropped {
                Some(norm) => SipMsg::PutAbsent {
                    key,
                    norm,
                    mode,
                    op,
                },
                None => ft::flight_msg(op, key, data, mode, true),
            };
            self.endpoint.send(home, msg)?;
        }
        Ok(())
    }

    /// True when every PUT has been acknowledged.
    pub(crate) fn puts_drained(&self) -> bool {
        match &self.ft {
            Some(ft) => !ft.pending.values().any(|p| !p.served),
            None => self.outstanding_puts == 0,
        }
    }

    /// True when every PREPARE has been acknowledged.
    pub(crate) fn prepares_drained(&self) -> bool {
        match &self.ft {
            Some(ft) => !ft.pending.values().any(|p| p.served),
            None => self.outstanding_prepares == 0,
        }
    }

    /// Derives the duplicate-suppression id for a PUT/PREPARE at `pc` on
    /// `key`, consuming one slot of the per-iteration op sequence. Untracked
    /// (`OpId::NONE`) on fault-free runs. Inside pardos and takeover replays
    /// the id is worker-independent (re-execution of the iteration
    /// reproduces it anywhere); outside, the worker index is mixed in so
    /// each rank's SPMD accumulate counts once.
    pub(crate) fn derive_op(&mut self, pc: u32, key: &BlockKey) -> OpId {
        let Some(ft) = &self.ft else {
            return OpId::NONE;
        };
        let seq = self.op_seq;
        self.op_seq += 1;
        let spmd = if self.pardo.is_some() || ft.in_takeover {
            None
        } else {
            Some(self.worker_index())
        };
        OpId(ft::derive_op_id(
            pc,
            self.dist_epoch,
            key,
            &self.env,
            seq,
            spmd,
        ))
    }

    /// Applies a put (local or arriving over the wire) with duplicate
    /// suppression: a tracked op already in the applied window is dropped.
    /// This is what makes retries, fabric duplication, and chunk
    /// re-execution idempotent.
    pub(crate) fn apply_put_deduped(
        &mut self,
        key: BlockKey,
        data: BlockHandle,
        mode: PutMode,
        op: OpId,
    ) {
        let epoch = self.dist_epoch;
        let duplicate = op.is_tracked()
            && !self
                .ft
                .as_mut()
                .map(|ft| ft.note_applied(op.0, epoch))
                .unwrap_or(true);
        if duplicate {
            self.profile.metrics.fault.dup_puts_suppressed += 1;
        } else {
            self.apply_put_local(key, data, mode);
        }
    }

    /// Retries timed-out tracked operations (no-op on fault-free runs).
    /// Errors when an operation exhausts its retry budget.
    pub(crate) fn pump_retries(&mut self) -> Result<(), RuntimeError> {
        let Some(ft) = self.ft.as_mut() else {
            return Ok(());
        };
        if ft.pending.is_empty() && ft.fetches.is_empty() {
            return Ok(());
        }
        let now = Instant::now();
        let max_retries = ft.cfg.max_retries;
        let backoff = ft.cfg.retry_backoff;
        let layout = &self.layout;
        let mut resend: Vec<(Rank, SipMsg)> = Vec::new();
        let mut put_retries = 0u64;
        let mut prepare_retries = 0u64;
        for (&op, p) in ft.pending.iter_mut() {
            if now.duration_since(p.sent_at) < p.timeout {
                continue;
            }
            let home = if p.served {
                layout.home_of_served(&p.key)
            } else {
                layout.home_of_distributed_excluding(&p.key, &ft.dead)
            };
            if p.attempts >= max_retries {
                return Err(RuntimeError::Comm {
                    kind: CommKind::Timeout,
                    rank: home,
                    key: Some(p.key),
                    context: format!(
                        "{} unacknowledged after {} attempts",
                        if p.served { "PREPARE" } else { "PUT" },
                        p.attempts + 1
                    ),
                });
            }
            p.attempts += 1;
            p.sent_at = now;
            p.timeout = p.timeout.mul_f64(backoff);
            if p.served {
                prepare_retries += 1;
            } else {
                put_retries += 1;
            }
            // The resend shares the retained payload's allocation.
            resend.push((
                home,
                ft::flight_msg(OpId(op), p.key, p.data.clone(), p.mode, p.served),
            ));
        }
        let mut fetch_retries = 0u64;
        let mut refreshed: Vec<BlockKey> = Vec::new();
        for (key, f) in ft.fetches.iter_mut() {
            if now.duration_since(f.sent_at) < f.timeout {
                continue;
            }
            let home = if f.served {
                layout.home_of_served(key)
            } else {
                layout.home_of_distributed_excluding(key, &ft.dead)
            };
            if f.attempts >= max_retries {
                return Err(RuntimeError::Comm {
                    kind: CommKind::Timeout,
                    rank: home,
                    key: Some(*key),
                    context: format!(
                        "{} reply lost after {} attempts",
                        if f.served { "REQUEST" } else { "GET" },
                        f.attempts + 1
                    ),
                });
            }
            f.attempts += 1;
            f.sent_at = now;
            f.timeout = f.timeout.mul_f64(backoff);
            fetch_retries += 1;
            refreshed.push(*key);
            let msg = if f.served {
                SipMsg::RequestBlock {
                    key: *key,
                    req: f.req,
                }
            } else {
                SipMsg::GetBlock {
                    key: *key,
                    req: f.req,
                }
            };
            resend.push((home, msg));
        }
        self.profile.metrics.fault.put_retries += put_retries;
        self.profile.metrics.fault.prepare_retries += prepare_retries;
        self.profile.metrics.fault.fetch_retries += fetch_retries;
        for key in &refreshed {
            self.mem.cache_refresh_in_flight(key);
        }
        for (to, msg) in resend {
            // A send error means the peer is gone; the liveness monitor will
            // declare it dead and re-route, so keep retrying until then.
            let _ = self.endpoint.send(to, msg);
        }
        Ok(())
    }

    /// Beacons a heartbeat to the master when one is due.
    pub(crate) fn maybe_heartbeat(&mut self) {
        let master = self.layout.topology.master();
        let Some(ft) = self.ft.as_mut() else {
            return;
        };
        if ft.crashed || ft.last_beat.elapsed() < ft.cfg.heartbeat_interval {
            return;
        }
        ft.last_beat = Instant::now();
        let _ = self.endpoint.send(master, SipMsg::Heartbeat);
    }

    /// Fires the deterministic crash schedule (and notices fabric-scheduled
    /// crashes): once this worker has completed its configured number of
    /// pardo iterations, it kills its endpoint and unwinds. Called at
    /// iteration boundaries so a crashed rank's last epoch checkpoint is
    /// always consistent.
    pub(crate) fn maybe_crash(&mut self) -> Result<(), RuntimeError> {
        let widx = self.worker_index();
        let rank = self.endpoint.rank();
        if self.endpoint.is_crashed() {
            if let Some(ft) = self.ft.as_mut() {
                ft.crashed = true;
            }
            return Err(RuntimeError::Comm {
                kind: CommKind::RankDead,
                rank,
                key: None,
                context: "rank crashed (fabric fault schedule)".into(),
            });
        }
        let iters = self.pardo_iters_done;
        let Some(ft) = self.ft.as_mut() else {
            return Ok(());
        };
        let Some(crash) = ft.cfg.crash else {
            return Ok(());
        };
        if ft.crashed || crash.worker != widx || iters < crash.after_iterations {
            return Ok(());
        }
        ft.crashed = true;
        self.endpoint.kill();
        Err(RuntimeError::Comm {
            kind: CommKind::RankDead,
            rank,
            key: None,
            context: "injected crash (crash schedule)".into(),
        })
    }

    /// Bookkeeping after one completed pardo iteration: drives the crash
    /// schedule and, under fault tolerance, chunk acknowledgements.
    pub(crate) fn note_pardo_iter_done(&mut self, pardo_pc: u32, epoch: u64) {
        self.pardo_iters_done += 1;
        let master = self.layout.topology.master();
        let Some(ft) = self.ft.as_mut() else {
            return;
        };
        if ft.in_takeover {
            return; // the takeover runner acks the whole chunk itself
        }
        let Some(front) = ft.chunk_acks.front_mut() else {
            return;
        };
        front.1 = front.1.saturating_sub(1);
        if front.1 == 0 {
            let chunk = front.0;
            ft.chunk_acks.pop_front();
            let _ = self.endpoint.send(
                master,
                SipMsg::ChunkDone {
                    pardo_pc,
                    epoch,
                    chunk,
                },
            );
        }
    }

    /// Runs the fault-tolerance epoch transition after a `sip_barrier`
    /// release (the epoch counter has already advanced): checkpoint the
    /// authoritative blocks when a crash is possible, clear the put journal,
    /// and prune the applied-op window.
    pub(crate) fn on_sip_barrier_released(&mut self) {
        let widx = self.worker_index();
        let epoch = self.dist_epoch;
        let Some(ft) = self.ft.as_mut() else {
            return;
        };
        if ft.cfg.expects_crash() {
            if let Some(dir) = &self.run_dir {
                let path = ft::epoch_ckpt_path(dir, widx);
                // The snapshot shares the authoritative blocks' allocations.
                let snapshot = self.mem.snapshot_home();
                if let Err(e) = ft::write_epoch_checkpoint(&path, epoch, &snapshot, &ft.applied) {
                    self.warnings.push(format!("epoch checkpoint failed: {e}"));
                }
            }
        }
        ft.journal.clear();
        ft.prune_applied(epoch);
    }

    /// Handles a `RankDead` broadcast: marks the worker dead, inherits the
    /// corpse's applied-op window (so journal replay cannot double-apply
    /// what its restored checkpoint already contains), replays current-epoch
    /// puts that were homed there, and re-routes in-flight fetches.
    fn on_rank_dead(&mut self, dead_rank: Rank, inherited_ops: Vec<u64>) {
        if !self.layout.topology.is_worker(dead_rank) {
            return;
        }
        let dead_idx = self.layout.topology.worker_index(dead_rank);
        let epoch = self.dist_epoch;
        let layout = Arc::clone(&self.layout);
        let Some(ft) = self.ft.as_mut() else {
            return;
        };
        if ft.dead.get(dead_idx).copied().unwrap_or(true) {
            return; // unknown index or already processed
        }
        let prev_dead = ft.dead.clone();
        ft.dead[dead_idx] = true;
        self.trace.instant(EventKind::Recovery {
            what: RecoveryEvent::RankDead,
        });
        for op in inherited_ops {
            ft.applied.entry(op).or_insert(epoch);
        }
        let retry_timeout = ft.cfg.retry_timeout;
        let mut sends: Vec<(Rank, SipMsg)> = Vec::new();
        // Replay this epoch's puts that were homed at the corpse. The
        // master restored the corpse's last checkpoint to the new homes
        // *before* broadcasting the death, so replay lands on (or dedups
        // against) consistent state. The journal is a superset of the
        // pending puts, so unacked dead-homed puts are re-armed here too.
        // Each replay shares the journal entry's allocation.
        let mut replays = 0u64;
        let to_replay: Vec<(u64, BlockKey, BlockHandle, PutMode, Rank)> = ft
            .journal
            .iter()
            .filter(|e| layout.home_of_distributed_excluding(&e.key, &prev_dead) == dead_rank)
            .map(|e| {
                let new_home = layout.home_of_distributed_excluding(&e.key, &ft.dead);
                (e.op, e.key, e.data.clone(), e.mode, new_home)
            })
            .collect();
        for (op, key, data, mode, new_home) in to_replay {
            replays += 1;
            let msg = ft.arm_flight(OpId(op), key, data, mode, false);
            sends.push((new_home, msg));
        }
        // Re-route unanswered fetches that were addressed to the corpse.
        let mut reroutes = 0u64;
        for (key, f) in ft.fetches.iter_mut() {
            if f.served || layout.home_of_distributed_excluding(key, &prev_dead) != dead_rank {
                continue;
            }
            let new_home = layout.home_of_distributed_excluding(key, &ft.dead);
            f.sent_at = Instant::now();
            f.timeout = retry_timeout;
            f.attempts = 0;
            reroutes += 1;
            sends.push((
                new_home,
                SipMsg::GetBlock {
                    key: *key,
                    req: f.req,
                },
            ));
        }
        self.profile.metrics.fault.journal_replays += replays;
        self.profile.metrics.fault.reroutes += reroutes;
        for (to, msg) in sends {
            let _ = self.endpoint.send(to, msg);
        }
    }
}
