//! The super-instruction registry.
//!
//! "Non-intrinsic super instructions can be added to the SIP without changing
//! the SIAL language itself and are invoked from SIAL programs using the
//! `execute` command." Where ACES III registers Fortran kernels, we register
//! Rust closures. A super instruction sees only its arguments — blocks,
//! scalars, index values — and performs no communication, exactly the
//! contract of §III.

use crate::error::RuntimeError;
use sia_blocks::Block;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One resolved argument of an `execute` call. Blocks and scalars are
/// writable (a super instruction's outputs are blocks/scalars it was passed);
/// index values are read-only.
pub enum SuperArg {
    /// A block argument with its segment coordinates.
    Block {
        /// Segment values the SIAL reference carried.
        segs: Vec<i64>,
        /// The block (written back after the call).
        block: Block,
    },
    /// A scalar argument (written back after the call).
    Scalar(f64),
    /// The current value of an index argument.
    Index(i64),
}

impl SuperArg {
    /// The block, or an error naming the instruction.
    pub fn block_mut(&mut self) -> Result<&mut Block, String> {
        match self {
            SuperArg::Block { block, .. } => Ok(block),
            _ => Err("expected a block argument".into()),
        }
    }

    /// The segment coordinates of a block argument.
    pub fn segs(&self) -> Result<&[i64], String> {
        match self {
            SuperArg::Block { segs, .. } => Ok(segs),
            _ => Err("expected a block argument".into()),
        }
    }

    /// The scalar value.
    pub fn scalar(&self) -> Result<f64, String> {
        match self {
            SuperArg::Scalar(v) => Ok(*v),
            SuperArg::Index(v) => Ok(*v as f64),
            _ => Err("expected a scalar argument".into()),
        }
    }

    /// Writes a scalar argument.
    pub fn set_scalar(&mut self, v: f64) -> Result<(), String> {
        match self {
            SuperArg::Scalar(slot) => {
                *slot = v;
                Ok(())
            }
            _ => Err("expected a scalar argument".into()),
        }
    }
}

/// Read-only execution environment handed to super instructions.
#[derive(Debug, Clone, Copy)]
pub struct SuperEnv {
    /// This worker's 0-based index.
    pub worker: usize,
    /// Total workers.
    pub workers: usize,
}

/// A registered super instruction.
pub type SuperFn = dyn Fn(&mut [SuperArg], &SuperEnv) -> Result<(), String> + Send + Sync + 'static;

/// Registry mapping `execute` names to implementations. Cheap to clone; the
/// SIP hands one clone to every worker.
#[derive(Clone, Default)]
pub struct SuperRegistry {
    fns: HashMap<String, Arc<SuperFn>>,
}

impl SuperRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a super instruction.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&mut [SuperArg], &SuperEnv) -> Result<(), String> + Send + Sync + 'static,
    ) -> &mut Self {
        self.fns.insert(name.to_string(), Arc::new(f));
        self
    }

    /// Invokes a super instruction.
    pub fn invoke(
        &self,
        name: &str,
        args: &mut [SuperArg],
        env: &SuperEnv,
    ) -> Result<(), RuntimeError> {
        let Some(f) = self.fns.get(name) else {
            return Err(RuntimeError::UnknownSuperInstruction(name.to_string()));
        };
        f(args, env).map_err(|detail| RuntimeError::SuperInstruction {
            name: name.to_string(),
            detail,
        })
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// Registered names (sorted).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.fns.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

impl fmt::Debug for SuperRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SuperRegistry({:?})", self.names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_blocks::Shape;

    fn env() -> SuperEnv {
        SuperEnv {
            worker: 0,
            workers: 1,
        }
    }

    #[test]
    fn register_and_invoke() {
        let mut reg = SuperRegistry::new();
        reg.register("fill_7", |args, _env| {
            args[0].block_mut()?.fill(7.0);
            Ok(())
        });
        let mut args = vec![SuperArg::Block {
            segs: vec![1, 2],
            block: Block::zeros(Shape::new(&[2, 2])),
        }];
        reg.invoke("fill_7", &mut args, &env()).unwrap();
        assert!(args[0]
            .block_mut()
            .unwrap()
            .data()
            .iter()
            .all(|&x| x == 7.0));
    }

    #[test]
    fn unknown_name_is_error() {
        let reg = SuperRegistry::new();
        let err = reg.invoke("nope", &mut [], &env()).unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownSuperInstruction(_)));
    }

    #[test]
    fn failure_carries_name_and_detail() {
        let mut reg = SuperRegistry::new();
        reg.register("boom", |_args, _env| Err("bad day".into()));
        let err = reg.invoke("boom", &mut [], &env()).unwrap_err();
        match err {
            RuntimeError::SuperInstruction { name, detail } => {
                assert_eq!(name, "boom");
                assert_eq!(detail, "bad day");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scalar_args_read_write() {
        let mut reg = SuperRegistry::new();
        reg.register("double", |args, _env| {
            let v = args[0].scalar()?;
            args[0].set_scalar(v * 2.0)
        });
        let mut args = vec![SuperArg::Scalar(21.0)];
        reg.invoke("double", &mut args, &env()).unwrap();
        assert_eq!(args[0].scalar().unwrap(), 42.0);
    }

    #[test]
    fn index_args_are_read_only_scalars() {
        let mut args = [SuperArg::Index(5)];
        assert_eq!(args[0].scalar().unwrap(), 5.0);
        assert!(args[0].set_scalar(1.0).is_err());
        assert!(args[0].block_mut().is_err());
    }

    #[test]
    fn segs_visible_to_kernel() {
        let mut reg = SuperRegistry::new();
        reg.register("seg_sum", |args, _env| {
            let segs: Vec<i64> = args[0].segs()?.to_vec();
            let b = args[0].block_mut()?;
            b.fill(segs.iter().sum::<i64>() as f64);
            Ok(())
        });
        let mut args = vec![SuperArg::Block {
            segs: vec![3, 4],
            block: Block::zeros(Shape::new(&[2])),
        }];
        reg.invoke("seg_sum", &mut args, &env()).unwrap();
        assert_eq!(args[0].block_mut().unwrap().data()[0], 7.0);
    }

    #[test]
    fn names_sorted() {
        let mut reg = SuperRegistry::new();
        reg.register("b", |_, _| Ok(()));
        reg.register("a", |_, _| Ok(()));
        assert_eq!(reg.names(), vec!["a", "b"]);
    }
}
