//! The unified metrics model.
//!
//! Every counter the runtime keeps — cache, memory, contraction, comm
//! flights, wait causes, fault tolerance, recovery, I/O servers, fabric
//! injection — lives behind one [`Metrics`] registry with one merge
//! discipline (the [`Merge`] trait), one JSON serialization path and one
//! text renderer, both driven by the same [`Section`] model. Workers carry
//! a `Metrics` in their [`WorkerProfile`](crate::profile::WorkerProfile);
//! the master folds them (plus its own recovery counters and the I/O
//! servers' counters) into the merged registry surfaced by
//! [`ProfileReport`](crate::profile::ProfileReport).
//!
//! The paper's SIP "keeps track of very detailed performance metrics
//! without an impact on performance"; all counters here are plain integer
//! adds on paths that already do block-sized work.

use std::fmt;

/// One merge discipline for every counter group.
///
/// Replaces the old per-struct conventions (`FaultStats::absorb`,
/// `MemoryStats::absorb`, `ContractStats::merge`, ad-hoc `+=` loops):
/// every group documents its semantics (sum vs per-rank maximum) in its
/// one `merge` impl, and [`Metrics::merge`] delegates to all of them.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);
}

/// True when a counter group is all-default (nothing to report).
pub fn quiet<T: Default + PartialEq>(t: &T) -> bool {
    *t == T::default()
}

/// Why a worker was blocked. Every `wait_until` in the runtime attributes
/// its elapsed time to exactly one cause, giving the `--profile` wait
/// breakdown and the trace wait spans a shared vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitCause {
    /// Waiting for a remote block to arrive (GET/REQUEST reply).
    BlockArrival,
    /// Waiting for the master to assign a pardo chunk.
    ChunkAssign,
    /// Waiting for a sip_barrier release.
    SipBarrier,
    /// Waiting for a server_barrier release (served-array epoch commit).
    ServerBarrier,
    /// Draining outstanding PUT/PREPARE acks before a barrier.
    AckDrain,
    /// Waiting for a collective (sip_allreduce) result.
    Collective,
    /// Waiting for checkpoint save/restore round-trips.
    Checkpoint,
    /// Waiting on recovery work (takeover replays, inherited acks).
    Recovery,
}

impl WaitCause {
    /// All causes, in stable report order.
    pub const ALL: [WaitCause; 8] = [
        WaitCause::BlockArrival,
        WaitCause::ChunkAssign,
        WaitCause::SipBarrier,
        WaitCause::ServerBarrier,
        WaitCause::AckDrain,
        WaitCause::Collective,
        WaitCause::Checkpoint,
        WaitCause::Recovery,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            WaitCause::BlockArrival => 0,
            WaitCause::ChunkAssign => 1,
            WaitCause::SipBarrier => 2,
            WaitCause::ServerBarrier => 3,
            WaitCause::AckDrain => 4,
            WaitCause::Collective => 5,
            WaitCause::Checkpoint => 6,
            WaitCause::Recovery => 7,
        }
    }

    /// Machine-readable key (JSON field name).
    pub fn key(self) -> &'static str {
        match self {
            WaitCause::BlockArrival => "block_arrival",
            WaitCause::ChunkAssign => "chunk_assign",
            WaitCause::SipBarrier => "sip_barrier",
            WaitCause::ServerBarrier => "server_barrier",
            WaitCause::AckDrain => "ack_drain",
            WaitCause::Collective => "collective",
            WaitCause::Checkpoint => "checkpoint",
            WaitCause::Recovery => "recovery",
        }
    }

    /// Human label for the rendered report and trace span names.
    pub fn label(self) -> &'static str {
        match self {
            WaitCause::BlockArrival => "block arrival",
            WaitCause::ChunkAssign => "chunk assignment",
            WaitCause::SipBarrier => "sip barrier",
            WaitCause::ServerBarrier => "server barrier",
            WaitCause::AckDrain => "ack drain",
            WaitCause::Collective => "collective",
            WaitCause::Checkpoint => "checkpoint",
            WaitCause::Recovery => "recovery",
        }
    }
}

/// Wall time blocked, attributed by [`WaitCause`]. Nanoseconds.
///
/// This is the *single* accounting point for wait totals: the per-pc wait
/// column in the profile is attribution only, so a blocked instruction
/// that retries (re-arms its fetch and waits again) can never double-count
/// into a total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Nanoseconds blocked, indexed by [`WaitCause::index`].
    pub nanos: [u64; 8],
}

impl WaitStats {
    /// Adds `d` to one cause.
    pub fn add(&mut self, cause: WaitCause, d: std::time::Duration) {
        self.nanos[cause.index()] += d.as_nanos() as u64;
    }

    /// Nanoseconds attributed to one cause.
    pub fn get(&self, cause: WaitCause) -> u64 {
        self.nanos[cause.index()]
    }

    /// Total wait nanoseconds over all causes.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

impl Merge for WaitStats {
    fn merge(&mut self, other: &Self) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a += b;
        }
    }
}

/// Communication-flight counters: the data behind the overlap metric.
///
/// A *flight* is the interval from issuing a remote block fetch
/// (GET/REQUEST) to its `BlockData` arrival. The *exposed* share is the
/// part the worker spent blocked waiting for that specific block; the
/// rest was hidden under computation (the paper's prefetch/look-ahead
/// claim, measured).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Remote block fetches completed (GET/REQUEST round-trips).
    pub fetches: u64,
    /// Total nanoseconds fetches spent in flight.
    pub flight_nanos: u64,
    /// Nanoseconds of flight time the worker spent blocked on the block.
    pub exposed_nanos: u64,
    /// PUT round-trips acknowledged.
    pub puts_acked: u64,
    /// PREPARE round-trips acknowledged.
    pub prepares_acked: u64,
}

impl CommStats {
    /// Flight nanoseconds hidden under computation.
    pub fn hidden_nanos(&self) -> u64 {
        self.flight_nanos
            .saturating_sub(self.exposed_nanos.min(self.flight_nanos))
    }

    /// Fraction of comm-flight time hidden under compute, in `[0, 1]`.
    /// `None` when no fetches flew (nothing to overlap).
    pub fn overlap(&self) -> Option<f64> {
        if self.fetches == 0 || self.flight_nanos == 0 {
            return None;
        }
        Some(self.hidden_nanos() as f64 / self.flight_nanos as f64)
    }
}

impl Merge for CommStats {
    fn merge(&mut self, other: &Self) {
        self.fetches += other.fetches;
        self.flight_nanos += other.flight_nanos;
        self.exposed_nanos += other.exposed_nanos;
        self.puts_acked += other.puts_acked;
        self.prepares_acked += other.prepares_acked;
    }
}

/// Per-worker fault-tolerance counters (all zero on fault-free runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// PUT retries after an ack timeout.
    pub put_retries: u64,
    /// PREPARE retries after an ack timeout.
    pub prepare_retries: u64,
    /// GET/REQUEST re-issues after a reply timeout.
    pub fetch_retries: u64,
    /// Duplicate PUTs suppressed on the receiving side.
    pub dup_puts_suppressed: u64,
    /// Journaled puts replayed to a new home after a rank death.
    pub journal_replays: u64,
    /// Operations re-routed because their home died.
    pub reroutes: u64,
}

impl FaultStats {
    /// Total retried operations (the `--profile` headline number).
    pub fn retries(&self) -> u64 {
        self.put_retries + self.prepare_retries + self.fetch_retries
    }
}

impl Merge for FaultStats {
    fn merge(&mut self, other: &Self) {
        self.put_retries += other.put_retries;
        self.prepare_retries += other.prepare_retries;
        self.fetch_retries += other.fetch_retries;
        self.dup_puts_suppressed += other.dup_puts_suppressed;
        self.journal_replays += other.journal_replays;
        self.reroutes += other.reroutes;
    }
}

/// Master-side recovery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Workers declared dead by the liveness monitor.
    pub ranks_died: u64,
    /// Pardo chunks re-queued from dead workers to survivors.
    pub requeued_chunks: u64,
    /// Blocks restored from a dead worker's epoch checkpoint.
    pub restored_blocks: u64,
    /// Re-queued chunks dispatched to workers parked at a barrier.
    pub takeover_chunks: u64,
}

impl Merge for RecoveryStats {
    fn merge(&mut self, other: &Self) {
        self.ranks_died += other.ranks_died;
        self.requeued_chunks += other.requeued_chunks;
        self.restored_blocks += other.restored_blocks;
        self.takeover_chunks += other.takeover_chunks;
    }
}

/// Counters an I/O server reports (shipped to the master at shutdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// REQUESTs served from the server's block cache.
    pub cache_hits: u64,
    /// REQUESTs that went to disk.
    pub disk_reads: u64,
    /// Dirty blocks written back to disk.
    pub disk_writes: u64,
    /// REQUESTs for never-written blocks served as zeros.
    pub zero_serves: u64,
    /// PREPAREs applied.
    pub prepares: u64,
    /// Duplicate PREPAREs suppressed by op-id dedup.
    pub dup_prepares_suppressed: u64,
    /// REQUESTs served from the cross-job warm cache instead of disk
    /// (serving mode only; always 0 in one-shot runs).
    pub warm_hits: u64,
}

impl Merge for ServerStats {
    fn merge(&mut self, other: &Self) {
        self.cache_hits += other.cache_hits;
        self.disk_reads += other.disk_reads;
        self.disk_writes += other.disk_writes;
        self.zero_serves += other.zero_serves;
        self.prepares += other.prepares;
        self.dup_prepares_suppressed += other.dup_prepares_suppressed;
        self.warm_hits += other.warm_hits;
    }
}

/// Counters for block-sparse screening: work and traffic the runtime proved
/// away instead of performing (Cauchy–Schwarz norm bounds, typed absence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseStats {
    /// Contractions skipped because an operand block was absent or the
    /// norm-product bound fell under the screening threshold.
    pub blocks_skipped: u64,
    /// Payload bytes that never crossed the fabric: dropped puts/prepares
    /// plus absent replies to get/request.
    pub bytes_not_shipped: u64,
    /// Floating-point operations avoided by skipped contractions.
    pub flops_avoided: u64,
}

impl Merge for SparseStats {
    fn merge(&mut self, other: &Self) {
        self.blocks_skipped += other.blocks_skipped;
        self.bytes_not_shipped += other.bytes_not_shipped;
        self.flops_avoided += other.flops_avoided;
    }
}

/// Communication-planner counters: what the plan predicted, what the run
/// measured, and how much traffic the multicast/batching transports moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Fabric messages coalesced away by envelope batching (n staged
    /// messages shipped as one envelope count n−1 here).
    pub coalesced_messages: u64,
    /// Blocks pushed or forwarded along multicast trees.
    pub multicast_blocks: u64,
    /// Payload bytes shipped by multicast pushes.
    pub multicast_bytes: u64,
    /// Planner-predicted fabric bytes for the whole run (filled on the
    /// merged fleet view).
    pub predicted_bytes: u64,
    /// Measured fabric bytes (filled on the merged fleet view).
    pub actual_bytes: u64,
}

impl Merge for PlanStats {
    /// Event counters sum; the run-level predicted/actual figures are
    /// filled on the merged view only, so the max keeps them intact.
    fn merge(&mut self, other: &Self) {
        self.coalesced_messages += other.coalesced_messages;
        self.multicast_blocks += other.multicast_blocks;
        self.multicast_bytes += other.multicast_bytes;
        self.predicted_bytes = self.predicted_bytes.max(other.predicted_bytes);
        self.actual_bytes = self.actual_bytes.max(other.actual_bytes);
    }
}

impl Merge for crate::cache::CacheStats {
    /// Event counters: fleet sums.
    fn merge(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.in_flight_hits += other.in_flight_hits;
        self.evictions += other.evictions;
        self.refetches += other.refetches;
        self.reissues += other.reissues;
    }
}

impl Merge for crate::memory::MemoryStats {
    /// Byte gauges take the per-rank maximum (the quantity comparable to
    /// the per-worker dry-run estimate and budget); event counters sum.
    fn merge(&mut self, other: &Self) {
        self.pinned_bytes = self.pinned_bytes.max(other.pinned_bytes);
        self.cached_bytes = self.cached_bytes.max(other.cached_bytes);
        self.high_water_bytes = self.high_water_bytes.max(other.high_water_bytes);
        self.budget_bytes = self.budget_bytes.max(other.budget_bytes);
        self.clones_avoided += other.clones_avoided;
        self.bytes_clone_avoided += other.bytes_clone_avoided;
        self.deep_copies += other.deep_copies;
        self.budget_evictions += other.budget_evictions;
    }
}

impl Merge for sia_blocks::ContractStats {
    /// Event counters: fleet sums (delegates to the blocks crate).
    fn merge(&mut self, other: &Self) {
        sia_blocks::ContractStats::merge(self, other);
    }
}

impl Merge for sia_blocks::PackStats {
    /// Event counters: fleet sums (delegates to the blocks crate).
    fn merge(&mut self, other: &Self) {
        sia_blocks::PackStats::merge(self, other);
    }
}

impl Merge for sia_fabric::FaultSnapshot {
    /// Injection counters sum; `crashed` ors.
    fn merge(&mut self, other: &Self) {
        self.absorb(other);
    }
}

/// The unified counter registry: one instance per rank, merged into one
/// fleet view by the master. All groups are plain `Copy` counter structs;
/// merging follows each group's [`Merge`] impl.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Remote-copy cache counters.
    pub cache: crate::cache::CacheStats,
    /// Block-manager byte accounting and zero-copy counters.
    pub memory: crate::memory::MemoryStats,
    /// Contraction hot-path counters (transpose folds, scratch reuse).
    pub contraction: sia_blocks::ContractStats,
    /// Permute-on-pack GEMM counters (folded reorders, pack pool reuse).
    pub pack: sia_blocks::PackStats,
    /// Communication flights and the overlap measurement.
    pub comm: CommStats,
    /// Blocked time by cause.
    pub wait: WaitStats,
    /// Fault-tolerance retry/dedup counters.
    pub fault: FaultStats,
    /// Master-side recovery counters.
    pub recovery: RecoveryStats,
    /// I/O-server counters.
    pub server: ServerStats,
    /// Fabric-level injection counters.
    pub fabric: sia_fabric::FaultSnapshot,
    /// Block-sparse screening counters.
    pub sparse: SparseStats,
    /// Communication-planner counters (multicast, batching,
    /// predicted-vs-actual volume).
    pub plan: PlanStats,
}

impl Merge for Metrics {
    fn merge(&mut self, other: &Self) {
        self.cache.merge(&other.cache);
        self.memory.merge(&other.memory);
        Merge::merge(&mut self.contraction, &other.contraction);
        Merge::merge(&mut self.pack, &other.pack);
        self.comm.merge(&other.comm);
        self.wait.merge(&other.wait);
        self.fault.merge(&other.fault);
        self.recovery.merge(&other.recovery);
        self.server.merge(&other.server);
        Merge::merge(&mut self.fabric, &other.fabric);
        self.sparse.merge(&other.sparse);
        self.plan.merge(&other.plan);
    }
}

/// A single field of the report model: a JSON key, a human label, and a
/// value. The text renderer prints `"{value} {label}"`, the JSON writer
/// emits `"key": value` — one model, two encodings.
#[derive(Debug, Clone)]
pub struct Field {
    /// JSON object key.
    pub key: &'static str,
    /// Human-readable label (rendered after the value).
    pub label: &'static str,
    /// The value.
    pub value: Value,
}

/// A field value.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// Unsigned counter.
    U64(u64),
    /// Ratio/fraction.
    F64(f64),
    /// Flag.
    Bool(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.3}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A named group of fields (one JSON sub-object, one report line).
#[derive(Debug, Clone)]
pub struct Section {
    /// Group name (JSON key and report line prefix).
    pub name: &'static str,
    /// Suppress the report line when the whole group is default-valued.
    pub quiet: bool,
    /// The fields.
    pub fields: Vec<Field>,
}

fn field(key: &'static str, label: &'static str, v: u64) -> Field {
    Field {
        key,
        label,
        value: Value::U64(v),
    }
}

impl Metrics {
    /// The report model: every counter group as a [`Section`]. Both the
    /// text renderer ([`Metrics::fmt`]) and the JSON writer
    /// ([`Metrics::to_json`]) are driven by this one model.
    pub fn sections(&self) -> Vec<Section> {
        let c = &self.cache;
        let m = &self.memory;
        let k = &self.contraction;
        let p = &self.pack;
        let f = &self.fault;
        let r = &self.recovery;
        let s = &self.server;
        let fb = &self.fabric;
        let sp = &self.sparse;
        let pl = &self.plan;
        let mut wait_fields: Vec<Field> = WaitCause::ALL
            .iter()
            .map(|&cause| Field {
                key: cause.key(),
                label: cause.label(),
                value: Value::U64(self.wait.get(cause)),
            })
            .collect();
        wait_fields.insert(0, field("total_ns", "ns total", self.wait.total_nanos()));
        let mut comm_fields = vec![
            field("fetches", "fetches", self.comm.fetches),
            field("flight_ns", "ns in flight", self.comm.flight_nanos),
            field("exposed_ns", "ns exposed", self.comm.exposed_nanos),
            field("hidden_ns", "ns hidden", self.comm.hidden_nanos()),
            field("puts_acked", "puts acked", self.comm.puts_acked),
            field("prepares_acked", "prepares acked", self.comm.prepares_acked),
        ];
        comm_fields.push(Field {
            key: "overlap",
            label: "overlap",
            value: Value::F64(self.comm.overlap().unwrap_or(0.0)),
        });
        vec![
            Section {
                name: "cache",
                quiet: quiet(c),
                fields: vec![
                    field("hits", "hits", c.hits),
                    field("misses", "misses", c.misses),
                    field("in_flight_hits", "in-flight hits", c.in_flight_hits),
                    field("evictions", "evictions", c.evictions),
                    field("refetches", "refetches", c.refetches),
                    field("reissues", "reissues", c.reissues),
                ],
            },
            Section {
                name: "memory",
                quiet: quiet(m),
                fields: vec![
                    field("high_water_bytes", "bytes high water", m.high_water_bytes),
                    field("budget_bytes", "bytes budget", m.budget_bytes),
                    field("pinned_bytes", "bytes pinned", m.pinned_bytes),
                    field("cached_bytes", "bytes cached", m.cached_bytes),
                    field("clones_avoided", "clones avoided", m.clones_avoided),
                    field(
                        "bytes_clone_avoided",
                        "bytes uncopied",
                        m.bytes_clone_avoided,
                    ),
                    field("deep_copies", "deep copies", m.deep_copies),
                    field("budget_evictions", "budget evictions", m.budget_evictions),
                ],
            },
            Section {
                name: "contract",
                quiet: quiet(k),
                fields: vec![
                    field("contractions", "contractions", k.contractions),
                    field("permutes_avoided", "permutes avoided", k.permutes_avoided),
                    field(
                        "permutes_performed",
                        "permutes performed",
                        k.permutes_performed,
                    ),
                    field("bytes_not_copied", "bytes uncopied", k.bytes_not_copied),
                    field(
                        "scratch_pool_hits",
                        "scratch pool hits",
                        k.scratch_pool_hits,
                    ),
                    field(
                        "scratch_pool_misses",
                        "scratch pool misses",
                        k.scratch_pool_misses,
                    ),
                ],
            },
            Section {
                name: "pack",
                quiet: quiet(p),
                fields: vec![
                    field("permutes_folded", "permutes folded", p.permutes_folded),
                    field(
                        "permutes_materialized",
                        "permutes materialized",
                        p.permutes_materialized,
                    ),
                    field("packed_bytes", "bytes packed", p.packed_bytes),
                    field("pack_pool_hits", "pack pool hits", p.pack_pool_hits),
                    field("pack_pool_misses", "pack pool misses", p.pack_pool_misses),
                ],
            },
            Section {
                name: "comm",
                quiet: quiet(&self.comm),
                fields: comm_fields,
            },
            Section {
                name: "wait",
                quiet: quiet(&self.wait),
                fields: wait_fields,
            },
            Section {
                name: "fault",
                quiet: quiet(f),
                fields: vec![
                    field("put_retries", "put retries", f.put_retries),
                    field("prepare_retries", "prepare retries", f.prepare_retries),
                    field("fetch_retries", "fetch retries", f.fetch_retries),
                    field(
                        "dup_puts_suppressed",
                        "duplicate puts suppressed",
                        f.dup_puts_suppressed,
                    ),
                    field("journal_replays", "journal replays", f.journal_replays),
                    field("reroutes", "re-routes", f.reroutes),
                ],
            },
            Section {
                name: "recovery",
                quiet: quiet(r),
                fields: vec![
                    field("ranks_died", "ranks died", r.ranks_died),
                    field("requeued_chunks", "chunks re-queued", r.requeued_chunks),
                    field("restored_blocks", "blocks restored", r.restored_blocks),
                    field("takeover_chunks", "takeover chunks", r.takeover_chunks),
                ],
            },
            Section {
                name: "server",
                quiet: quiet(s),
                fields: vec![
                    field("cache_hits", "cache hits", s.cache_hits),
                    field("disk_reads", "disk reads", s.disk_reads),
                    field("disk_writes", "disk writes", s.disk_writes),
                    field("zero_serves", "zero serves", s.zero_serves),
                    field("prepares", "prepares", s.prepares),
                    field(
                        "dup_prepares_suppressed",
                        "duplicate prepares suppressed",
                        s.dup_prepares_suppressed,
                    ),
                    field("warm_hits", "warm-cache hits", s.warm_hits),
                ],
            },
            Section {
                name: "fabric",
                quiet: quiet(fb),
                fields: vec![
                    field("dropped", "dropped", fb.dropped),
                    field("duplicated", "duplicated", fb.duplicated),
                    field("delayed", "delayed", fb.delayed),
                    Field {
                        key: "crashed",
                        label: "rank crash",
                        value: Value::Bool(fb.crashed),
                    },
                ],
            },
            Section {
                name: "sparse",
                quiet: quiet(sp),
                fields: vec![
                    field("blocks_skipped", "blocks skipped", sp.blocks_skipped),
                    field(
                        "bytes_not_shipped",
                        "bytes not shipped",
                        sp.bytes_not_shipped,
                    ),
                    field("flops_avoided", "flops avoided", sp.flops_avoided),
                ],
            },
            Section {
                name: "comm_plan",
                quiet: quiet(pl),
                fields: vec![
                    field(
                        "coalesced_messages",
                        "messages coalesced",
                        pl.coalesced_messages,
                    ),
                    field("multicast_blocks", "blocks multicast", pl.multicast_blocks),
                    field("multicast_bytes", "bytes multicast", pl.multicast_bytes),
                    field("predicted_bytes", "bytes predicted", pl.predicted_bytes),
                    field("actual_bytes", "bytes measured", pl.actual_bytes),
                ],
            },
        ]
    }

    /// The one JSON serialization path: a nested object, one sub-object
    /// per section, keys from the section model. Hand-rolled — no
    /// external dependencies.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        for s in self.sections() {
            w.key(s.name);
            w.begin_object();
            for f in &s.fields {
                w.key(f.key);
                w.value(f.value);
            }
            w.end_object();
        }
        w.end_object();
        w.finish()
    }
}

impl fmt::Display for Metrics {
    /// The one text renderer: `name: v label, v label, ...` per section,
    /// quiet sections suppressed.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in self.sections() {
            if s.quiet {
                continue;
            }
            write!(f, "{}:", s.name)?;
            for (i, fl) in s.fields.iter().enumerate() {
                let sep = if i == 0 { " " } else { ", " };
                match fl.value {
                    Value::Bool(b) => {
                        // Flags read as presence: print the label alone
                        // when set, skip when clear.
                        if b {
                            write!(f, "{sep}{}", fl.label)?;
                        } else if i == 0 {
                            write!(f, " ")?;
                        }
                    }
                    v => write!(f, "{sep}{v} {}", fl.label)?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Minimal JSON emitter shared by the metrics/profile/trace exports.
/// Tracks nesting and comma placement; values are written with the same
/// conventions everywhere (floats with millis precision where rendered,
/// raw integers for counters).
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    // True when the next item at the current depth needs a leading comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        JsonWriter {
            out: String::with_capacity(1024),
            need_comma: Vec::new(),
        }
    }

    fn pre_item(&mut self) {
        if let Some(n) = self.need_comma.last_mut() {
            if *n {
                self.out.push(',');
            }
            *n = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.pre_item();
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.pre_item();
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Writes `"key":` (the value must follow).
    pub fn key(&mut self, k: &str) {
        self.pre_item();
        self.push_string(k);
        self.out.push(':');
        // The value that follows is part of this item.
        if let Some(n) = self.need_comma.last_mut() {
            *n = false;
        }
    }

    /// Writes a [`Value`].
    pub fn value(&mut self, v: Value) {
        match v {
            Value::U64(x) => self.u64(x),
            Value::F64(x) => self.f64(x),
            Value::Bool(x) => self.bool(x),
        }
    }

    /// Writes an unsigned integer.
    pub fn u64(&mut self, v: u64) {
        self.pre_item();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float (6 significant decimals; NaN/inf map to null).
    pub fn f64(&mut self, v: f64) {
        self.pre_item();
        if v.is_finite() {
            self.out.push_str(&format!("{v:.6}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean.
    pub fn bool(&mut self, v: bool) {
        self.pre_item();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a pre-formatted bare number (used for trace `ts`/`dur`,
    /// which carry fixed nanosecond precision). The caller guarantees the
    /// text is a valid JSON number.
    pub fn raw_number(&mut self, n: &str) {
        self.pre_item();
        self.out.push_str(n);
    }

    /// Writes a string value (escaped).
    pub fn string(&mut self, s: &str) {
        self.pre_item();
        self.push_string(s);
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Consumes the writer, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Metrics::default();
        a.cache.hits = 3;
        a.memory.high_water_bytes = 100;
        a.memory.clones_avoided = 1;
        a.wait.add(WaitCause::BlockArrival, Duration::from_nanos(5));
        let mut b = Metrics::default();
        b.cache.hits = 4;
        b.memory.high_water_bytes = 70;
        b.memory.clones_avoided = 2;
        b.wait.add(WaitCause::SipBarrier, Duration::from_nanos(7));
        a.merge(&b);
        assert_eq!(a.cache.hits, 7);
        assert_eq!(a.memory.high_water_bytes, 100); // max, not sum
        assert_eq!(a.memory.clones_avoided, 3);
        assert_eq!(a.wait.total_nanos(), 12);
        assert_eq!(a.wait.get(WaitCause::SipBarrier), 7);
    }

    #[test]
    fn overlap_clamps_and_reports_none_when_idle() {
        let mut c = CommStats::default();
        assert_eq!(c.overlap(), None);
        c.fetches = 2;
        c.flight_nanos = 100;
        c.exposed_nanos = 25;
        assert!((c.overlap().unwrap() - 0.75).abs() < 1e-12);
        c.exposed_nanos = 1000; // exposure can overshoot flight by polling granularity
        assert_eq!(c.overlap().unwrap(), 0.0);
    }

    #[test]
    fn json_is_parseable_and_covers_sections() {
        let mut m = Metrics::default();
        m.cache.hits = 1;
        m.recovery.ranks_died = 2;
        let j = m.to_json();
        let v = crate::events::parse_json(&j).expect("metrics json parses");
        let obj = v.as_object().expect("top-level object");
        for name in [
            "cache",
            "memory",
            "contract",
            "pack",
            "comm",
            "wait",
            "fault",
            "recovery",
            "server",
            "fabric",
            "sparse",
            "comm_plan",
        ] {
            assert!(obj.iter().any(|(k, _)| k == name), "missing section {name}");
        }
    }

    #[test]
    fn renderer_keeps_recovery_phrase() {
        let mut m = Metrics::default();
        m.recovery.ranks_died = 1;
        let text = m.to_string();
        assert!(text.contains("ranks died"), "{text}");
        // Quiet sections are suppressed.
        assert!(!text.contains("fabric:"), "{text}");
    }

    #[test]
    fn writer_escapes_strings() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a\"b");
        w.string("x\ny");
        w.end_object();
        assert_eq!(w.finish(), "{\"a\\\"b\":\"x\\ny\"}");
    }
}
