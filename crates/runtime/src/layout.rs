//! Run configuration, rank topology, and the resolved data layout.
//!
//! [`Layout`] is built once at initialization: it resolves symbolic
//! constants, index ranges, segment sizes (the crucial tuning parameter the
//! paper keeps *out* of SIAL source), block shapes, and home placement. It is
//! shared read-only by the master, every worker, the dry run, and the trace
//! generator, so all of them agree on placement and sizes by construction.

use crate::error::RuntimeError;
use crate::msg::BlockKey;
use sia_blocks::Shape;
use sia_bytecode::{ArrayId, ArrayKind, ConstBindings, IndexId, IndexKind, Program};
use sia_fabric::{FaultPlan, Rank};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A deterministic, runtime-triggered worker crash: worker `worker` kills
/// its endpoint after executing `after_iterations` pardo iterations. Firing
/// at an iteration boundary (never mid-block-write) keeps the failure model
/// clean: a crashed worker's last epoch checkpoint is always consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// Worker index (0-based) to crash.
    pub worker: usize,
    /// Pardo iterations the worker completes before dying.
    pub after_iterations: u64,
}

/// Fault-tolerance configuration: the fabric-level fault plan plus the
/// runtime's retry, heartbeat, and liveness parameters. Present in
/// [`SipConfig::fault`] only when the run should exercise recovery paths;
/// `None` keeps every hot path identical to the fault-free build.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seeded fabric fault plan (drop/duplicate/delay probabilities).
    pub plan: FaultPlan,
    /// Optional deterministic worker crash.
    pub crash: Option<CrashSchedule>,
    /// How long an unacknowledged GET/REQUEST/PUT/PREPARE waits before its
    /// first retry.
    pub retry_timeout: Duration,
    /// Multiplier applied to the timeout after each retry.
    pub retry_backoff: f64,
    /// Retries before the operation fails with a `Comm { Timeout }` error.
    pub max_retries: u32,
    /// How often workers beacon a heartbeat to the master.
    pub heartbeat_interval: Duration,
    /// Silence span after which the master declares a worker dead.
    pub liveness_timeout: Duration,
}

impl FaultConfig {
    /// A fault configuration around a seeded plan, with retry/liveness
    /// parameters tuned for in-process fabrics (tens of milliseconds).
    pub fn new(plan: FaultPlan) -> Self {
        FaultConfig {
            plan,
            crash: None,
            retry_timeout: Duration::from_millis(40),
            retry_backoff: 2.0,
            max_retries: 8,
            heartbeat_interval: Duration::from_millis(10),
            liveness_timeout: Duration::from_millis(300),
        }
    }

    /// True when a worker crash is scheduled (enables epoch checkpointing
    /// and the master's liveness monitor aggressiveness).
    pub fn expects_crash(&self) -> bool {
        self.crash.is_some() || !self.plan.crashes.is_empty()
    }
}

/// Segment sizes per index type. "The same segment size applies to all
/// indices of a given type and is constant for the duration of the
/// computation."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Segment size used when no per-type override applies.
    pub default: usize,
    /// Override for `aoindex`.
    pub ao: Option<usize>,
    /// Override for `moindex`.
    pub mo: Option<usize>,
    /// Override for `moaindex`.
    pub moa: Option<usize>,
    /// Override for `mobindex`.
    pub mob: Option<usize>,
    /// Override for `laindex`.
    pub la: Option<usize>,
    /// Subsegments per segment (for subindices); must divide every segment
    /// size it is used with.
    pub nsub: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            default: 8,
            ao: None,
            mo: None,
            moa: None,
            mob: None,
            la: None,
            nsub: 2,
        }
    }
}

impl SegmentConfig {
    /// The segment size for an index kind (subindices resolve through their
    /// parent elsewhere; passing one here returns the default).
    pub fn seg_for(&self, kind: IndexKind) -> usize {
        match kind {
            IndexKind::AoIndex => self.ao.unwrap_or(self.default),
            IndexKind::MoIndex => self.mo.unwrap_or(self.default),
            IndexKind::MoAIndex => self.moa.unwrap_or(self.default),
            IndexKind::MoBIndex => self.mob.unwrap_or(self.default),
            IndexKind::LaIndex => self.la.unwrap_or(self.default),
            IndexKind::Simple | IndexKind::Subindex { .. } => self.default,
        }
    }
}

/// SIP run configuration.
#[derive(Debug, Clone)]
pub struct SipConfig {
    /// Number of worker ranks.
    pub workers: usize,
    /// Number of I/O server ranks (0 disables served arrays).
    pub io_servers: usize,
    /// Segment sizes.
    pub segments: SegmentConfig,
    /// Block-cache capacity (blocks) per worker.
    pub cache_blocks: usize,
    /// How many upcoming loop iterations the prefetcher requests ahead.
    pub prefetch_depth: usize,
    /// Per-worker block pool budget in bytes.
    pub pool_bytes: usize,
    /// Per-I/O-server in-memory cache capacity (blocks).
    pub server_cache_blocks: usize,
    /// Collect all distributed arrays to the master at the end of the run
    /// (for tests and small examples).
    pub collect_distributed: bool,
    /// Directory for served-array block files and checkpoints; a fresh
    /// temporary directory is created when `None`.
    pub run_dir: Option<PathBuf>,
    /// Override for the served-array block-file directory. `None` (the
    /// default) keeps served blocks under `run_dir/served`; the serving
    /// daemon points every job at one shared directory so jobs referencing
    /// the same served arrays hit the same files (and the warm cache).
    pub served_dir: Option<PathBuf>,
    /// Per-worker memory budget in **bytes** that the dry run checks against
    /// (`None` skips the feasibility gate but the estimate is still produced)
    /// and the block manager enforces at runtime.
    pub memory_budget: Option<u64>,
    /// Guided-scheduling divisor: first chunks are
    /// `remaining / (chunk_factor * workers)`, shrinking as work drains.
    /// Ignored when `chunk_policy` is set explicitly.
    pub chunk_factor: usize,
    /// Chunk-sizing policy override (`None` = guided with `chunk_factor`).
    pub chunk_policy: Option<crate::scheduler::ChunkPolicy>,
    /// Distributed-block placement strategy.
    pub placement: Placement,
    /// Intra-worker thread **count** for the block-contraction GEMM
    /// (1 = serial). [`SipConfigBuilder::build`] clamps this to the host's
    /// `available_parallelism`; the pre-clamp request is kept in
    /// `gemm_threads_requested`.
    pub gemm_threads: usize,
    /// The `gemm_threads` value as requested, before the builder clamped it
    /// to the host parallelism. Equal to `gemm_threads` when no clamp
    /// applied. The profile report calls out any difference.
    pub gemm_threads_requested: usize,
    /// Feed transpose-shaped operand permutations to the GEMM as layout
    /// flags instead of materializing permuted copies (ablation switch).
    pub fold_transposes: bool,
    /// Poll interval (a **`Duration`**; default 1 ms) of service loops that
    /// are idle but must keep draining messages (e.g. a finished worker
    /// serving GETs until shutdown).
    pub service_poll: Duration,
    /// Poll interval (a **`Duration`**; default 200 µs) while blocked on a
    /// specific event (block arrival, chunk assignment, barrier release).
    pub wait_poll: Duration,
    /// Fault injection and recovery; `None` (the default) runs on a perfect
    /// fabric with all recovery machinery disabled.
    pub fault: Option<FaultConfig>,
    /// Completed served-array epochs read from `run_dir`'s manifest at
    /// startup; surfaced to programs via `execute sip_resume_epoch s`. Set
    /// by the runtime, not by users.
    pub resumed_epochs: u64,
    /// Record per-rank trace events (instruction/wait/comm-flight spans,
    /// cache and recovery events) into preallocated ring buffers, merged
    /// into [`RunOutput::trace`](crate::RunOutput::trace) at shutdown.
    /// Off by default: a disabled sink costs one branch per record site
    /// and allocates nothing.
    pub trace: bool,
    /// Write the merged timeline as Chrome-trace/Perfetto JSON to this
    /// path at the end of the run. Setting a path implies `trace`.
    pub trace_path: Option<PathBuf>,
    /// Per-rank trace ring capacity in **events** (not bytes); when the
    /// ring fills, the oldest events are overwritten and counted as
    /// dropped. Default 65 536.
    pub trace_buffer_events: usize,
    /// Write the machine-readable profile (`sia.profile.v1` JSON) to this
    /// path at the end of the run.
    pub profile_json: Option<PathBuf>,
    /// Frobenius-norm screening threshold for `sparse` arrays: a `put`/
    /// `prepare` whose payload norm falls strictly under this bound drops
    /// the payload and records only the norm at the block's home. `0.0`
    /// (default) keeps every block — sparse arrays then differ from dense
    /// only in their typed-absence reads.
    pub sparsity_threshold: f64,
    /// Expected realized block fraction per sparse array (name → fraction
    /// in `0.0..=1.0`), used by the dry-run to estimate the *realized*
    /// footprint instead of the dense one. Arrays without a hint are
    /// estimated dense (conservative).
    pub sparsity_density: BTreeMap<String, f64>,
}

impl Default for SipConfig {
    fn default() -> Self {
        SipConfig {
            workers: 2,
            io_servers: 1,
            segments: SegmentConfig::default(),
            cache_blocks: 64,
            prefetch_depth: 2,
            pool_bytes: 256 << 20,
            server_cache_blocks: 64,
            collect_distributed: false,
            run_dir: None,
            served_dir: None,
            memory_budget: None,
            chunk_factor: 2,
            chunk_policy: None,
            placement: Placement::default(),
            gemm_threads: 1,
            gemm_threads_requested: 1,
            fold_transposes: true,
            service_poll: Duration::from_millis(1),
            wait_poll: Duration::from_micros(200),
            fault: None,
            resumed_epochs: 0,
            trace: false,
            trace_path: None,
            trace_buffer_events: crate::events::DEFAULT_TRACE_EVENTS,
            profile_json: None,
            sparsity_threshold: 0.0,
            sparsity_density: BTreeMap::new(),
        }
    }
}

impl SipConfig {
    /// A validating builder — the preferred way to construct a config.
    ///
    /// ```
    /// use sia_runtime::SipConfig;
    /// let config = SipConfig::builder()
    ///     .workers(4)
    ///     .io_servers(1)
    ///     .segment_size(8)
    ///     .collect_distributed(true)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.workers, 4);
    /// ```
    pub fn builder() -> SipConfigBuilder {
        SipConfigBuilder {
            config: SipConfig::default(),
        }
    }

    /// True when fault tolerance (retry/recovery machinery) is active.
    pub fn fault_tolerant(&self) -> bool {
        self.fault.is_some()
    }

    /// True when trace events should be recorded (either the flag or an
    /// export path enables collection).
    pub fn tracing(&self) -> bool {
        self.trace || self.trace_path.is_some()
    }
}

/// Invalid [`SipConfig`] reported by [`SipConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SIP config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`SipConfig`]; every setter mirrors a config field, and
/// [`build`](Self::build) validates the combination.
#[derive(Debug, Clone)]
pub struct SipConfigBuilder {
    config: SipConfig,
}

impl SipConfigBuilder {
    /// Number of worker ranks (must be ≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Number of I/O server ranks (0 disables served arrays).
    pub fn io_servers(mut self, n: usize) -> Self {
        self.config.io_servers = n;
        self
    }

    /// Full segment configuration.
    pub fn segments(mut self, s: SegmentConfig) -> Self {
        self.config.segments = s;
        self
    }

    /// Shorthand: the default segment size, keeping other segment fields.
    pub fn segment_size(mut self, n: usize) -> Self {
        self.config.segments.default = n;
        self
    }

    /// Block-cache capacity (blocks) per worker.
    pub fn cache_blocks(mut self, n: usize) -> Self {
        self.config.cache_blocks = n;
        self
    }

    /// Prefetch look-ahead depth.
    pub fn prefetch_depth(mut self, n: usize) -> Self {
        self.config.prefetch_depth = n;
        self
    }

    /// Per-worker block pool budget in bytes.
    pub fn pool_bytes(mut self, n: usize) -> Self {
        self.config.pool_bytes = n;
        self
    }

    /// Per-I/O-server in-memory cache capacity (blocks).
    pub fn server_cache_blocks(mut self, n: usize) -> Self {
        self.config.server_cache_blocks = n;
        self
    }

    /// Collect all distributed arrays to the master at the end of the run.
    pub fn collect_distributed(mut self, yes: bool) -> Self {
        self.config.collect_distributed = yes;
        self
    }

    /// Directory for served-array block files and checkpoints.
    pub fn run_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.run_dir = Some(dir.into());
        self
    }

    /// Override for the served-array block-file directory (default:
    /// `run_dir/served`). Serving daemons share one directory across jobs.
    pub fn served_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.served_dir = Some(dir.into());
        self
    }

    /// Per-worker memory budget for the dry-run feasibility gate.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.config.memory_budget = Some(bytes);
        self
    }

    /// Guided-scheduling divisor.
    pub fn chunk_factor(mut self, n: usize) -> Self {
        self.config.chunk_factor = n;
        self
    }

    /// Chunk-sizing policy override.
    pub fn chunk_policy(mut self, p: crate::scheduler::ChunkPolicy) -> Self {
        self.config.chunk_policy = Some(p);
        self
    }

    /// Distributed-block placement strategy.
    pub fn placement(mut self, p: Placement) -> Self {
        self.config.placement = p;
        self
    }

    /// Intra-worker threads for the block-contraction GEMM.
    pub fn gemm_threads(mut self, n: usize) -> Self {
        self.config.gemm_threads = n;
        self
    }

    /// Transpose-folding ablation switch.
    pub fn fold_transposes(mut self, yes: bool) -> Self {
        self.config.fold_transposes = yes;
        self
    }

    /// Idle service-loop poll interval.
    pub fn service_poll(mut self, d: Duration) -> Self {
        self.config.service_poll = d;
        self
    }

    /// Blocked-wait poll interval.
    pub fn wait_poll(mut self, d: Duration) -> Self {
        self.config.wait_poll = d;
        self
    }

    /// Fault injection and recovery configuration.
    pub fn fault(mut self, f: FaultConfig) -> Self {
        self.config.fault = Some(f);
        self
    }

    /// Record per-rank trace events (kept in memory, surfaced in
    /// `RunOutput::trace`).
    pub fn trace(mut self, yes: bool) -> Self {
        self.config.trace = yes;
        self
    }

    /// Write the merged Chrome-trace JSON here at the end of the run
    /// (implies trace collection).
    pub fn trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.trace_path = Some(path.into());
        self
    }

    /// Per-rank trace ring capacity in events (not bytes).
    pub fn trace_buffer_events(mut self, n: usize) -> Self {
        self.config.trace_buffer_events = n;
        self
    }

    /// Write the machine-readable profile JSON here at the end of the run.
    pub fn profile_json(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.profile_json = Some(path.into());
        self
    }

    /// Frobenius-norm screening threshold for sparse arrays (must be finite
    /// and ≥ 0; 0.0 disables dropping).
    pub fn sparsity_threshold(mut self, t: f64) -> Self {
        self.config.sparsity_threshold = t;
        self
    }

    /// Expected realized block fraction of a sparse array, used by the
    /// dry-run footprint estimate (must be in `0.0..=1.0`).
    pub fn sparsity_density(mut self, array: impl Into<String>, fraction: f64) -> Self {
        self.config.sparsity_density.insert(array.into(), fraction);
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<SipConfig, ConfigError> {
        let mut c = self.config;
        if c.workers < 1 {
            return Err(ConfigError("workers must be ≥ 1".into()));
        }
        if c.gemm_threads < 1 {
            return Err(ConfigError("gemm_threads must be ≥ 1".into()));
        }
        // Clamp the GEMM thread count to what the host can actually run;
        // oversubscribing the band-parallel kernel only adds scheduling
        // noise. The request is preserved so the profile report can call
        // out the clamp.
        c.gemm_threads_requested = c.gemm_threads;
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        c.gemm_threads = c.gemm_threads.min(avail);
        if c.cache_blocks < 1 {
            return Err(ConfigError("cache_blocks must be ≥ 1".into()));
        }
        if c.segments.default < 1 {
            return Err(ConfigError("segment size must be ≥ 1".into()));
        }
        if c.segments.nsub < 1 {
            return Err(ConfigError("nsub must be ≥ 1".into()));
        }
        if c.prefetch_depth > c.cache_blocks {
            return Err(ConfigError(format!(
                "prefetch_depth {} exceeds cache_blocks {}; the prefetcher \
                 would evict its own in-flight blocks",
                c.prefetch_depth, c.cache_blocks
            )));
        }
        if c.pool_bytes == 0 {
            return Err(ConfigError("pool_bytes must be nonzero".into()));
        }
        if c.chunk_factor == 0 {
            return Err(ConfigError("chunk_factor must be ≥ 1".into()));
        }
        if c.service_poll.is_zero() || c.wait_poll.is_zero() {
            return Err(ConfigError("poll intervals must be nonzero".into()));
        }
        if c.tracing() && c.trace_buffer_events < 16 {
            return Err(ConfigError(
                "trace_buffer_events must be ≥ 16 when tracing".into(),
            ));
        }
        if !c.sparsity_threshold.is_finite() || c.sparsity_threshold < 0.0 {
            return Err(ConfigError(format!(
                "sparsity_threshold must be finite and ≥ 0, got {}",
                c.sparsity_threshold
            )));
        }
        for (name, d) in &c.sparsity_density {
            if !d.is_finite() || !(0.0..=1.0).contains(d) {
                return Err(ConfigError(format!(
                    "sparsity_density for `{name}` must be in 0.0..=1.0, got {d}"
                )));
            }
        }
        if let Some(f) = &c.fault {
            let world = 1 + c.workers + c.io_servers;
            f.plan
                .validate(world)
                .map_err(|e| ConfigError(format!("fault plan: {e}")))?;
            if f.plan.seed == 0 && f.plan.is_active() {
                return Err(ConfigError(
                    "an active fault plan needs an explicit nonzero seed so \
                     failures reproduce"
                        .into(),
                ));
            }
            if let Some(crash) = &f.crash {
                if crash.worker >= c.workers {
                    return Err(ConfigError(format!(
                        "crash schedule targets worker {} of {}",
                        crash.worker, c.workers
                    )));
                }
                if c.workers < 2 {
                    return Err(ConfigError(
                        "crash recovery needs at least 2 workers".into(),
                    ));
                }
            }
            if f.retry_backoff < 1.0 {
                return Err(ConfigError("retry_backoff must be ≥ 1.0".into()));
            }
            if f.retry_timeout.is_zero() {
                return Err(ConfigError("retry_timeout must be nonzero".into()));
            }
        }
        Ok(c)
    }
}

/// Distributed-block placement strategy.
///
/// The paper uses "a simple, static strategy" and argues elaborate placement
/// buys little because communication overlaps computation anyway — and that
/// "the approach to data distribution could be modified and improved at any
/// time without requiring any change in the SIAL programs". This enum is that
/// modification point; the ablation harness compares the strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// FNV hash of (array, segments) modulo workers — the SIP default.
    #[default]
    Hash,
    /// Weighted segment sum modulo workers: preserves neighbour locality but
    /// creates stride hotspots on structured access patterns.
    RoundRobin,
    /// Planner-derived placement: each distributed array's block grid is cut
    /// into `workers` contiguous slabs in row-major block order, so blocks
    /// addressed by the same index tuple land on the same worker across
    /// arrays and chunk assignment can be aligned with block homes
    /// (owner-compute). Resolved through [`Layout::home_of_distributed`];
    /// a bare [`Topology`] (no block-grid knowledge) falls back to hash.
    Planned,
}

/// Pluggable block→worker placement map, the facade behind which every
/// `home_of_distributed` lookup resolves. The static strategies
/// ([`Placement::Hash`], [`Placement::RoundRobin`]) are pure functions of
/// the key; the planner-derived map ([`Placement::Planned`]) consults the
/// per-array block grids resolved by [`Layout::new`]. All implementations
/// must be deterministic: every rank holds the same map (shared through the
/// run's `Arc<Layout>`) and must agree on every home without coordination.
pub trait PlacementMap: Send + Sync + std::fmt::Debug {
    /// Worker slot (0-based worker index) of a distributed block.
    fn slot(&self, key: &BlockKey) -> usize;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// Hash placement behind the [`PlacementMap`] facade.
#[derive(Debug)]
struct HashSlots {
    workers: usize,
}

impl PlacementMap for HashSlots {
    fn slot(&self, key: &BlockKey) -> usize {
        (key.placement_hash() % self.workers as u64) as usize
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Round-robin placement behind the facade.
#[derive(Debug)]
struct RoundRobinSlots {
    workers: usize,
}

impl PlacementMap for RoundRobinSlots {
    fn slot(&self, key: &BlockKey) -> usize {
        let mut sum: u64 = key.array.0 as u64;
        for (d, &seg) in key.segs().iter().enumerate() {
            sum += (seg.max(0) as u64) << (2 * d);
        }
        (sum % self.workers as u64) as usize
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// One distributed array's resolved block grid: enough to compute the
/// row-major linear index of any block key.
#[derive(Debug, Clone)]
struct BlockGrid {
    /// Per declared dim: the low segment number.
    lo: Vec<i64>,
    /// Per declared dim: segments spanned.
    len: Vec<u64>,
    /// Product of `len` (total blocks).
    total: u64,
}

/// Planner-derived placement: contiguous row-major slabs per array.
///
/// `slot(key) = linear(key) * workers / total` — a balanced, static,
/// deterministic partition that (a) keeps each array's blocks contiguous
/// per worker, and (b) co-locates blocks of *different* arrays addressed
/// by the same index tuple, which is what lets the master hand a pardo
/// iteration to the worker that owns the block it writes. Keys without a
/// resolved grid (or outside it) fall back to hash so the map stays total.
#[derive(Debug)]
struct PlannedSlots {
    workers: usize,
    grids: Vec<Option<BlockGrid>>,
}

impl PlacementMap for PlannedSlots {
    fn slot(&self, key: &BlockKey) -> usize {
        let grid = match self.grids.get(key.array.index()).and_then(Option::as_ref) {
            Some(g) if g.total > 0 => g,
            _ => return (key.placement_hash() % self.workers as u64) as usize,
        };
        let segs = key.segs();
        if segs.len() != grid.len.len() {
            return (key.placement_hash() % self.workers as u64) as usize;
        }
        let mut linear: u64 = 0;
        for (d, &seg) in segs.iter().enumerate() {
            let off = (seg as i64 - grid.lo[d]).clamp(0, grid.len[d] as i64 - 1) as u64;
            linear = linear * grid.len[d] + off;
        }
        // Contiguous slabs: ⌊linear · W / total⌋, balanced to within one
        // block and monotone in the linear order.
        ((linear as u128 * self.workers as u128) / grid.total as u128) as usize
    }

    fn name(&self) -> &'static str {
        "planned"
    }
}

/// Rank topology: rank 0 is the master, then workers, then I/O servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Worker count.
    pub workers: usize,
    /// I/O server count.
    pub io_servers: usize,
    /// Distributed-block placement strategy.
    pub placement: Placement,
}

impl Topology {
    /// A topology with the default (hash) placement.
    pub fn new(workers: usize, io_servers: usize) -> Self {
        Topology {
            workers,
            io_servers,
            placement: Placement::Hash,
        }
    }

    /// Total rank count.
    pub fn world_size(&self) -> usize {
        1 + self.workers + self.io_servers
    }

    /// The master's rank.
    pub fn master(&self) -> Rank {
        Rank(0)
    }

    /// Rank of worker `i` (0-based).
    pub fn worker(&self, i: usize) -> Rank {
        debug_assert!(i < self.workers);
        Rank(1 + i)
    }

    /// Rank of I/O server `j` (0-based).
    pub fn io_server(&self, j: usize) -> Rank {
        debug_assert!(j < self.io_servers);
        Rank(1 + self.workers + j)
    }

    /// True if `r` is a worker rank.
    pub fn is_worker(&self, r: Rank) -> bool {
        r.0 >= 1 && r.0 <= self.workers
    }

    /// The worker index of a worker rank.
    pub fn worker_index(&self, r: Rank) -> usize {
        debug_assert!(self.is_worker(r));
        r.0 - 1
    }

    /// Home worker of a distributed block (simple static placement).
    pub fn home_of_distributed(&self, key: &BlockKey) -> Rank {
        self.worker(self.initial_slot(key))
    }

    /// Home worker of a distributed block when some workers are dead.
    ///
    /// `dead` is indexed by worker index. Keys whose initial slot is alive
    /// keep their home (surviving data never moves); keys homed at a dead
    /// worker walk a deterministic rehash chain until they land on a
    /// survivor, so every rank that agrees on the dead set agrees on the
    /// new home.
    pub fn home_of_distributed_excluding(&self, key: &BlockKey, dead: &[bool]) -> Rank {
        self.rehash_from(self.initial_slot(key), key, dead)
    }

    /// The dead-rank rehash chain from an already-resolved initial slot.
    /// [`Layout::home_of_distributed_excluding`] seeds this with the
    /// placement map's slot so every strategy (hash, round-robin, planned)
    /// shares one rehash discipline.
    pub(crate) fn rehash_from(&self, mut slot: usize, key: &BlockKey, dead: &[bool]) -> Rank {
        if !dead.iter().any(|&d| d) {
            return self.worker(slot);
        }
        debug_assert!(dead.len() == self.workers);
        debug_assert!(dead.iter().any(|&d| !d), "all workers dead");
        let mut h = key.placement_hash();
        while dead[slot] {
            // splitmix64-style remix for the next candidate.
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^= z >> 27;
            slot = (z % self.workers as u64) as usize;
        }
        self.worker(slot)
    }

    fn initial_slot(&self, key: &BlockKey) -> usize {
        let slot = match self.placement {
            // A bare topology has no block-grid knowledge; planned
            // placement resolves through `Layout::home_of_distributed`,
            // and this fallback only serves topology-level callers.
            Placement::Hash | Placement::Planned => key.placement_hash() % self.workers as u64,
            Placement::RoundRobin => {
                let mut sum: u64 = key.array.0 as u64;
                for (d, &seg) in key.segs().iter().enumerate() {
                    sum += (seg.max(0) as u64) << (2 * d);
                }
                sum % self.workers as u64
            }
        };
        slot as usize
    }

    /// Home I/O server of a served block.
    pub fn home_of_served(&self, key: &BlockKey) -> Rank {
        debug_assert!(self.io_servers > 0, "served arrays need I/O servers");
        self.io_server((key.placement_hash() % self.io_servers as u64) as usize)
    }
}

/// The fully resolved data layout for one run.
#[derive(Debug)]
pub struct Layout {
    /// The program.
    pub program: Arc<Program>,
    /// Resolved symbolic constants (indexed by `ConstId`).
    pub consts: Vec<i64>,
    /// Segment configuration.
    pub segments: SegmentConfig,
    /// Rank topology.
    pub topology: Topology,
    /// Per index: inclusive segment range (subindex ranges derived from the
    /// parent's range × nsub).
    index_ranges: Vec<(i64, i64)>,
    /// Per index: the block extent its segments denote (seg size; for a
    /// subindex, seg/nsub).
    index_extents: Vec<usize>,
    /// The resolved block→worker placement map (the [`PlacementMap`]
    /// facade): one implementation per [`Placement`] strategy, shared by
    /// every rank through the run's `Arc<Layout>`.
    placement_map: Arc<dyn PlacementMap>,
}

impl Layout {
    /// Resolves a layout. Fails if constants are unbound, ranges invalid, or
    /// a segment size is not divisible by `nsub` where subindices need it.
    pub fn new(
        program: Arc<Program>,
        bindings: &ConstBindings,
        segments: SegmentConfig,
        topology: Topology,
    ) -> Result<Self, RuntimeError> {
        let consts = program.resolve_consts(bindings)?;
        let n = program.indices.len();
        let mut index_ranges = vec![(0i64, 0i64); n];
        let mut index_extents = vec![0usize; n];

        for (i, decl) in program.indices.iter().enumerate() {
            match decl.kind {
                IndexKind::Subindex { parent } => {
                    let pdecl = &program.indices[parent.index()];
                    let (plo, phi) = program.index_range(parent, &consts)?;
                    let pseg = segments.seg_for(pdecl.kind);
                    if segments.nsub == 0 || !pseg.is_multiple_of(segments.nsub) {
                        return Err(RuntimeError::Resolve(format!(
                            "segment size {pseg} of `{}` is not divisible by nsub {}",
                            pdecl.name, segments.nsub
                        )));
                    }
                    let nsub = segments.nsub as i64;
                    index_ranges[i] = ((plo - 1) * nsub + 1, phi * nsub);
                    index_extents[i] = pseg / segments.nsub;
                }
                kind => {
                    index_ranges[i] = program.index_range(IndexId(i as u32), &consts)?;
                    index_extents[i] = segments.seg_for(kind);
                }
            }
        }
        let placement_map: Arc<dyn PlacementMap> = match topology.placement {
            Placement::Hash => Arc::new(HashSlots {
                workers: topology.workers,
            }),
            Placement::RoundRobin => Arc::new(RoundRobinSlots {
                workers: topology.workers,
            }),
            Placement::Planned => {
                // Resolve each array's block grid so the planned map can
                // compute row-major linear indices without the layout.
                let grids = program
                    .arrays
                    .iter()
                    .map(|decl| {
                        let lo: Vec<i64> = decl
                            .dims
                            .iter()
                            .map(|&d| index_ranges[d.index()].0)
                            .collect();
                        let len: Vec<u64> = decl
                            .dims
                            .iter()
                            .map(|&d| {
                                let (l, h) = index_ranges[d.index()];
                                (h - l + 1).max(0) as u64
                            })
                            .collect();
                        let total: u64 = len.iter().product();
                        if decl.dims.is_empty() || total == 0 {
                            None
                        } else {
                            Some(BlockGrid { lo, len, total })
                        }
                    })
                    .collect();
                Arc::new(PlannedSlots {
                    workers: topology.workers,
                    grids,
                })
            }
        };
        Ok(Layout {
            program,
            consts,
            segments,
            topology,
            index_ranges,
            index_extents,
            placement_map,
        })
    }

    /// Worker slot (0-based) of a distributed block under the run's
    /// placement map.
    pub fn slot_of_distributed(&self, key: &BlockKey) -> usize {
        self.placement_map.slot(key)
    }

    /// Home worker of a distributed block — the placement facade every
    /// runtime caller resolves through (master, workers, dry run, planner).
    pub fn home_of_distributed(&self, key: &BlockKey) -> Rank {
        self.topology.worker(self.placement_map.slot(key))
    }

    /// Home worker of a distributed block when some workers are dead:
    /// the placement map's slot, then the shared deterministic rehash
    /// chain (see [`Topology::home_of_distributed_excluding`]).
    pub fn home_of_distributed_excluding(&self, key: &BlockKey, dead: &[bool]) -> Rank {
        self.topology
            .rehash_from(self.placement_map.slot(key), key, dead)
    }

    /// Home I/O server of a served block.
    pub fn home_of_served(&self, key: &BlockKey) -> Rank {
        self.topology.home_of_served(key)
    }

    /// Name of the active placement strategy.
    pub fn placement_name(&self) -> &'static str {
        self.placement_map.name()
    }

    /// Inclusive segment range of an index.
    pub fn range(&self, idx: IndexId) -> (i64, i64) {
        self.index_ranges[idx.index()]
    }

    /// Number of segments an index ranges over.
    pub fn range_len(&self, idx: IndexId) -> u64 {
        let (lo, hi) = self.range(idx);
        (hi - lo + 1) as u64
    }

    /// The block extent (elements) one segment of this index denotes.
    pub fn extent(&self, idx: IndexId) -> usize {
        self.index_extents[idx.index()]
    }

    /// True if `idx` is a subindex; returns its parent.
    pub fn parent_of(&self, idx: IndexId) -> Option<IndexId> {
        match self.program.indices[idx.index()].kind {
            IndexKind::Subindex { parent } => Some(parent),
            _ => None,
        }
    }

    /// The subsegment range (inclusive) within parent segment `pval`.
    pub fn sub_range(&self, pval: i64) -> (i64, i64) {
        let n = self.segments.nsub as i64;
        ((pval - 1) * n + 1, pval * n)
    }

    /// Parent segment containing subsegment `sval`, plus the subsegment's
    /// 0-based offset within it.
    pub fn sub_parent_seg(&self, sval: i64) -> (i64, usize) {
        let n = self.segments.nsub as i64;
        let parent = (sval - 1) / n + 1;
        let off = ((sval - 1) % n) as usize;
        (parent, off)
    }

    /// Shape of the block addressed by `ref_indices` (the *reference*'s
    /// indices, which may be subindices of the declared dims).
    pub fn block_shape(&self, ref_indices: &[IndexId]) -> Shape {
        let dims: Vec<usize> = ref_indices.iter().map(|&i| self.extent(i)).collect();
        if dims.is_empty() {
            Shape::scalar()
        } else {
            Shape::new(&dims)
        }
    }

    /// Shape of a block of `array` as declared (all dims at declared extent).
    pub fn declared_block_shape(&self, array: ArrayId) -> Shape {
        let decl = &self.program.arrays[array.index()];
        self.block_shape(&decl.dims)
    }

    /// Total number of blocks of `array` over its declared index ranges.
    pub fn total_blocks(&self, array: ArrayId) -> u64 {
        let decl = &self.program.arrays[array.index()];
        decl.dims.iter().map(|&d| self.range_len(d)).product()
    }

    /// Bytes of one declared block of `array`.
    pub fn block_bytes(&self, array: ArrayId) -> u64 {
        self.declared_block_shape(array).len() as u64 * 8
    }

    /// Whether the ref addresses subblocks of `array`'s declared blocks
    /// (i.e. some ref index is a subindex whose parent kind matches a
    /// super-declared dim). Returns per-dimension flags.
    pub fn sub_addressed_dims(&self, array: ArrayId, ref_indices: &[IndexId]) -> Vec<bool> {
        let decl = &self.program.arrays[array.index()];
        ref_indices
            .iter()
            .zip(&decl.dims)
            .map(|(&r, &d)| self.parent_of(r).is_some() && self.parent_of(d).is_none())
            .collect()
    }

    /// The key of the *storage* block containing the referenced (possibly
    /// sub-addressed) block, plus the slice window within it when
    /// sub-addressed. `seg_vals` are the current values of `ref_indices`.
    ///
    /// Returns `(key, Option<(offsets, extents)>)`.
    #[allow(clippy::type_complexity)]
    pub fn storage_target(
        &self,
        array: ArrayId,
        ref_indices: &[IndexId],
        seg_vals: &[i64],
    ) -> (BlockKey, Option<(Vec<usize>, Vec<usize>)>) {
        let subdims = self.sub_addressed_dims(array, ref_indices);
        if !subdims.iter().any(|&b| b) {
            return (BlockKey::new(array, seg_vals), None);
        }
        let decl = &self.program.arrays[array.index()];
        let mut storage_segs = Vec::with_capacity(seg_vals.len());
        let mut offsets = Vec::with_capacity(seg_vals.len());
        let mut extents = Vec::with_capacity(seg_vals.len());
        for (d, (&v, &is_sub)) in seg_vals.iter().zip(&subdims).enumerate() {
            let decl_extent = self.extent(decl.dims[d]);
            if is_sub {
                let (pseg, off) = self.sub_parent_seg(v);
                let sub_extent = self.extent(ref_indices[d]);
                storage_segs.push(pseg);
                offsets.push(off * sub_extent);
                extents.push(sub_extent);
            } else {
                storage_segs.push(v);
                offsets.push(0);
                extents.push(decl_extent);
            }
        }
        (
            BlockKey::new(array, &storage_segs),
            Some((offsets, extents)),
        )
    }

    /// Bytes of the largest declared block among remote (distributed or
    /// served) arrays — the unit the worker block cache is sized in, and the
    /// same quantity the dry run uses to convert `cache_blocks` to bytes.
    /// Zero when the program has no remote arrays.
    pub fn largest_remote_block_bytes(&self) -> u64 {
        (0..self.program.arrays.len())
            .map(|i| ArrayId(i as u32))
            .filter(|&id| {
                matches!(
                    self.array_kind(id),
                    ArrayKind::Distributed | ArrayKind::Served
                )
            })
            .map(|id| self.block_bytes(id))
            .max()
            .unwrap_or(0)
    }

    /// The array's declaration.
    pub fn array(&self, id: ArrayId) -> &sia_bytecode::ArrayDecl {
        &self.program.arrays[id.index()]
    }

    /// The array's kind.
    pub fn array_kind(&self, id: ArrayId) -> ArrayKind {
        self.program.arrays[id.index()].kind
    }

    /// Whether the array is block-sparse (typed absence + norm screening).
    pub fn array_sparse(&self, id: ArrayId) -> bool {
        self.program.arrays[id.index()].sparse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_bytecode::{ArrayDecl, IndexDecl, Value};

    fn layout_with(segments: SegmentConfig) -> Layout {
        // Indices: i (ao, 1..4), j (mo, 1..2), ii (sub of i).
        let program = Program {
            name: "t".into(),
            indices: vec![
                IndexDecl {
                    name: "i".into(),
                    kind: IndexKind::AoIndex,
                    low: Value::Lit(1),
                    high: Value::Lit(4),
                },
                IndexDecl {
                    name: "j".into(),
                    kind: IndexKind::MoIndex,
                    low: Value::Lit(1),
                    high: Value::Lit(2),
                },
                IndexDecl {
                    name: "ii".into(),
                    kind: IndexKind::Subindex { parent: IndexId(0) },
                    low: Value::Lit(0),
                    high: Value::Lit(0),
                },
            ],
            arrays: vec![
                ArrayDecl {
                    name: "X".into(),
                    kind: ArrayKind::Distributed,
                    dims: vec![IndexId(0), IndexId(1)],
                    sparse: false,
                },
                ArrayDecl {
                    name: "Xii".into(),
                    kind: ArrayKind::Temp,
                    dims: vec![IndexId(2), IndexId(1)],
                    sparse: false,
                },
            ],
            ..Default::default()
        };
        Layout::new(
            Arc::new(program),
            &ConstBindings::new(),
            segments,
            Topology::new(3, 1),
        )
        .unwrap()
    }

    fn segs(ao: usize, mo: usize, nsub: usize) -> SegmentConfig {
        SegmentConfig {
            default: 4,
            ao: Some(ao),
            mo: Some(mo),
            nsub,
            ..SegmentConfig::default()
        }
    }

    #[test]
    fn ranges_and_extents() {
        let l = layout_with(segs(16, 8, 4));
        assert_eq!(l.range(IndexId(0)), (1, 4));
        assert_eq!(l.range(IndexId(1)), (1, 2));
        assert_eq!(l.extent(IndexId(0)), 16);
        assert_eq!(l.extent(IndexId(1)), 8);
        // Subindex: range expands by nsub, extent shrinks by nsub.
        assert_eq!(l.range(IndexId(2)), (1, 16));
        assert_eq!(l.extent(IndexId(2)), 4);
    }

    #[test]
    fn shapes() {
        let l = layout_with(segs(16, 8, 4));
        assert_eq!(l.declared_block_shape(ArrayId(0)).dims(), &[16, 8]);
        assert_eq!(l.declared_block_shape(ArrayId(1)).dims(), &[4, 8]);
        assert_eq!(l.total_blocks(ArrayId(0)), 8);
        assert_eq!(l.total_blocks(ArrayId(1)), 32);
        assert_eq!(l.block_bytes(ArrayId(0)), 16 * 8 * 8);
    }

    #[test]
    fn sub_parent_mapping() {
        let l = layout_with(segs(16, 8, 4));
        // Subsegments 1..=4 live in parent 1, 5..=8 in parent 2, ...
        assert_eq!(l.sub_parent_seg(1), (1, 0));
        assert_eq!(l.sub_parent_seg(4), (1, 3));
        assert_eq!(l.sub_parent_seg(5), (2, 0));
        assert_eq!(l.sub_range(2), (5, 8));
    }

    #[test]
    fn storage_target_plain() {
        let l = layout_with(segs(16, 8, 4));
        let (key, slice) = l.storage_target(ArrayId(0), &[IndexId(0), IndexId(1)], &[3, 2]);
        assert_eq!(key, BlockKey::new(ArrayId(0), &[3, 2]));
        assert!(slice.is_none());
    }

    #[test]
    fn storage_target_sub_addressed() {
        let l = layout_with(segs(16, 8, 4));
        // X(ii, j) with ii=6: parent seg 2, offset 1 within → elements 4..8.
        let (key, slice) = l.storage_target(ArrayId(0), &[IndexId(2), IndexId(1)], &[6, 2]);
        assert_eq!(key, BlockKey::new(ArrayId(0), &[2, 2]));
        let (offs, exts) = slice.unwrap();
        assert_eq!(offs, vec![4, 0]);
        assert_eq!(exts, vec![4, 8]);
    }

    #[test]
    fn indivisible_nsub_rejected() {
        let program = Program {
            indices: vec![
                IndexDecl {
                    name: "i".into(),
                    kind: IndexKind::AoIndex,
                    low: Value::Lit(1),
                    high: Value::Lit(2),
                },
                IndexDecl {
                    name: "ii".into(),
                    kind: IndexKind::Subindex { parent: IndexId(0) },
                    low: Value::Lit(0),
                    high: Value::Lit(0),
                },
            ],
            ..Default::default()
        };
        let err = Layout::new(
            Arc::new(program),
            &ConstBindings::new(),
            SegmentConfig {
                default: 10,
                nsub: 3,
                ..SegmentConfig::default()
            },
            Topology::new(1, 0),
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Resolve(_)));
    }

    #[test]
    fn topology_ranks() {
        let t = Topology::new(3, 2);
        assert_eq!(t.world_size(), 6);
        assert_eq!(t.master(), Rank(0));
        assert_eq!(t.worker(0), Rank(1));
        assert_eq!(t.worker(2), Rank(3));
        assert_eq!(t.io_server(0), Rank(4));
        assert_eq!(t.io_server(1), Rank(5));
        assert!(t.is_worker(Rank(1)));
        assert!(!t.is_worker(Rank(0)));
        assert!(!t.is_worker(Rank(4)));
        assert_eq!(t.worker_index(Rank(3)), 2);
    }

    #[test]
    fn round_robin_homes_stable_and_in_range() {
        let t = Topology {
            workers: 5,
            io_servers: 1,
            placement: Placement::RoundRobin,
        };
        for i in 0..20 {
            let k = BlockKey::new(ArrayId(1), &[i, i + 2]);
            let h = t.home_of_distributed(&k);
            assert!(t.is_worker(h));
            assert_eq!(h, t.home_of_distributed(&k));
        }
        // Adjacent blocks land on different (neighbouring) workers.
        let h1 = t.home_of_distributed(&BlockKey::new(ArrayId(0), &[1, 1]));
        let h2 = t.home_of_distributed(&BlockKey::new(ArrayId(0), &[2, 1]));
        assert_ne!(h1, h2);
    }

    #[test]
    fn homes_are_stable_and_in_range() {
        let t = Topology::new(3, 2);
        for i in 0..20 {
            let k = BlockKey::new(ArrayId(0), &[i, i + 1]);
            let h = t.home_of_distributed(&k);
            assert!(t.is_worker(h));
            assert_eq!(h, t.home_of_distributed(&k));
            let s = t.home_of_served(&k);
            assert!(s.0 >= 4 && s.0 <= 5);
        }
    }

    /// The builder clamps an oversubscribed GEMM thread request to the
    /// host's parallelism while preserving the request for the profile
    /// report, and a sane request passes through unchanged.
    #[test]
    fn gemm_threads_clamped_to_host_parallelism() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);

        let absurd = avail * 64 + 1;
        let c = SipConfig::builder().gemm_threads(absurd).build().unwrap();
        assert_eq!(c.gemm_threads, avail, "clamped to host parallelism");
        assert_eq!(c.gemm_threads_requested, absurd, "request preserved");

        let c = SipConfig::builder().gemm_threads(1).build().unwrap();
        assert_eq!(c.gemm_threads, 1);
        assert_eq!(c.gemm_threads_requested, 1);

        assert!(SipConfig::builder().gemm_threads(0).build().is_err());
    }
}
