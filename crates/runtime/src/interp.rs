//! The bytecode interpreter: one worker executing SIA instructions.
//!
//! Every worker executes the *whole* program SPMD-style; the `pardo`
//! machinery is the only place iterations are divided (by the master's
//! guided scheduler). All potentially blocking points — block arrival, chunk
//! assignment, barriers, collectives — go through
//! `Worker::wait_until`, which keeps servicing incoming messages (so a
//! worker waiting on a barrier still serves its home blocks to others) and
//! accounts the time as *wait* for the profiler.

use crate::cache::BlockGet;
use crate::error::RuntimeError;
use crate::events::{EventKind, RecoveryEvent};
use crate::ft::TakeoverChunk;
use crate::metrics::WaitCause;
use crate::msg::{BarrierKind, BlockKey, SipMsg};
use crate::registry::{SuperArg, SuperEnv};
use crate::scheduler::{eval_bool, eval_scalar};
use crate::worker::{Fetch, LoopFrame, PardoState, Worker};
use sia_blocks::{contract_into_ctx, permute, Block, BlockHandle, ContractionPlan};
use sia_bytecode::{
    Arg, ArrayId, ArrayKind, BlockRef, BoolExpr, IndexId, Instruction as I, ScalarExpr,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Name of the intrinsic collective scalar sum (`execute sip_allreduce s`).
pub const SIP_ALLREDUCE: &str = "sip_allreduce";
/// Name of the intrinsic wall-clock super instruction (`execute sip_time s`).
pub const SIP_TIME: &str = "sip_time";
///// Name of the intrinsic restart-resume query (`execute sip_resume_epoch s`):
/// sets the scalar to the number of completed served-array epochs found in
/// the run directory's manifest, so restarted programs can skip them.
pub const SIP_RESUME_EPOCH: &str = "sip_resume_epoch";

impl Worker {
    /// Runs the program to `halt`. On success the worker still owes the
    /// master a `WorkerDone` (sent by the runtime harness, which also keeps
    /// the worker servicing peers until shutdown).
    pub fn execute_program(&mut self) -> Result<(), RuntimeError> {
        let program = Arc::clone(&self.layout.program);
        let mut plans: HashMap<u32, ContractionPlan> = HashMap::new();
        let t0 = Instant::now();
        let mut pc: u32 = 0;
        loop {
            self.service_messages();
            self.maybe_heartbeat();
            self.pump_retries()?;
            self.mem.enforce_budget()?;
            let ins = program
                .code
                .get(pc as usize)
                .ok_or_else(|| RuntimeError::BadProgram(format!("pc {pc} out of range")))?;
            let t_ins = Instant::now();
            let mut wait = Duration::ZERO;
            let class = ins.class();
            let next = self.step(pc, ins, &mut plans, &mut wait)?;
            let busy = t_ins.elapsed().saturating_sub(wait);
            self.profile.record(pc, busy, wait);
            self.trace
                .span_since(EventKind::Instruction { pc, class }, t_ins);
            match next {
                Some(n) => pc = n,
                None => break,
            }
        }
        self.profile.total_nanos = t0.elapsed().as_nanos() as u64;
        self.profile.metrics.cache = self.mem.cache_stats();
        self.profile.metrics.memory = self.mem.stats();
        self.profile
            .metrics
            .contraction
            .merge(&self.contract_ctx.take_stats());
        self.profile
            .metrics
            .pack
            .merge(&self.contract_ctx.take_pack_stats());
        Ok(())
    }

    // ---- expression evaluation -----------------------------------------------

    pub(crate) fn eval_expr(&self, e: &ScalarExpr) -> f64 {
        let env = &self.env;
        let scalars = &self.scalars;
        let consts = &self.layout.consts;
        eval_scalar(
            e,
            &|id: IndexId| env[id.index()],
            &|i| scalars[i as usize],
            &|i| consts[i as usize],
        )
    }

    pub(crate) fn eval_cond(&self, c: &BoolExpr) -> bool {
        let env = &self.env;
        let scalars = &self.scalars;
        let consts = &self.layout.consts;
        eval_bool(
            c,
            &|id: IndexId| env[id.index()],
            &|i| scalars[i as usize],
            &|i| consts[i as usize],
        )
    }

    fn alloc_for(
        &mut self,
        array: ArrayId,
        shape: sia_blocks::Shape,
    ) -> Result<Block, RuntimeError> {
        if self.layout.array_kind(array) == ArrayKind::Temp {
            Ok(self.pool.acquire_raw(shape)?)
        } else {
            Ok(Block::zeros(shape))
        }
    }

    // ---- pardo machinery --------------------------------------------------------

    /// Binds the next assigned iteration or leaves the loop. Returns the next
    /// pc.
    fn pardo_advance(&mut self, wait: &mut Duration) -> Result<u32, RuntimeError> {
        // Request more work if the queue ran dry.
        let (start_pc, epoch, need_request) = {
            let p = self.pardo.as_ref().expect("pardo_advance outside pardo");
            (
                p.start_pc,
                p.epoch,
                p.queue.is_empty() && !p.exhausted && !p.requested,
            )
        };
        if need_request {
            let master = self.layout.topology.master();
            self.endpoint.send(
                master,
                SipMsg::ChunkRequest {
                    pardo_pc: start_pc,
                    epoch,
                },
            )?;
            if let Some(p) = &mut self.pardo {
                p.requested = true;
            }
        }
        *wait += self.wait_until(WaitCause::ChunkAssign, "pardo chunk", |w| {
            let p = w.pardo.as_ref().unwrap();
            !p.queue.is_empty() || p.exhausted
        })?;
        let p = self.pardo.as_mut().unwrap();
        match p.queue.pop_front() {
            Some(vals) => {
                let indices = p.indices.clone();
                let body_pc = p.start_pc + 1;
                for (idx, v) in indices.iter().zip(vals) {
                    self.set_index(*idx, v);
                }
                self.op_seq = 0;
                self.profile.iterations += 1;
                Ok(body_pc)
            }
            None => {
                debug_assert!(p.exhausted);
                let end_pc = p.end_pc;
                let indices = p.indices.clone();
                self.pardo = None;
                for idx in indices {
                    self.set_index(idx, 0);
                }
                self.free_temps();
                Ok(end_pc + 1)
            }
        }
    }

    // ---- prefetch -----------------------------------------------------------------

    /// The SIP "looks ahead and requests several blocks that it expects will
    /// be needed soon": when a `get`/`request` sits inside a sequential loop,
    /// also fetch the blocks the next iterations of the *innermost* loop will
    /// ask for.
    fn prefetch_ahead(
        &mut self,
        array: ArrayId,
        ref_indices: &[IndexId],
    ) -> Result<(), RuntimeError> {
        if self.config.prefetch_depth == 0 {
            return Ok(());
        }
        let Some(frame) = self.loop_stack.last().cloned() else {
            return Ok(());
        };
        let Some(pos) = ref_indices.iter().position(|&i| i == frame.index) else {
            return Ok(());
        };
        let mut segs = self.seg_values(ref_indices)?;
        let decl_dims = self.layout.array(array).dims.clone();
        let mut wait = Duration::ZERO; // NoWait never blocks; discarded.
        for d in 1..=self.config.prefetch_depth as i64 {
            let v = frame.current + d;
            if v > frame.high {
                break;
            }
            segs[pos] = v;
            let (key, _) = self.layout.storage_target(array, ref_indices, &segs);
            // The loop bound says nothing about the array: a guarded loop
            // can range past the declared segments (`do L … if L <= n`), and
            // a speculative fetch of a nonexistent block makes the home
            // allocate and serve spurious zeros. Skip keys outside the
            // array's declared segment ranges instead of fetching them.
            let in_range = key.segs().iter().zip(&decl_dims).all(|(&s, &dim)| {
                let (lo, hi) = self.layout.range(dim);
                i64::from(s) >= lo && i64::from(s) <= hi
            });
            if !in_range {
                continue;
            }
            self.access_key(key, Fetch::NoWait, &mut wait)?;
        }
        Ok(())
    }

    // ---- instruction dispatch --------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn step(
        &mut self,
        pc: u32,
        ins: &I,
        plans: &mut HashMap<u32, ContractionPlan>,
        wait: &mut Duration,
    ) -> Result<Option<u32>, RuntimeError> {
        match ins {
            // ---- control ------------------------------------------------------
            I::PardoStart {
                indices, end_pc, ..
            } => {
                if self.pardo.is_some() {
                    return Err(RuntimeError::BadProgram("nested pardo".into()));
                }
                let epoch = {
                    let e = self.pardo_epochs.entry(pc).or_insert(0);
                    *e += 1;
                    *e
                };
                self.pardo = Some(PardoState {
                    start_pc: pc,
                    epoch,
                    end_pc: *end_pc,
                    indices: indices.clone(),
                    queue: Default::default(),
                    requested: false,
                    exhausted: false,
                });
                // Planned placement: push broadcast-shaped operands homed
                // here down their multicast trees before iterating.
                self.multicast_push(pc);
                Ok(Some(self.pardo_advance(wait)?))
            }
            I::PardoEnd { .. } => {
                self.free_temps();
                if let Some(p) = &self.pardo {
                    let (pardo_pc, epoch) = (p.start_pc, p.epoch);
                    self.note_pardo_iter_done(pardo_pc, epoch);
                }
                self.maybe_crash()?;
                Ok(Some(self.pardo_advance(wait)?))
            }
            I::DoStart { index, end_pc } => {
                let (lo, hi) = self.layout.range(*index);
                if lo > hi {
                    return Ok(Some(*end_pc + 1));
                }
                self.loop_stack.push(LoopFrame {
                    start_pc: pc,
                    index: *index,
                    current: lo,
                    high: hi,
                });
                self.set_index(*index, lo);
                Ok(Some(pc + 1))
            }
            I::DoEnd { start_pc } => self.loop_end(*start_pc, pc),
            I::DoInStart {
                sub,
                parent,
                end_pc,
                ..
            } => {
                let pval = self.index_value(*parent);
                if pval == 0 {
                    return Err(RuntimeError::BadProgram(
                        "do-in with undefined parent index".into(),
                    ));
                }
                let (lo, hi) = self.layout.sub_range(pval);
                if lo > hi {
                    return Ok(Some(*end_pc + 1));
                }
                self.loop_stack.push(LoopFrame {
                    start_pc: pc,
                    index: *sub,
                    current: lo,
                    high: hi,
                });
                self.set_index(*sub, lo);
                Ok(Some(pc + 1))
            }
            I::DoInEnd { start_pc } => self.loop_end(*start_pc, pc),
            I::ExitLoop {
                loop_start_pc,
                target,
            } => {
                // Pop loop frames down to and including the exited loop.
                loop {
                    let Some(frame) = self.loop_stack.pop() else {
                        return Err(RuntimeError::BadProgram(
                            "exit without a matching loop frame".into(),
                        ));
                    };
                    self.set_index(frame.index, 0);
                    if frame.start_pc == *loop_start_pc {
                        break;
                    }
                }
                Ok(Some(*target))
            }
            I::JumpIfFalse { cond, target } => {
                if self.eval_cond(cond) {
                    Ok(Some(pc + 1))
                } else {
                    Ok(Some(*target))
                }
            }
            I::Jump { target } => Ok(Some(*target)),
            I::Call { proc } => {
                let entry = self
                    .layout
                    .program
                    .procs
                    .get(proc.index())
                    .ok_or_else(|| RuntimeError::BadProgram("bad proc id".into()))?
                    .entry_pc;
                self.call_stack.push(pc + 1);
                Ok(Some(entry))
            }
            I::Return => match self.call_stack.pop() {
                Some(ret) => Ok(Some(ret)),
                None => Err(RuntimeError::BadProgram("return outside procedure".into())),
            },
            I::Halt => Ok(None),

            // ---- data management ------------------------------------------------
            I::Create { .. } => Ok(Some(pc + 1)), // allocation is lazy
            I::Delete { array } => {
                match self.layout.array_kind(*array) {
                    ArrayKind::Distributed => {
                        self.mem.home_remove_array(*array);
                        self.mem.cache_invalidate_array(*array);
                    }
                    ArrayKind::Served => {
                        self.mem.cache_invalidate_array(*array);
                        // One worker notifies the I/O servers; the op is
                        // idempotent but there is no need for W copies.
                        if self.worker_index() == 0 {
                            for j in 0..self.layout.topology.io_servers {
                                let io = self.layout.topology.io_server(j);
                                let _ = self
                                    .endpoint
                                    .send(io, SipMsg::DeleteArray { array: *array });
                            }
                        }
                    }
                    ArrayKind::Local | ArrayKind::Static => {
                        self.mem.local_remove_array(*array);
                    }
                    ArrayKind::Temp => {
                        if let Some((_, old)) = self.temps.remove(array) {
                            self.release_handle(old);
                        }
                    }
                }
                Ok(Some(pc + 1))
            }

            // ---- I/O -------------------------------------------------------------
            I::Get { block } | I::Request { block } => {
                let segs = self.seg_values(&block.indices)?;
                let (key, _) = self
                    .layout
                    .storage_target(block.array, &block.indices, &segs);
                self.access_key(key, Fetch::NoWait, wait)?;
                self.prefetch_ahead(block.array, &block.indices)?;
                Ok(Some(pc + 1))
            }
            I::Put { dest, src, mode } => {
                let data = self.read_block(src.array, &src.indices, wait)?;
                let segs = self.seg_values(&dest.indices)?;
                let (key, slice) = self.layout.storage_target(dest.array, &dest.indices, &segs);
                if slice.is_some() {
                    return Err(RuntimeError::BadProgram(
                        "sub-addressed put destination is not supported".into(),
                    ));
                }
                let op = self.derive_op(pc, &key);
                let home = self.dist_home(&key);
                if home == self.endpoint.rank() {
                    self.apply_put_deduped(key, data, *mode, op);
                } else {
                    self.send_put(home, key, data, *mode, op)?;
                }
                Ok(Some(pc + 1))
            }
            I::Prepare { dest, src, mode } => {
                if self.layout.topology.io_servers == 0 {
                    return Err(RuntimeError::ServedIo("prepare with io_servers = 0".into()));
                }
                let data = self.read_block(src.array, &src.indices, wait)?;
                let segs = self.seg_values(&dest.indices)?;
                let (key, slice) = self.layout.storage_target(dest.array, &dest.indices, &segs);
                if slice.is_some() {
                    return Err(RuntimeError::BadProgram(
                        "sub-addressed prepare destination is not supported".into(),
                    ));
                }
                let op = self.derive_op(pc, &key);
                let home = self.layout.home_of_served(&key);
                self.send_prepare(home, key, data, *mode, op)?;
                // The freshest copy is at the server now.
                self.mem.cache_invalidate(&key);
                Ok(Some(pc + 1))
            }
            I::BlocksToList { array, label } => {
                if self.layout.array_kind(*array) != ArrayKind::Distributed {
                    return Err(RuntimeError::Checkpoint(
                        "blocks_to_list supports distributed arrays".into(),
                    ));
                }
                let master = self.layout.topology.master();
                // Handles alias the home blocks: the checkpoint messages ride
                // on the authoritative allocations instead of deep copies.
                let mine = self.mem.home_array_shares(*array);
                for (key, data) in mine {
                    self.endpoint.send(
                        master,
                        SipMsg::CkptBlock {
                            label: label.0,
                            key,
                            data,
                        },
                    )?;
                }
                self.endpoint.send(
                    master,
                    SipMsg::CkptDone {
                        label: label.0,
                        restore: false,
                    },
                )?;
                let lbl = label.0;
                self.trace.instant(EventKind::Checkpoint { restore: false });
                *wait += self.wait_until(WaitCause::Checkpoint, "checkpoint", |w| {
                    w.ckpt_released.contains(&lbl)
                })?;
                self.ckpt_released.remove(&lbl);
                Ok(Some(pc + 1))
            }
            I::ListToBlocks { array, label } => {
                if self.layout.array_kind(*array) != ArrayKind::Distributed {
                    return Err(RuntimeError::Checkpoint(
                        "list_to_blocks supports distributed arrays".into(),
                    ));
                }
                let master = self.layout.topology.master();
                self.endpoint.send(
                    master,
                    SipMsg::CkptDone {
                        label: label.0,
                        restore: true,
                    },
                )?;
                let lbl = label.0;
                self.trace.instant(EventKind::Checkpoint { restore: true });
                *wait += self.wait_until(WaitCause::Checkpoint, "checkpoint restore", |w| {
                    w.ckpt_released.contains(&lbl)
                })?;
                self.ckpt_released.remove(&lbl);
                self.mem.cache_invalidate_array(*array);
                Ok(Some(pc + 1))
            }

            // ---- computational super instructions ---------------------------------
            I::BlockFill { dest, value } => {
                let v = self.eval_expr(value);
                let shape = self.layout.block_shape(&dest.indices);
                let mut b = self.alloc_for(dest.array, shape)?;
                b.fill(v);
                self.write_block(dest.array, &dest.indices, b)?;
                Ok(Some(pc + 1))
            }
            I::BlockCopy { dest, src } => {
                let data = self.read_block(src.array, &src.indices, wait)?;
                let permuted = permute_to(dest, src, &data)?;
                if BlockHandle::ptr_eq(&permuted, &data) {
                    self.mem.note_share(&permuted);
                }
                self.write_block(dest.array, &dest.indices, permuted)?;
                Ok(Some(pc + 1))
            }
            I::BlockAccumulate { dest, src, sign } => {
                let data = self.read_block(src.array, &src.indices, wait)?;
                let permuted = permute_to(dest, src, &data)?;
                let sign = *sign;
                self.modify_block(dest.array, &dest.indices, |b| b.axpy(sign, &permuted))?;
                Ok(Some(pc + 1))
            }
            I::BlockScale { dest, factor } => {
                let v = self.eval_expr(factor);
                self.modify_block(dest.array, &dest.indices, |b| b.scale(v))?;
                Ok(Some(pc + 1))
            }
            I::BlockContract {
                dest,
                a,
                b,
                accumulate,
            } => {
                let plan = match plans.get(&pc) {
                    Some(p) => p.clone(),
                    None => {
                        let p = ContractionPlan::infer(
                            &labels(&dest.indices),
                            &labels(&a.indices),
                            &labels(&b.indices),
                        )
                        .map_err(|e| RuntimeError::BadProgram(format!("contraction: {e}")))?;
                        plans.insert(pc, p.clone());
                        p
                    }
                };
                let aget = self.read_block_get(a.array, &a.indices, wait)?;
                let bget = self.read_block_get(b.array, &b.indices, wait)?;
                // Sparse screening: a typed-absent operand makes the product
                // exactly zero; two present operands whose norm product
                // (Cauchy–Schwarz bound on ‖A·B‖F) falls under the threshold
                // contribute negligibly. Either way the GEMM is skipped.
                let skip = match (&aget, &bget) {
                    (BlockGet::AbsentZero { .. }, _) | (_, BlockGet::AbsentZero { .. }) => true,
                    (BlockGet::Ready(ab), BlockGet::Ready(bb)) => {
                        (self.sparsity_active(a.array) || self.sparsity_active(b.array))
                            && ab.norm() * bb.norm() < self.config.sparsity_threshold
                    }
                    _ => {
                        return Err(RuntimeError::Internal(
                            "wait-mode access returned pending".into(),
                        ));
                    }
                };
                if skip {
                    let a_shape = self.layout.block_shape(&a.indices);
                    let b_shape = self.layout.block_shape(&b.indices);
                    self.profile.metrics.sparse.blocks_skipped += 1;
                    self.profile.metrics.sparse.flops_avoided += plan.flops(&a_shape, &b_shape);
                    let need_init = *accumulate
                        && self.layout.array_kind(dest.array) == ArrayKind::Temp
                        && !self.temp_defined(dest.array, &dest.indices)?;
                    if !*accumulate || need_init {
                        // The (bounded-)zero product still defines the dest
                        // block, exactly as the dense path would.
                        let out_shape = plan.output_shape(&a_shape, &b_shape);
                        let mut out = self.alloc_for(dest.array, out_shape)?;
                        out.fill(0.0);
                        self.write_block(dest.array, &dest.indices, out)?;
                    }
                    return Ok(Some(pc + 1));
                }
                let (BlockGet::Ready(ablk), BlockGet::Ready(bblk)) = (aget, bget) else {
                    unreachable!("non-ready operands handled above");
                };
                let out_shape = plan.output_shape(ablk.shape(), bblk.shape());
                // Contract through the worker's context (pooled scratch,
                // configured GEMM threading, fold counters). The ctx is
                // taken out of `self` for the duration so the closures below
                // can borrow it alongside `self`'s block stores.
                let mut ctx = std::mem::take(&mut self.contract_ctx);
                let result = (|| -> Result<(), RuntimeError> {
                    if *accumulate {
                        // Accumulating into a not-yet-written temp starts
                        // from zero (the `R += a*b` idiom): contract straight
                        // into fresh pooled storage instead of round-tripping
                        // a zero-filled block through an accumulate.
                        let need_init = self.layout.array_kind(dest.array) == ArrayKind::Temp
                            && !self.temp_defined(dest.array, &dest.indices)?;
                        if need_init {
                            let mut out = self.alloc_for(dest.array, out_shape)?;
                            contract_into_ctx(&mut ctx, &plan, &ablk, &bblk, 0.0, &mut out);
                            self.write_block(dest.array, &dest.indices, out)?;
                        } else {
                            self.modify_block(dest.array, &dest.indices, |d| {
                                contract_into_ctx(&mut ctx, &plan, &ablk, &bblk, 1.0, d);
                            })?;
                        }
                    } else {
                        let mut out = self.alloc_for(dest.array, out_shape)?;
                        contract_into_ctx(&mut ctx, &plan, &ablk, &bblk, 0.0, &mut out);
                        self.write_block(dest.array, &dest.indices, out)?;
                    }
                    Ok(())
                })();
                self.contract_ctx = ctx;
                result?;
                Ok(Some(pc + 1))
            }
            I::ScalarAssign { dest, expr } => {
                self.scalars[dest.index()] = self.eval_expr(expr);
                Ok(Some(pc + 1))
            }
            I::ScalarFromBlock {
                dest,
                src,
                accumulate,
            } => {
                let b = self.read_block(src.array, &src.indices, wait)?;
                if b.len() != 1 {
                    return Err(RuntimeError::BadProgram(
                        "scalar fold of non-scalar block".into(),
                    ));
                }
                let v = b.data()[0];
                if *accumulate {
                    self.scalars[dest.index()] += v;
                } else {
                    self.scalars[dest.index()] = v;
                }
                Ok(Some(pc + 1))
            }
            I::ExecuteSuper { name, args } => {
                let name_str = self.layout.program.strings[name.index()].clone();
                self.execute_super(&name_str, args, wait)?;
                Ok(Some(pc + 1))
            }
            I::Print { items } => {
                if self.worker_index() == 0 {
                    let mut line = String::new();
                    for item in items {
                        if !line.is_empty() {
                            line.push(' ');
                        }
                        match item {
                            sia_bytecode::ops::PrintItem::Str(id) => {
                                line.push_str(&self.layout.program.strings[id.index()]);
                            }
                            sia_bytecode::ops::PrintItem::Expr(e) => {
                                line.push_str(&format!("{}", self.eval_expr(e)));
                            }
                        }
                    }
                    println!("[sial] {line}");
                }
                Ok(Some(pc + 1))
            }

            // ---- synchronization ------------------------------------------------------
            I::SipBarrier => {
                *wait += self.barrier(BarrierKind::Sip)?;
                self.invalidate_cached_kind(ArrayKind::Distributed);
                self.dist_epoch += 1;
                self.on_sip_barrier_released();
                Ok(Some(pc + 1))
            }
            I::ServerBarrier => {
                *wait += self.barrier(BarrierKind::Server)?;
                self.invalidate_cached_kind(ArrayKind::Served);
                Ok(Some(pc + 1))
            }
        }
    }

    fn loop_end(&mut self, start_pc: u32, pc: u32) -> Result<Option<u32>, RuntimeError> {
        let frame = self
            .loop_stack
            .last_mut()
            .ok_or_else(|| RuntimeError::BadProgram("loop end without start".into()))?;
        if frame.start_pc != start_pc {
            return Err(RuntimeError::BadProgram("mismatched loop nesting".into()));
        }
        frame.current += 1;
        if frame.current <= frame.high {
            let (idx, v) = (frame.index, frame.current);
            self.set_index(idx, v);
            Ok(Some(start_pc + 1))
        } else {
            let idx = frame.index;
            self.loop_stack.pop();
            self.set_index(idx, 0);
            Ok(Some(pc + 1))
        }
    }

    fn temp_defined(&self, array: ArrayId, ref_indices: &[IndexId]) -> Result<bool, RuntimeError> {
        let segs = self.seg_values(ref_indices)?;
        let (key, _) = self.layout.storage_target(array, ref_indices, &segs);
        Ok(matches!(self.temps.get(&array), Some((k, _)) if *k == key))
    }

    pub(crate) fn barrier(&mut self, kind: BarrierKind) -> Result<Duration, RuntimeError> {
        let barrier_cause = match kind {
            BarrierKind::Sip => WaitCause::SipBarrier,
            BarrierKind::Server => WaitCause::ServerBarrier,
        };
        // Conflicting accesses must be complete before we report in: drain
        // outstanding acks first.
        let mut total = match kind {
            BarrierKind::Sip => {
                self.wait_until(WaitCause::AckDrain, "put acks", |w| w.puts_drained())?
            }
            BarrierKind::Server => self.wait_until(WaitCause::AckDrain, "prepare acks", |w| {
                w.prepares_drained()
            })?,
        };
        let master = self.layout.topology.master();
        self.endpoint.send(master, SipMsg::BarrierEnter { kind })?;
        if self.ft.is_some() {
            // Under fault tolerance a parked worker may be handed re-queued
            // chunks of a dead rank (the master defers the release until
            // every re-queued chunk is acknowledged).
            loop {
                if let Some(chunk) = self.ft.as_mut().and_then(|ft| ft.takeovers.pop_front()) {
                    self.run_takeover_chunk(chunk)?;
                    continue;
                }
                if self.barrier_release == Some(kind) {
                    break;
                }
                total += self.wait_until(barrier_cause, "barrier release", |w| {
                    w.barrier_release == Some(kind)
                        || w.ft.as_ref().is_some_and(|ft| !ft.takeovers.is_empty())
                })?;
            }
        } else {
            total += self.wait_until(barrier_cause, "barrier release", |w| {
                w.barrier_release == Some(kind)
            })?;
        }
        self.barrier_release = None;
        Ok(total)
    }

    /// Executes a re-queued chunk of a dead worker while parked at the
    /// post-pardo barrier. The iterations replay with `in_takeover` set, so
    /// op-id derivation matches the original execution and every put the
    /// corpse managed to deliver is suppressed as a duplicate. The chunk is
    /// acknowledged only after its puts drain, so the master's release
    /// implies the replayed data is home.
    fn run_takeover_chunk(&mut self, chunk: TakeoverChunk) -> Result<(), RuntimeError> {
        let program = Arc::clone(&self.layout.program);
        let (indices, end_pc) = match program.code.get(chunk.pardo_pc as usize) {
            Some(I::PardoStart {
                indices, end_pc, ..
            }) => (indices.clone(), *end_pc),
            _ => {
                return Err(RuntimeError::Internal(
                    "takeover chunk does not point at a pardo".into(),
                ));
            }
        };
        if let Some(ft) = self.ft.as_mut() {
            ft.in_takeover = true;
        }
        self.trace.instant(EventKind::Recovery {
            what: RecoveryEvent::Takeover,
        });
        let mut plans: HashMap<u32, ContractionPlan> = HashMap::new();
        let result = (|| -> Result<(), RuntimeError> {
            for iter in &chunk.iters {
                for (idx, v) in indices.iter().zip(iter) {
                    self.set_index(*idx, *v);
                }
                self.op_seq = 0;
                self.profile.iterations += 1;
                let mut pc = chunk.pardo_pc + 1;
                while pc != end_pc {
                    let ins = program
                        .code
                        .get(pc as usize)
                        .ok_or_else(|| RuntimeError::BadProgram(format!("pc {pc} out of range")))?;
                    let mut wait = Duration::ZERO;
                    match self.step(pc, ins, &mut plans, &mut wait)? {
                        Some(n) => pc = n,
                        None => {
                            return Err(RuntimeError::BadProgram(
                                "halt inside a pardo body".into(),
                            ));
                        }
                    }
                }
                self.free_temps();
                self.pardo_iters_done += 1;
            }
            // The master counts this chunk complete only once its data is
            // durable at the (surviving) homes.
            self.wait_until(WaitCause::Recovery, "takeover put acks", |w| {
                w.puts_drained()
            })?;
            Ok(())
        })();
        if let Some(ft) = self.ft.as_mut() {
            ft.in_takeover = false;
        }
        for idx in indices {
            self.set_index(idx, 0);
        }
        result?;
        let master = self.layout.topology.master();
        self.endpoint.send(
            master,
            SipMsg::ChunkDone {
                pardo_pc: chunk.pardo_pc,
                epoch: chunk.epoch,
                chunk: chunk.chunk,
            },
        )?;
        Ok(())
    }

    fn execute_super(
        &mut self,
        name: &str,
        args: &[Arg],
        wait: &mut Duration,
    ) -> Result<(), RuntimeError> {
        // Intrinsic collectives are handled by the runtime, not the registry.
        if name == SIP_ALLREDUCE {
            let [Arg::Scalar(id)] = args else {
                return Err(RuntimeError::BadProgram(
                    "sip_allreduce takes exactly one scalar argument".into(),
                ));
            };
            let master = self.layout.topology.master();
            self.endpoint.send(
                master,
                SipMsg::ReduceContrib {
                    value: self.scalars[id.index()],
                },
            )?;
            *wait += self.wait_until(WaitCause::Collective, "allreduce", |w| {
                w.reduce_result.is_some()
            })?;
            self.scalars[id.index()] = self.reduce_result.take().unwrap();
            return Ok(());
        }
        if name == SIP_TIME {
            let [Arg::Scalar(id)] = args else {
                return Err(RuntimeError::BadProgram(
                    "sip_time takes exactly one scalar argument".into(),
                ));
            };
            self.scalars[id.index()] = self.started.elapsed().as_secs_f64();
            return Ok(());
        }
        if name == SIP_RESUME_EPOCH {
            let [Arg::Scalar(id)] = args else {
                return Err(RuntimeError::BadProgram(
                    "sip_resume_epoch takes exactly one scalar argument".into(),
                ));
            };
            self.scalars[id.index()] = self.config.resumed_epochs as f64;
            return Ok(());
        }

        // Marshal arguments.
        let mut marshalled: Vec<SuperArg> = Vec::with_capacity(args.len());
        // (slot index in `marshalled`, origin) for write-back of blocks.
        enum Origin {
            Temp(ArrayId, BlockKey),
            Local(BlockKey, ArrayId),
            Scalar(usize),
        }
        let mut origins: Vec<(usize, Origin)> = Vec::new();
        for arg in args {
            match arg {
                Arg::Block(r) => {
                    let kind = self.layout.array_kind(r.array);
                    let segs = self.seg_values(&r.indices)?;
                    let (key, slice) = self.layout.storage_target(r.array, &r.indices, &segs);
                    if slice.is_some() {
                        return Err(RuntimeError::BadProgram(
                            "sub-addressed execute argument is not supported".into(),
                        ));
                    }
                    // Kernels take blocks by value: unwrap the handle, deep
                    // copying only if another holder still shares it.
                    let unwrap = |w: &mut Worker, h: BlockHandle| -> Block {
                        if h.is_shared() {
                            w.mem.note_deep_copy();
                        }
                        h.into_block()
                    };
                    let block = match kind {
                        ArrayKind::Temp => match self.temps.remove(&r.array) {
                            Some((k, b)) if k == key => unwrap(self, b),
                            Some((_, old)) => {
                                // Stale temp from another iteration: recycle
                                // and hand the kernel a fresh zero block.
                                self.release_handle(old);
                                self.alloc_for(r.array, self.layout.block_shape(&r.indices))?
                            }
                            None => self.alloc_for(r.array, self.layout.block_shape(&r.indices))?,
                        },
                        ArrayKind::Local | ArrayKind::Static => match self.mem.local_take(&key) {
                            Some(b) => unwrap(self, b),
                            None => Block::zeros(self.layout.block_shape(&r.indices)),
                        },
                        other => {
                            return Err(RuntimeError::BadProgram(format!(
                                "execute block arguments must be temp/local/static, got {other:?}"
                            )));
                        }
                    };
                    let origin = match kind {
                        ArrayKind::Temp => Origin::Temp(r.array, key),
                        _ => Origin::Local(key, r.array),
                    };
                    origins.push((marshalled.len(), origin));
                    marshalled.push(SuperArg::Block { segs, block });
                }
                Arg::Scalar(id) => {
                    origins.push((marshalled.len(), Origin::Scalar(id.index())));
                    marshalled.push(SuperArg::Scalar(self.scalars[id.index()]));
                }
                Arg::Index(id) => {
                    marshalled.push(SuperArg::Index(self.index_value(*id)));
                }
            }
        }
        let env = SuperEnv {
            worker: self.worker_index(),
            workers: self.layout.topology.workers,
        };
        let registry = self.registry.clone();
        let result = registry.invoke(name, &mut marshalled, &env);
        // Write back regardless of success so state stays consistent.
        for (slot, origin) in origins.into_iter().rev() {
            match (origin, &mut marshalled[slot]) {
                (Origin::Temp(array, key), SuperArg::Block { block, .. }) => {
                    let b = std::mem::replace(block, Block::scalar(0.0));
                    if let Some((_, old)) = self.temps.insert(array, (key, b.into())) {
                        self.release_handle(old);
                    }
                }
                (Origin::Local(key, _array), SuperArg::Block { block, .. }) => {
                    let b = std::mem::replace(block, Block::scalar(0.0));
                    self.mem.local_insert(key, b.into());
                }
                (Origin::Scalar(i), SuperArg::Scalar(v)) => {
                    self.scalars[i] = *v;
                }
                _ => {
                    return Err(RuntimeError::Internal(
                        "argument marshalling mismatch".into(),
                    ));
                }
            }
        }
        result
    }
}

/// Index-id labels for contraction planning.
fn labels(indices: &[IndexId]) -> Vec<u32> {
    indices.iter().map(|i| i.0).collect()
}

/// Permutes `data` (laid out per `src` ref order) into `dest` ref order.
/// The identity permutation shares the handle — `T(i,j) = V(i,j)` moves no
/// payload bytes.
fn permute_to(
    dest: &BlockRef,
    src: &BlockRef,
    data: &BlockHandle,
) -> Result<BlockHandle, RuntimeError> {
    if dest.indices == src.indices {
        return Ok(data.clone());
    }
    if dest.indices.len() != src.indices.len() {
        return Err(RuntimeError::BadProgram(
            "copy between blocks of different rank".into(),
        ));
    }
    let perm: Option<Vec<usize>> = dest
        .indices
        .iter()
        .map(|d| src.indices.iter().position(|s| s == d))
        .collect();
    let Some(perm) = perm else {
        return Err(RuntimeError::BadProgram(
            "copy with mismatched index sets".into(),
        ));
    };
    Ok(BlockHandle::new(permute(data, &perm)))
}
