//! The SIP master: setup, guided chunk scheduling, barrier and collective
//! coordination, and checkpoint files.
//!
//! "The master is responsible for allocating work to the workers … the set of
//! iterations … is divided into 'chunks' and doled out to the workers"
//! (§V-B). The master also arbitrates both barrier kinds, folds scalar
//! all-reduces, and owns the checkpoint facility built on
//! `blocks_to_list`/`list_to_blocks`.

use crate::error::RuntimeError;
use crate::layout::Layout;
use crate::msg::{BarrierKind, BlockKey, SipMsg};
use crate::profile::WorkerProfile;
use crate::scheduler::{ChunkPolicy, GuidedScheduler, IterationSpace};
use sia_blocks::{Block, Shape};
use sia_bytecode::{ArrayId, Instruction, PutMode};
use sia_fabric::{Endpoint, Rank};
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

struct PardoSched {
    space: IterationSpace,
    sched: GuidedScheduler,
    /// Workers told "no more chunks" (scheduler dropped when all have been).
    drained_notices: usize,
}

#[derive(Default)]
struct CkptSave {
    blocks: Vec<(BlockKey, Block)>,
    done: usize,
}

/// Everything the master knows at the end of a run.
pub struct MasterOutput {
    /// Final scalars per worker (index = worker index).
    pub scalars: Vec<Vec<f64>>,
    /// Collected distributed blocks (when collection was enabled).
    pub collected: HashMap<BlockKey, Block>,
    /// Per-worker profiles.
    pub profiles: Vec<WorkerProfile>,
    /// Warnings raised across all ranks.
    pub warnings: Vec<String>,
}

/// The master rank's controller.
pub struct Master {
    layout: Arc<Layout>,
    endpoint: Endpoint<SipMsg>,
    chunk_policy: ChunkPolicy,
    run_dir: PathBuf,
    schedulers: HashMap<(u32, u64), PardoSched>,
    barrier_waiting: HashMap<u8, Vec<Rank>>,
    reduce_waiting: Vec<Rank>,
    reduce_sum: f64,
    ckpt_saves: HashMap<u32, CkptSave>,
    ckpt_restore_ready: HashMap<u32, usize>,
    done: Vec<Option<(Vec<f64>, WorkerProfile)>>,
    collected: HashMap<BlockKey, Block>,
    warnings: Vec<String>,
    done_count: usize,
}

impl Master {
    /// Creates the master controller.
    pub fn new(
        layout: Arc<Layout>,
        endpoint: Endpoint<SipMsg>,
        chunk_policy: ChunkPolicy,
        run_dir: PathBuf,
    ) -> Self {
        let w = layout.topology.workers;
        Master {
            layout,
            endpoint,
            chunk_policy,
            run_dir,
            schedulers: HashMap::new(),
            barrier_waiting: HashMap::new(),
            reduce_waiting: Vec::new(),
            reduce_sum: 0.0,
            ckpt_saves: HashMap::new(),
            ckpt_restore_ready: HashMap::new(),
            done: (0..w).map(|_| None).collect(),
            collected: HashMap::new(),
            warnings: Vec::new(),
            done_count: 0,
        }
    }

    fn workers(&self) -> usize {
        self.layout.topology.workers
    }

    fn broadcast_workers(&self, make: impl Fn() -> SipMsg) {
        for i in 0..self.workers() {
            let _ = self.endpoint.send(self.layout.topology.worker(i), make());
        }
    }

    /// Lazily builds the filtered iteration space for a pardo. The master
    /// evaluates where clauses against the *initial* scalar table (scalars
    /// are worker-local; using them in where clauses is static by design).
    fn scheduler_for(
        &mut self,
        pardo_pc: u32,
        epoch: u64,
    ) -> Result<&mut PardoSched, RuntimeError> {
        if !self.schedulers.contains_key(&(pardo_pc, epoch)) {
            let Some(Instruction::PardoStart {
                indices,
                where_clauses,
                ..
            }) = self.layout.program.code.get(pardo_pc as usize)
            else {
                return Err(RuntimeError::BadProgram(format!(
                    "chunk request for pc {pardo_pc} which is not a pardo"
                )));
            };
            let ranges: Vec<(i64, i64)> = indices.iter().map(|&i| self.layout.range(i)).collect();
            let scalars: Vec<f64> = self.layout.program.scalars.iter().map(|s| s.init).collect();
            let consts = self.layout.consts.clone();
            let space = IterationSpace::enumerate(
                indices,
                &ranges,
                where_clauses,
                &|i| scalars[i as usize],
                &|i| consts[i as usize],
            );
            let sched =
                GuidedScheduler::with_policy(space.len() as u64, self.workers(), self.chunk_policy);
            self.schedulers.insert(
                (pardo_pc, epoch),
                PardoSched {
                    space,
                    sched,
                    drained_notices: 0,
                },
            );
        }
        Ok(self.schedulers.get_mut(&(pardo_pc, epoch)).unwrap())
    }

    fn handle_chunk_request(
        &mut self,
        src: Rank,
        pardo_pc: u32,
        epoch: u64,
    ) -> Result<(), RuntimeError> {
        let workers = self.workers();
        let sched = self.scheduler_for(pardo_pc, epoch)?;
        match sched.sched.next_chunk() {
            Some(range) => {
                let iters: Vec<Vec<i64>> = range
                    .map(|i| sched.space.iters[i as usize].clone())
                    .collect();
                let _ = self.endpoint.send(
                    src,
                    SipMsg::ChunkAssign {
                        pardo_pc,
                        epoch,
                        iters,
                    },
                );
            }
            None => {
                sched.drained_notices += 1;
                if sched.drained_notices >= workers {
                    // Every worker has moved past this encounter.
                    self.schedulers.remove(&(pardo_pc, epoch));
                }
                let _ = self
                    .endpoint
                    .send(src, SipMsg::NoMoreChunks { pardo_pc, epoch });
            }
        }
        Ok(())
    }

    fn barrier_slot(kind: BarrierKind) -> u8 {
        match kind {
            BarrierKind::Sip => 0,
            BarrierKind::Server => 1,
        }
    }

    fn handle_barrier(&mut self, src: Rank, kind: BarrierKind) {
        let slot = Self::barrier_slot(kind);
        let w = self.workers();
        let waiting = self.barrier_waiting.entry(slot).or_default();
        waiting.push(src);
        if waiting.len() == w {
            waiting.clear();
            self.broadcast_workers(|| SipMsg::BarrierRelease { kind });
        }
    }

    fn handle_reduce(&mut self, src: Rank, value: f64) {
        self.reduce_sum += value;
        self.reduce_waiting.push(src);
        if self.reduce_waiting.len() == self.workers() {
            let total = self.reduce_sum;
            self.reduce_waiting.clear();
            self.reduce_sum = 0.0;
            self.broadcast_workers(|| SipMsg::ReduceResult { value: total });
        }
    }

    fn ckpt_path(&self, label: u32) -> PathBuf {
        let name = self
            .layout
            .program
            .strings
            .get(label as usize)
            .cloned()
            .unwrap_or_else(|| format!("label{label}"));
        // Sanitize: labels are user strings.
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.run_dir.join(format!("ckpt_{safe}.sialck"))
    }

    fn handle_ckpt_done(&mut self, label: u32, restore: bool) -> Result<(), RuntimeError> {
        if restore {
            let ready = self.ckpt_restore_ready.entry(label).or_insert(0);
            *ready += 1;
            if *ready == self.workers() {
                self.ckpt_restore_ready.remove(&label);
                let blocks = read_checkpoint(&self.ckpt_path(label))?;
                for (key, data) in blocks {
                    let home = self.layout.topology.home_of_distributed(&key);
                    let _ = self.endpoint.send(
                        home,
                        SipMsg::PutBlock {
                            key,
                            data,
                            mode: PutMode::Replace,
                        },
                    );
                }
                // FIFO per pair: each worker sees its restored blocks before
                // the release.
                self.broadcast_workers(|| SipMsg::CkptRelease { label });
            }
        } else {
            let save = self.ckpt_saves.entry(label).or_default();
            save.done += 1;
            if save.done == self.workers() {
                let save = self.ckpt_saves.remove(&label).unwrap();
                write_checkpoint(&self.ckpt_path(label), &save.blocks)?;
                self.broadcast_workers(|| SipMsg::CkptRelease { label });
            }
        }
        Ok(())
    }

    /// Runs the master loop until all workers are done (or one failed).
    pub fn run(mut self) -> Result<MasterOutput, RuntimeError> {
        loop {
            let Some(env) = self.endpoint.recv_timeout(Duration::from_millis(5)) else {
                if self.endpoint.shutdown_raised() {
                    return Err(RuntimeError::PeerGone("shutdown during run".into()));
                }
                continue;
            };
            let src = env.src;
            match env.msg {
                SipMsg::ChunkRequest { pardo_pc, epoch } => {
                    self.handle_chunk_request(src, pardo_pc, epoch)?;
                }
                SipMsg::BarrierEnter { kind } => self.handle_barrier(src, kind),
                SipMsg::ReduceContrib { value } => self.handle_reduce(src, value),
                SipMsg::CkptBlock { label, key, data } => {
                    self.ckpt_saves
                        .entry(label)
                        .or_default()
                        .blocks
                        .push((key, data));
                }
                SipMsg::CkptDone { label, restore } => {
                    self.handle_ckpt_done(label, restore)?;
                }
                SipMsg::PutAck { .. } => {} // from checkpoint restores
                SipMsg::WorkerDone {
                    scalars,
                    blocks,
                    profile,
                    warnings,
                } => {
                    let w = self.layout.topology.worker_index(src);
                    if self.done[w].is_none() {
                        self.done_count += 1;
                    }
                    self.done[w] = Some((scalars, profile));
                    self.collected.extend(blocks);
                    self.warnings.extend(warnings);
                    if self.done_count == self.workers() {
                        // Everyone finished: release the service loops.
                        self.broadcast_workers(|| SipMsg::Shutdown);
                        for j in 0..self.layout.topology.io_servers {
                            let _ = self
                                .endpoint
                                .send(self.layout.topology.io_server(j), SipMsg::Shutdown);
                        }
                        let mut scalars_out = Vec::with_capacity(self.workers());
                        let mut profiles = Vec::with_capacity(self.workers());
                        for slot in self.done.drain(..) {
                            let (s, p) = slot.expect("all workers done");
                            scalars_out.push(s);
                            profiles.push(p);
                        }
                        return Ok(MasterOutput {
                            scalars: scalars_out,
                            collected: self.collected,
                            profiles,
                            warnings: self.warnings,
                        });
                    }
                }
                SipMsg::WorkerFailed { error } => {
                    self.endpoint.raise_shutdown();
                    self.broadcast_workers(|| SipMsg::Shutdown);
                    for j in 0..self.layout.topology.io_servers {
                        let _ = self
                            .endpoint
                            .send(self.layout.topology.io_server(j), SipMsg::Shutdown);
                    }
                    return Err(RuntimeError::Internal(format!(
                        "worker {src} failed: {error}"
                    )));
                }
                other => {
                    self.warnings
                        .push(format!("master ignored unexpected message: {other:?}"));
                }
            }
        }
    }
}

// ---- checkpoint files -----------------------------------------------------------

/// Writes a checkpoint: magic, block count, then per block the key and data.
pub fn write_checkpoint(path: &Path, blocks: &[(BlockKey, Block)]) -> Result<(), RuntimeError> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(b"SIACKPT1");
    buf.extend_from_slice(&(blocks.len() as u64).to_le_bytes());
    for (key, block) in blocks {
        buf.extend_from_slice(&key.array.0.to_le_bytes());
        buf.push(key.rank);
        for &s in key.segs() {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let dims = block.shape().dims();
        buf.push(dims.len() as u8);
        for &d in dims {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        for v in block.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let tmp = path.with_extension("tmp");
    fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(&buf))
        .and_then(|_| fs::rename(&tmp, path))
        .map_err(|e| RuntimeError::Checkpoint(format!("write {}: {e}", path.display())))
}

/// Reads a checkpoint written by [`write_checkpoint`].
pub fn read_checkpoint(path: &Path) -> Result<Vec<(BlockKey, Block)>, RuntimeError> {
    let mut raw = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| RuntimeError::Checkpoint(format!("read {}: {e}", path.display())))?;
    let fail = |m: &str| RuntimeError::Checkpoint(format!("{m} in {}", path.display()));
    if raw.len() < 16 || &raw[..8] != b"SIACKPT1" {
        return Err(fail("bad header"));
    }
    let count = u64::from_le_bytes(raw[8..16].try_into().unwrap()) as usize;
    let mut off = 16;
    let mut take = |n: usize| -> Result<std::ops::Range<usize>, RuntimeError> {
        if off + n > raw.len() {
            return Err(RuntimeError::Checkpoint("truncated checkpoint".into()));
        }
        let r = off..off + n;
        off += n;
        Ok(r)
    };
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let array = u32::from_le_bytes(raw[take(4)?].try_into().unwrap());
        let rank = raw[take(1)?][0] as usize;
        let mut segs = Vec::with_capacity(rank);
        for _ in 0..rank {
            segs.push(i32::from_le_bytes(raw[take(4)?].try_into().unwrap()) as i64);
        }
        let drank = raw[take(1)?][0] as usize;
        let mut dims = Vec::with_capacity(drank);
        for _ in 0..drank {
            dims.push(u32::from_le_bytes(raw[take(4)?].try_into().unwrap()) as usize);
        }
        let shape = if dims.is_empty() {
            Shape::scalar()
        } else {
            Shape::new(&dims)
        };
        let mut data = Vec::with_capacity(shape.len());
        for _ in 0..shape.len() {
            data.push(f64::from_le_bytes(raw[take(8)?].try_into().unwrap()));
        }
        out.push((
            BlockKey::new(ArrayId(array), &segs),
            Block::from_data(shape, data),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sia-ckpt-test-{tag}-{}.sialck", std::process::id()))
    }

    #[test]
    fn checkpoint_roundtrip() {
        let path = tmpfile("rt");
        let blocks = vec![
            (
                BlockKey::new(ArrayId(2), &[1, 2, 3]),
                Block::from_fn(Shape::new(&[2, 2]), |i| (i[0] + i[1]) as f64),
            ),
            (
                BlockKey::new(ArrayId(2), &[4, 5, 6]),
                Block::filled(Shape::new(&[3]), -1.5),
            ),
        ];
        write_checkpoint(&path, &blocks).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(blocks, back);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn empty_checkpoint_roundtrip() {
        let path = tmpfile("empty");
        write_checkpoint(&path, &[]).unwrap();
        assert!(read_checkpoint(&path).unwrap().is_empty());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn corrupt_checkpoint_rejected() {
        let path = tmpfile("bad");
        fs::write(&path, b"NOTACKPT").unwrap();
        assert!(read_checkpoint(&path).is_err());
        let _ = fs::remove_file(path);
    }
}
