//! The SIP master: setup, guided chunk scheduling, barrier and collective
//! coordination, checkpoint files, and — under fault tolerance — the
//! liveness monitor and rank-failure recovery.
//!
//! "The master is responsible for allocating work to the workers … the set of
//! iterations … is divided into 'chunks' and doled out to the workers"
//! (§V-B). The master also arbitrates both barrier kinds, folds scalar
//! all-reduces, and owns the checkpoint facility built on
//! `blocks_to_list`/`list_to_blocks`.
//!
//! Under fault tolerance the master additionally tracks worker heartbeats,
//! declares silent workers dead, restores a dead worker's last epoch
//! checkpoint to the surviving homes, broadcasts `RankDead`, and re-queues
//! the corpse's unacknowledged pardo chunks to workers parked at the
//! post-pardo barrier (see DESIGN.md "Fault model & recovery").

use crate::error::{CommKind, RuntimeError};
use crate::events::{EventKind, RecoveryEvent, TraceEvent, TraceSink};
use crate::ft;
use crate::layout::{FaultConfig, Layout, Placement};
use crate::metrics::{Merge, RecoveryStats, ServerStats};
use crate::msg::{BarrierKind, BlockKey, OpId, SipMsg};
use crate::plan::CommPlan;
use crate::profile::WorkerProfile;
use crate::scheduler::{ChunkPolicy, GuidedScheduler, IterationSpace};
use sia_blocks::{Block, BlockHandle, Shape};
use sia_bytecode::{ArrayId, Instruction, PutMode};
use sia_fabric::{Endpoint, Rank};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct PardoSched {
    space: IterationSpace,
    sched: GuidedScheduler,
    /// Owner-compute affinity (planned placement only): per-worker queues
    /// of indices into `space.iters`, each queue holding the iterations
    /// whose output block is homed at that worker. Requests are served
    /// from the requester's queue first, stealing from the fullest other
    /// queue when it drains — guided chunk sizing is unchanged.
    affinity: Option<Vec<VecDeque<u64>>>,
    /// Workers told "no more chunks" (scheduler dropped when all have been).
    drained_notices: usize,
    /// Next chunk id within this (pardo, epoch).
    next_chunk: u64,
    /// Unacknowledged chunks by id (tracked only under fault tolerance):
    /// assignee's worker index plus the iterations, retained so the chunk
    /// can be re-queued verbatim if the assignee dies.
    outstanding: HashMap<u64, (usize, Vec<Vec<i64>>)>,
    /// Acknowledged chunks (fault tolerance only), retained until the
    /// sip-barrier epoch checkpoint. A worker's *local* puts are never
    /// journaled anywhere else — under owner-compute affinity that is most
    /// of its output — so when the assignee dies mid-epoch its acked chunks
    /// are re-queued too and recomputed (Replace puts are value-idempotent;
    /// survivors' copies just get overwritten with identical bits).
    acked: HashMap<u64, (usize, Vec<Vec<i64>>)>,
}

#[derive(Default)]
struct CkptSave {
    blocks: Vec<(BlockKey, BlockHandle)>,
    done: usize,
}

/// A batch of master-issued restore puts awaiting acks (retried on timeout).
/// Restore puts are Replace-mode and untracked, so duplicates from retries
/// are naturally idempotent. The pending map shares each payload with the
/// wire message, so a retry re-sends the same allocation.
struct PutFlight {
    pending: HashMap<BlockKey, (Rank, BlockHandle)>,
    sent_at: Instant,
    timeout: Duration,
    attempts: u32,
    then: AfterFlight,
}

/// What to do once a [`PutFlight`] fully acks.
enum AfterFlight {
    /// Finish declaring a rank dead: broadcast `RankDead` and re-queue its
    /// chunks.
    Recovery {
        dead_widx: usize,
        inherited_ops: Vec<u64>,
    },
    /// Release a `list_to_blocks` rendezvous.
    CkptRelease { label: u32 },
}

/// Everything the master knows at the end of a run.
pub struct MasterOutput {
    /// Final scalars per worker (index = worker index; empty for a worker
    /// that died and was recovered around).
    pub scalars: Vec<Vec<f64>>,
    /// Collected distributed blocks (when collection was enabled).
    pub collected: HashMap<BlockKey, Block>,
    /// Per-worker profiles.
    pub profiles: Vec<WorkerProfile>,
    /// Warnings raised across all ranks.
    pub warnings: Vec<String>,
    /// Master-side recovery counters (all zero on fault-free runs).
    pub recovery: RecoveryStats,
    /// I/O-server counters, merged across servers.
    pub server: ServerStats,
    /// Per-I/O-server trace events: (rank, events, dropped). Empty unless
    /// tracing was enabled.
    pub server_events: Vec<(Rank, Vec<TraceEvent>, u64)>,
    /// The master's own trace events (empty unless tracing was enabled).
    pub master_events: Vec<TraceEvent>,
    /// Events the master's ring buffer overwrote.
    pub master_dropped: u64,
}

/// The master rank's controller.
pub struct Master {
    layout: Arc<Layout>,
    endpoint: Endpoint<SipMsg>,
    chunk_policy: ChunkPolicy,
    run_dir: PathBuf,
    fault: Option<FaultConfig>,
    schedulers: HashMap<(u32, u64), PardoSched>,
    barrier_waiting: HashMap<u8, Vec<Rank>>,
    reduce_waiting: Vec<Rank>,
    reduce_sum: f64,
    ckpt_saves: HashMap<u32, CkptSave>,
    ckpt_restore_ready: HashMap<u32, usize>,
    done: Vec<Option<(Vec<f64>, WorkerProfile)>>,
    collected: HashMap<BlockKey, Block>,
    warnings: Vec<String>,
    done_count: usize,
    // ---- fault tolerance ----------------------------------------------------
    /// Liveness: last message seen from each worker.
    last_seen: Vec<Instant>,
    /// Workers still considered alive.
    alive: Vec<bool>,
    /// Deaths detected while another recovery was in flight.
    pending_deaths: VecDeque<usize>,
    /// In-flight restore puts (recovery or checkpoint restore).
    flight: Option<PutFlight>,
    /// Re-queued chunks awaiting a parked worker.
    takeover_queue: VecDeque<(u32, u64, u64, Vec<Vec<i64>>)>,
    /// Dispatched takeover chunks awaiting their `ChunkDone`.
    takeover_outstanding: HashSet<(u32, u64, u64)>,
    takeover_rr: usize,
    recovery: RecoveryStats,
    /// Completed served-array epochs (manifest counter).
    served_epochs: u64,
    /// A served-epoch commit in progress: (epoch, acks still missing).
    epoch_pending: Option<(u64, usize)>,
    // ---- communication plan -------------------------------------------------
    /// The derived communication plan (empty default unless the runtime
    /// installs one); drives owner-compute chunk affinity under planned
    /// placement.
    plan: Arc<CommPlan>,
    // ---- observability ------------------------------------------------------
    trace: TraceSink,
    // ---- serving ------------------------------------------------------------
    /// Multi-tenant serving hooks: when set, chunk grants consult the
    /// daemon-wide fair-share arbiter and report progress to it.
    serving: Option<crate::serve::ServeHandles>,
    /// Pardo pcs whose iteration count was registered with the arbiter up
    /// front (at [`Master::set_serving`]); the first scheduler build for
    /// such a pc consumes the entry instead of re-adding its total.
    serving_precounted: HashSet<u32>,
}

impl Master {
    /// Creates the master controller. `fault` enables the liveness monitor,
    /// chunk-ack tracking, and served-epoch manifests.
    pub fn new(
        layout: Arc<Layout>,
        endpoint: Endpoint<SipMsg>,
        chunk_policy: ChunkPolicy,
        run_dir: PathBuf,
        fault: Option<FaultConfig>,
    ) -> Self {
        let w = layout.topology.workers;
        Master {
            layout,
            endpoint,
            chunk_policy,
            run_dir,
            fault,
            schedulers: HashMap::new(),
            barrier_waiting: HashMap::new(),
            reduce_waiting: Vec::new(),
            reduce_sum: 0.0,
            ckpt_saves: HashMap::new(),
            ckpt_restore_ready: HashMap::new(),
            done: (0..w).map(|_| None).collect(),
            collected: HashMap::new(),
            warnings: Vec::new(),
            done_count: 0,
            last_seen: vec![Instant::now(); w],
            alive: vec![true; w],
            pending_deaths: VecDeque::new(),
            flight: None,
            takeover_queue: VecDeque::new(),
            takeover_outstanding: HashSet::new(),
            takeover_rr: 0,
            recovery: RecoveryStats::default(),
            served_epochs: 0,
            epoch_pending: None,
            plan: Arc::new(CommPlan::default()),
            trace: TraceSink::disabled(),
            serving: None,
            serving_precounted: HashSet::new(),
        }
    }

    /// Installs the serving hooks (fair-share arbiter) for a daemon job,
    /// and registers the program's full iteration-space total up front.
    /// Totals must not trickle in pardo-by-pardo: a job entering its second
    /// pardo would see its progress fraction halve and look *behind* jobs
    /// still grinding through their first, defeating the pacing that keeps
    /// normalized service rates level across the batch.
    pub(crate) fn set_serving(&mut self, handles: crate::serve::ServeHandles) {
        let scalars: Vec<f64> = self.layout.program.scalars.iter().map(|s| s.init).collect();
        let consts = self.layout.consts.clone();
        let mut total = 0u64;
        // Pcs the sum covers; a pc whose enumeration fails here stays out
        // and registers at first build like any re-execution.
        let mut counted = HashSet::new();
        for (pc, ins) in self.layout.program.code.iter().enumerate() {
            let Instruction::PardoStart {
                indices,
                where_clauses,
                ..
            } = ins
            else {
                continue;
            };
            let ranges: Vec<(i64, i64)> = indices.iter().map(|&i| self.layout.range(i)).collect();
            let Ok(space) = IterationSpace::enumerate(
                indices,
                &ranges,
                where_clauses,
                &|i| scalars[i as usize],
                &|i| consts[i as usize],
            ) else {
                continue;
            };
            total += space.len() as u64;
            counted.insert(pc as u32);
        }
        self.serving_precounted = counted;
        handles.arbiter.add_total(handles.job, total);
        self.serving = Some(handles);
    }

    /// Installs an event-trace sink (shared-epoch; see [`TraceSink`]).
    pub(crate) fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Installs the communication plan (called by the runtime before the
    /// program starts).
    pub(crate) fn set_plan(&mut self, plan: Arc<CommPlan>) {
        self.plan = plan;
    }

    fn workers(&self) -> usize {
        self.layout.topology.workers
    }

    fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    fn broadcast_workers(&self, make: impl Fn() -> SipMsg) {
        for i in 0..self.workers() {
            let _ = self.endpoint.send(self.layout.topology.worker(i), make());
        }
    }

    /// Lazily builds the filtered iteration space for a pardo. The master
    /// evaluates where clauses against the *initial* scalar table (scalars
    /// are worker-local; using them in where clauses is static by design).
    fn scheduler_for(
        &mut self,
        pardo_pc: u32,
        epoch: u64,
    ) -> Result<&mut PardoSched, RuntimeError> {
        if !self.schedulers.contains_key(&(pardo_pc, epoch)) {
            let Some(Instruction::PardoStart {
                indices,
                where_clauses,
                ..
            }) = self.layout.program.code.get(pardo_pc as usize)
            else {
                return Err(RuntimeError::BadProgram(format!(
                    "chunk request for pc {pardo_pc} which is not a pardo"
                )));
            };
            let ranges: Vec<(i64, i64)> = indices.iter().map(|&i| self.layout.range(i)).collect();
            let scalars: Vec<f64> = self.layout.program.scalars.iter().map(|s| s.init).collect();
            let consts = self.layout.consts.clone();
            let space = IterationSpace::enumerate(
                indices,
                &ranges,
                where_clauses,
                &|i| scalars[i as usize],
                &|i| consts[i as usize],
            )
            .map_err(|e| match e {
                // Attribute malformed-bytecode findings to the source
                // statement when the program carries a line table.
                RuntimeError::BadBytecode(m) => RuntimeError::BadBytecode(format!(
                    "{}: {m}",
                    self.layout.program.locate_pc(pardo_pc)
                )),
                other => other,
            })?;
            if let Some(h) = &self.serving {
                // Pre-counted at set_serving; only a re-execution of the
                // same pardo (a later epoch) grows the job's total.
                if !self.serving_precounted.remove(&pardo_pc) {
                    h.arbiter.add_total(h.job, space.len() as u64);
                }
            }
            let sched =
                GuidedScheduler::with_policy(space.len() as u64, self.workers(), self.chunk_policy);
            // Owner-compute affinity: under planned placement, bucket the
            // iterations by the home of the block each one writes, so the
            // writing rank is (preferentially) the owning rank and the put
            // short-circuits locally.
            let affinity = if self.layout.topology.placement == Placement::Planned {
                self.plan
                    .region(pardo_pc)
                    .and_then(|r| r.owner.as_ref())
                    .map(|oc| {
                        let w = self.layout.topology.workers;
                        let mut buckets: Vec<VecDeque<u64>> = vec![VecDeque::new(); w];
                        for (i, iter) in space.iters.iter().enumerate() {
                            let slot = self.layout.slot_of_distributed(&oc.key_of(iter));
                            buckets[slot % w].push_back(i as u64);
                        }
                        buckets
                    })
            } else {
                None
            };
            self.schedulers.insert(
                (pardo_pc, epoch),
                PardoSched {
                    space,
                    sched,
                    affinity,
                    drained_notices: 0,
                    next_chunk: 0,
                    outstanding: HashMap::new(),
                    acked: HashMap::new(),
                },
            );
        }
        Ok(self.schedulers.get_mut(&(pardo_pc, epoch)).unwrap())
    }

    fn handle_chunk_request(
        &mut self,
        src: Rank,
        pardo_pc: u32,
        epoch: u64,
    ) -> Result<(), RuntimeError> {
        let ft_on = self.fault.is_some();
        let alive = self.alive_count();
        let widx = self.layout.topology.worker_index(src);
        // Fair-share: a job ahead of its peers' normalized progress gets a
        // scaled-down chunk (the arbiter also yields briefly when well
        // ahead), slowing its grant loop until the others catch up.
        let serving = self.serving.clone();
        let scale = serving
            .as_ref()
            .map(|h| h.arbiter.chunk_scale(h.job))
            .unwrap_or(1.0);
        let sched = self.scheduler_for(pardo_pc, epoch)?;
        match sched.sched.next_chunk_scaled(scale) {
            Some(range) => {
                // The guided policy still sizes every chunk; affinity only
                // changes *which* iterations fill it (requester's bucket
                // first, stealing from the fullest other bucket so the
                // tail stays balanced).
                let iters: Vec<Vec<i64>> = match &mut sched.affinity {
                    Some(buckets) => {
                        let want = (range.end - range.start) as usize;
                        let mut ids = Vec::with_capacity(want);
                        while ids.len() < want {
                            if let Some(i) = buckets.get_mut(widx).and_then(VecDeque::pop_front) {
                                ids.push(i);
                                continue;
                            }
                            let donor = (0..buckets.len())
                                .filter(|&b| !buckets[b].is_empty())
                                .max_by_key(|&b| buckets[b].len());
                            match donor {
                                Some(b) => ids.push(buckets[b].pop_front().unwrap()),
                                None => break,
                            }
                        }
                        ids.iter()
                            .map(|&i| sched.space.iters[i as usize].clone())
                            .collect()
                    }
                    None => range
                        .map(|i| sched.space.iters[i as usize].clone())
                        .collect(),
                };
                let chunk = sched.next_chunk;
                sched.next_chunk += 1;
                if ft_on {
                    sched.outstanding.insert(chunk, (widx, iters.clone()));
                }
                if let Some(h) = &serving {
                    h.arbiter.record_grant(h.job, iters.len() as u64);
                }
                let _ = self.endpoint.send(
                    src,
                    SipMsg::ChunkAssign {
                        pardo_pc,
                        epoch,
                        chunk,
                        iters,
                    },
                );
            }
            None => {
                sched.drained_notices += 1;
                // Under fault tolerance the scheduler is retained until the
                // sip-barrier release: its outstanding map is what lets the
                // master re-queue a dead assignee's chunks.
                if !ft_on && sched.drained_notices >= alive {
                    // Every worker has moved past this encounter.
                    self.schedulers.remove(&(pardo_pc, epoch));
                }
                let _ = self
                    .endpoint
                    .send(src, SipMsg::NoMoreChunks { pardo_pc, epoch });
            }
        }
        Ok(())
    }

    fn barrier_slot(kind: BarrierKind) -> u8 {
        match kind {
            BarrierKind::Sip => 0,
            BarrierKind::Server => 1,
        }
    }

    fn handle_barrier(&mut self, src: Rank, kind: BarrierKind) {
        let slot = Self::barrier_slot(kind);
        self.barrier_waiting.entry(slot).or_default().push(src);
        self.try_release(kind);
    }

    /// Releases a barrier if its conditions hold. Under fault tolerance the
    /// sip barrier additionally waits for recovery to settle: no restore in
    /// flight, no re-queued chunk unassigned or unacknowledged.
    fn try_release(&mut self, kind: BarrierKind) {
        let slot = Self::barrier_slot(kind);
        let target = self.alive_count();
        let waiting_n = self.barrier_waiting.get(&slot).map_or(0, Vec::len);
        if waiting_n < target {
            return;
        }
        if self.fault.is_some() {
            match kind {
                BarrierKind::Sip => {
                    if self.flight.is_some() || !self.pending_deaths.is_empty() {
                        return;
                    }
                    self.dispatch_takeovers();
                    if !self.takeover_queue.is_empty()
                        || !self.takeover_outstanding.is_empty()
                        || self.schedulers.values().any(|s| !s.outstanding.is_empty())
                    {
                        return;
                    }
                    // Every chunk of the epoch is acknowledged: the pardo
                    // encounter is history, recovery state can be dropped.
                    self.schedulers.clear();
                }
                BarrierKind::Server => {
                    if self.layout.topology.io_servers > 0 {
                        // Commit a served-array epoch before releasing: the
                        // I/O servers flush and write their manifests, then
                        // the master records the epoch as durable.
                        if self.epoch_pending.is_some() {
                            return;
                        }
                        let epoch = self.served_epochs + 1;
                        for j in 0..self.layout.topology.io_servers {
                            let _ = self.endpoint.send(
                                self.layout.topology.io_server(j),
                                SipMsg::EpochMark { epoch },
                            );
                        }
                        self.epoch_pending = Some((epoch, self.layout.topology.io_servers));
                        return; // released when the last EpochAck arrives
                    }
                }
            }
        }
        if let Some(w) = self.barrier_waiting.get_mut(&slot) {
            w.clear();
        }
        self.broadcast_workers(|| SipMsg::BarrierRelease { kind });
    }

    fn handle_epoch_ack(&mut self, epoch: u64) {
        let Some((e, remaining)) = &mut self.epoch_pending else {
            return;
        };
        if *e != epoch {
            return;
        }
        *remaining -= 1;
        if *remaining > 0 {
            return;
        }
        self.epoch_pending = None;
        self.served_epochs = epoch;
        if let Err(e) = write_epoch_manifest(&self.run_dir, epoch) {
            self.warnings.push(format!("epoch manifest: {e}"));
        }
        if let Some(w) = self
            .barrier_waiting
            .get_mut(&Self::barrier_slot(BarrierKind::Server))
        {
            w.clear();
        }
        self.broadcast_workers(|| SipMsg::BarrierRelease {
            kind: BarrierKind::Server,
        });
    }

    fn handle_reduce(&mut self, src: Rank, value: f64) {
        self.reduce_sum += value;
        self.reduce_waiting.push(src);
        if self.reduce_waiting.len() == self.alive_count() {
            let total = self.reduce_sum;
            self.reduce_waiting.clear();
            self.reduce_sum = 0.0;
            self.broadcast_workers(|| SipMsg::ReduceResult { value: total });
        }
    }

    fn ckpt_path(&self, label: u32) -> PathBuf {
        let name = self
            .layout
            .program
            .strings
            .get(label as usize)
            .cloned()
            .unwrap_or_else(|| format!("label{label}"));
        // Sanitize: labels are user strings.
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.run_dir.join(format!("ckpt_{safe}.sialck"))
    }

    fn handle_ckpt_done(&mut self, label: u32, restore: bool) -> Result<(), RuntimeError> {
        if restore {
            let ready = self.ckpt_restore_ready.entry(label).or_insert(0);
            *ready += 1;
            if *ready == self.alive_count() {
                self.ckpt_restore_ready.remove(&label);
                self.trace.instant(EventKind::Checkpoint { restore: true });
                let blocks = read_checkpoint(&self.ckpt_path(label))?;
                let dead: Vec<bool> = self.alive.iter().map(|a| !a).collect();
                let track = self.fault.is_some() && self.flight.is_none();
                let mut pending: HashMap<BlockKey, (Rank, BlockHandle)> = HashMap::new();
                for (key, data) in blocks {
                    let data: BlockHandle = data.into();
                    let home = self.layout.home_of_distributed_excluding(&key, &dead);
                    let _ = self.endpoint.send(
                        home,
                        SipMsg::PutBlock {
                            key,
                            data: data.clone(),
                            mode: PutMode::Replace,
                            op: OpId::NONE,
                        },
                    );
                    if track {
                        pending.insert(key, (home, data));
                    }
                }
                if track && !pending.is_empty() {
                    // Restore puts ride the faultable data plane: hold the
                    // release until every one is acknowledged (retrying).
                    let f = self.fault.as_ref().unwrap();
                    self.flight = Some(PutFlight {
                        pending,
                        sent_at: Instant::now(),
                        timeout: f.retry_timeout,
                        attempts: 0,
                        then: AfterFlight::CkptRelease { label },
                    });
                } else {
                    // FIFO per pair: each worker sees its restored blocks
                    // before the release.
                    self.broadcast_workers(|| SipMsg::CkptRelease { label });
                }
            }
        } else {
            let save = self.ckpt_saves.entry(label).or_default();
            save.done += 1;
            if save.done == self.alive_count() {
                let save = self.ckpt_saves.remove(&label).unwrap();
                self.trace.instant(EventKind::Checkpoint { restore: false });
                write_checkpoint(&self.ckpt_path(label), &save.blocks)?;
                self.broadcast_workers(|| SipMsg::CkptRelease { label });
            }
        }
        Ok(())
    }

    // ---- rank-failure recovery ----------------------------------------------

    /// Per-loop bookkeeping: liveness checks, queued deaths, flight retries.
    fn tick(&mut self) -> Result<(), RuntimeError> {
        let Some(f) = &self.fault else {
            return Ok(());
        };
        let (liveness, retry_timeout, backoff, max_retries) = (
            f.liveness_timeout,
            f.retry_timeout,
            f.retry_backoff,
            f.max_retries,
        );
        // The liveness monitor only arms when a crash is plausible: workers
        // inside long serial kernels do not beat, and a drop-only plan must
        // never false-positive a healthy rank.
        if f.expects_crash() {
            for w in 0..self.workers() {
                if self.alive[w]
                    && self.done[w].is_none()
                    && self.last_seen[w].elapsed() > liveness
                    && !self.pending_deaths.contains(&w)
                {
                    self.pending_deaths.push_back(w);
                }
            }
        }
        if self.flight.is_none() {
            if let Some(w) = self.pending_deaths.pop_front() {
                self.start_recovery(w, retry_timeout)?;
            }
        }
        if self.flight.as_ref().is_some_and(|fl| fl.pending.is_empty()) {
            // Nothing left in flight (e.g. the restore had no blocks to put,
            // or every ack drained before this tick). Complete it instead of
            // panicking on "nonempty flight" in the timeout arm below.
            let fl = self.flight.take().expect("checked above");
            self.complete_flight(fl.then);
        }
        if let Some(fl) = &mut self.flight {
            if fl.sent_at.elapsed() > fl.timeout {
                fl.attempts += 1;
                if fl.attempts > max_retries {
                    let home = fl
                        .pending
                        .values()
                        .map(|(home, _)| *home)
                        .next()
                        .unwrap_or(self.layout.topology.master());
                    return Err(RuntimeError::Comm {
                        kind: CommKind::Timeout,
                        rank: home,
                        key: None,
                        context: "restore put unacknowledged after retries".into(),
                    });
                }
                fl.sent_at = Instant::now();
                fl.timeout = fl.timeout.mul_f64(backoff);
                for (key, (home, data)) in &fl.pending {
                    let _ = self.endpoint.send(
                        *home,
                        SipMsg::PutBlock {
                            key: *key,
                            data: data.clone(),
                            mode: PutMode::Replace,
                            op: OpId::NONE,
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// Declares worker `widx` dead: re-queues its unacknowledged chunks and
    /// starts restoring its last epoch checkpoint to the surviving homes.
    /// `RankDead` is broadcast only once the restore fully acks, so
    /// survivors never replay journals onto pre-restore state.
    fn start_recovery(&mut self, widx: usize, retry_timeout: Duration) -> Result<(), RuntimeError> {
        let dead_rank = self.layout.topology.worker(widx);
        self.alive[widx] = false;
        self.recovery.ranks_died += 1;
        self.trace.instant(EventKind::Recovery {
            what: RecoveryEvent::RankDead,
        });
        self.warnings
            .push(format!("worker {widx} declared dead; recovering"));
        for (&(pc, ep), s) in &mut self.schedulers {
            let mine: Vec<u64> = s
                .outstanding
                .iter()
                .filter(|(_, (w, _))| *w == widx)
                .map(|(&c, _)| c)
                .collect();
            for c in mine {
                let (_, iters) = s.outstanding.remove(&c).unwrap();
                self.takeover_queue.push_back((pc, ep, c, iters));
                self.recovery.requeued_chunks += 1;
                self.trace.instant(EventKind::Recovery {
                    what: RecoveryEvent::Requeue,
                });
            }
            // The corpse's acked chunks this epoch: their local puts lived
            // only in the corpse's memory (nothing journals a local put),
            // so recompute them as well. Survivor-homed blocks are simply
            // re-put with identical bits.
            let acked: Vec<u64> = s
                .acked
                .iter()
                .filter(|(_, (w, _))| *w == widx)
                .map(|(&c, _)| c)
                .collect();
            for c in acked {
                let (_, iters) = s.acked.remove(&c).unwrap();
                self.takeover_queue.push_back((pc, ep, c, iters));
                self.recovery.requeued_chunks += 1;
                self.trace.instant(EventKind::Recovery {
                    what: RecoveryEvent::Requeue,
                });
            }
        }
        for w in self.barrier_waiting.values_mut() {
            w.retain(|r| *r != dead_rank);
        }
        self.reduce_waiting.retain(|r| *r != dead_rank);
        let path = ft::epoch_ckpt_path(&self.run_dir, widx);
        let (blocks, ops) = match ft::read_epoch_checkpoint(&path) {
            Ok((_, blocks, ops)) => (blocks, ops),
            // No checkpoint: the worker died before its first sip barrier,
            // so everything it homed belongs to unacked chunks or journals.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), Vec::new()),
            Err(e) => {
                return Err(RuntimeError::Checkpoint(format!(
                    "epoch checkpoint {}: {e}",
                    path.display()
                )));
            }
        };
        let dead: Vec<bool> = self.alive.iter().map(|a| !a).collect();
        let mut pending: HashMap<BlockKey, (Rank, BlockHandle)> = HashMap::new();
        for (key, data) in blocks {
            let data: BlockHandle = data.into();
            let home = self.layout.home_of_distributed_excluding(&key, &dead);
            let _ = self.endpoint.send(
                home,
                SipMsg::PutBlock {
                    key,
                    data: data.clone(),
                    mode: PutMode::Replace,
                    op: OpId::NONE,
                },
            );
            pending.insert(key, (home, data));
            self.recovery.restored_blocks += 1;
            self.trace.instant(EventKind::Recovery {
                what: RecoveryEvent::Restore,
            });
        }
        if pending.is_empty() {
            self.finish_recovery(widx, ops);
        } else {
            self.flight = Some(PutFlight {
                pending,
                sent_at: Instant::now(),
                timeout: retry_timeout,
                attempts: 0,
                then: AfterFlight::Recovery {
                    dead_widx: widx,
                    inherited_ops: ops,
                },
            });
        }
        Ok(())
    }

    fn finish_recovery(&mut self, widx: usize, inherited_ops: Vec<u64>) {
        let dead_rank = self.layout.topology.worker(widx);
        for i in 0..self.workers() {
            if self.alive[i] {
                let _ = self.endpoint.send(
                    self.layout.topology.worker(i),
                    SipMsg::RankDead {
                        rank: dead_rank,
                        inherited_ops: inherited_ops.clone(),
                    },
                );
            }
        }
        self.dispatch_takeovers();
        self.try_release(BarrierKind::Sip);
        self.try_release(BarrierKind::Server);
    }

    /// Hands queued takeover chunks to workers parked at the sip barrier
    /// (round-robin). No-op until at least one survivor is parked.
    fn dispatch_takeovers(&mut self) {
        if self.takeover_queue.is_empty() {
            return;
        }
        let waiting: Vec<Rank> = self
            .barrier_waiting
            .get(&Self::barrier_slot(BarrierKind::Sip))
            .cloned()
            .unwrap_or_default();
        if waiting.is_empty() {
            return;
        }
        while let Some((pardo_pc, epoch, chunk, iters)) = self.takeover_queue.pop_front() {
            let target = waiting[self.takeover_rr % waiting.len()];
            self.takeover_rr += 1;
            let _ = self.endpoint.send(
                target,
                SipMsg::Takeover {
                    pardo_pc,
                    epoch,
                    chunk,
                    iters,
                },
            );
            self.takeover_outstanding.insert((pardo_pc, epoch, chunk));
            self.recovery.takeover_chunks += 1;
            self.trace.instant(EventKind::Recovery {
                what: RecoveryEvent::Takeover,
            });
        }
    }

    fn handle_put_ack(&mut self, key: BlockKey) {
        let Some(fl) = &mut self.flight else {
            return;
        };
        fl.pending.remove(&key);
        if !fl.pending.is_empty() {
            return;
        }
        let fl = self.flight.take().unwrap();
        self.complete_flight(fl.then);
    }

    /// Runs a fully-acked flight's continuation. Shared by the ack path and
    /// the tick-loop guard that completes an already-empty flight.
    fn complete_flight(&mut self, then: AfterFlight) {
        match then {
            AfterFlight::Recovery {
                dead_widx,
                inherited_ops,
            } => self.finish_recovery(dead_widx, inherited_ops),
            AfterFlight::CkptRelease { label } => {
                self.broadcast_workers(|| SipMsg::CkptRelease { label });
            }
        }
    }

    /// Finalizes the run once every live worker reported done and no
    /// recovery is in flight.
    fn maybe_finish(&mut self) -> Option<MasterOutput> {
        if self.done_count < self.alive_count()
            || self.flight.is_some()
            || !self.pending_deaths.is_empty()
        {
            return None;
        }
        if !self.takeover_queue.is_empty() || !self.takeover_outstanding.is_empty() {
            self.warnings.push(format!(
                "{} re-queued chunks never ran (no sip_barrier after the pardo?)",
                self.takeover_queue.len() + self.takeover_outstanding.len()
            ));
        }
        // Everyone finished: release the service loops.
        self.broadcast_workers(|| SipMsg::Shutdown);
        for j in 0..self.layout.topology.io_servers {
            let _ = self
                .endpoint
                .send(self.layout.topology.io_server(j), SipMsg::Shutdown);
        }
        // The I/O servers reply to the shutdown with their final counters
        // (and trace events). Bounded wait: a wedged server must not hang
        // the whole run's teardown.
        let mut server = ServerStats::default();
        let mut server_events: Vec<(Rank, Vec<TraceEvent>, u64)> = Vec::new();
        let mut awaited = self.layout.topology.io_servers;
        let deadline = Instant::now() + Duration::from_secs(2);
        while awaited > 0 && Instant::now() < deadline {
            let Some(env) = self.endpoint.recv_timeout(Duration::from_millis(20)) else {
                if self.endpoint.shutdown_raised() {
                    break;
                }
                continue;
            };
            // Stragglers from the data plane (late acks, heartbeats) are
            // expected during teardown and safely dropped.
            if let SipMsg::ServerDone {
                stats,
                events,
                dropped,
            } = env.msg
            {
                server.merge(&stats);
                server_events.push((env.src, events, dropped));
                awaited -= 1;
            }
        }
        if awaited > 0 {
            self.warnings.push(format!(
                "{awaited} I/O server(s) never reported final stats"
            ));
        }
        let (master_events, master_dropped) = self.trace.drain();
        let mut scalars_out = Vec::with_capacity(self.workers());
        let mut profiles = Vec::with_capacity(self.workers());
        for slot in self.done.drain(..) {
            // A dead worker contributes an empty scalar set and profile.
            let (s, p) = slot.unwrap_or_default();
            scalars_out.push(s);
            profiles.push(p);
        }
        Some(MasterOutput {
            scalars: scalars_out,
            collected: std::mem::take(&mut self.collected),
            profiles,
            warnings: std::mem::take(&mut self.warnings),
            recovery: self.recovery,
            server,
            server_events,
            master_events,
            master_dropped,
        })
    }

    /// Runs the master loop until all workers are done (or one failed).
    pub fn run(mut self) -> Result<MasterOutput, RuntimeError> {
        let poll = if self.fault.is_some() {
            Duration::from_millis(2)
        } else {
            Duration::from_millis(5)
        };
        loop {
            self.tick()?;
            let Some(env) = self.endpoint.recv_timeout(poll) else {
                if self.endpoint.shutdown_raised() {
                    return Err(RuntimeError::Comm {
                        kind: CommKind::Poisoned,
                        rank: self.endpoint.rank(),
                        key: None,
                        context: "shutdown during run".into(),
                    });
                }
                continue;
            };
            let src = env.src;
            if self.layout.topology.is_worker(src) {
                self.last_seen[self.layout.topology.worker_index(src)] = Instant::now();
            }
            match env.msg {
                SipMsg::ChunkRequest { pardo_pc, epoch } => {
                    self.handle_chunk_request(src, pardo_pc, epoch)?;
                }
                SipMsg::ChunkDone {
                    pardo_pc,
                    epoch,
                    chunk,
                } => {
                    if let Some(s) = self.schedulers.get_mut(&(pardo_pc, epoch)) {
                        if let Some(done) = s.outstanding.remove(&chunk) {
                            s.acked.insert(chunk, done);
                        }
                    }
                    self.takeover_outstanding.remove(&(pardo_pc, epoch, chunk));
                    self.try_release(BarrierKind::Sip);
                }
                SipMsg::BarrierEnter { kind } => self.handle_barrier(src, kind),
                SipMsg::ReduceContrib { value } => self.handle_reduce(src, value),
                SipMsg::Heartbeat => {} // last_seen already refreshed above
                SipMsg::EpochAck { epoch } => self.handle_epoch_ack(epoch),
                SipMsg::CkptBlock { label, key, data } => {
                    self.ckpt_saves
                        .entry(label)
                        .or_default()
                        .blocks
                        .push((key, data));
                }
                SipMsg::CkptDone { label, restore } => {
                    self.handle_ckpt_done(label, restore)?;
                }
                SipMsg::PutAck { key, .. } => self.handle_put_ack(key),
                SipMsg::WorkerDone {
                    scalars,
                    blocks,
                    profile,
                    warnings,
                } => {
                    let w = self.layout.topology.worker_index(src);
                    if self.done[w].is_none() {
                        self.done_count += 1;
                    }
                    self.done[w] = Some((scalars, *profile));
                    // End-of-run boundary: materialize owned blocks out of
                    // the handles (the worker has dropped its side, so this
                    // unwraps without copying).
                    self.collected
                        .extend(blocks.into_iter().map(|(k, h)| (k, h.into_block())));
                    self.warnings.extend(warnings);
                    if let Some(out) = self.maybe_finish() {
                        return Ok(out);
                    }
                }
                SipMsg::WorkerFailed { error } => {
                    self.broadcast_workers(|| SipMsg::Shutdown);
                    for j in 0..self.layout.topology.io_servers {
                        let _ = self
                            .endpoint
                            .send(self.layout.topology.io_server(j), SipMsg::Shutdown);
                    }
                    self.endpoint.raise_shutdown();
                    return Err(RuntimeError::Internal(format!(
                        "worker {src} failed: {error}"
                    )));
                }
                other => {
                    self.warnings
                        .push(format!("master ignored unexpected message: {other:?}"));
                }
            }
            if self.done_count > 0 {
                if let Some(out) = self.maybe_finish() {
                    return Ok(out);
                }
            }
        }
    }
}

// ---- served-epoch manifest ------------------------------------------------------

/// Name of the master's served-epoch manifest inside the run directory.
pub const EPOCH_MANIFEST: &str = "epochs.manifest";

/// Records `epoch` completed served-array epochs (atomic tmp + rename).
pub fn write_epoch_manifest(run_dir: &Path, epoch: u64) -> std::io::Result<()> {
    let path = run_dir.join(EPOCH_MANIFEST);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, format!("{epoch}\n"))?;
    fs::rename(&tmp, path)
}

/// Reads the served-epoch manifest; 0 when absent (fresh run directory).
pub fn read_epoch_manifest(run_dir: &Path) -> u64 {
    fs::read_to_string(run_dir.join(EPOCH_MANIFEST))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

// ---- checkpoint files -----------------------------------------------------------

/// Writes a checkpoint: magic, block count, then per block the key and data.
/// Accepts anything that borrows a [`Block`] — owned blocks and
/// [`BlockHandle`]s alike — so callers never materialize copies to save.
pub fn write_checkpoint<B: std::borrow::Borrow<Block>>(
    path: &Path,
    blocks: &[(BlockKey, B)],
) -> Result<(), RuntimeError> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(b"SIACKPT1");
    buf.extend_from_slice(&(blocks.len() as u64).to_le_bytes());
    for (key, block) in blocks {
        let block = block.borrow();
        buf.extend_from_slice(&key.array.0.to_le_bytes());
        buf.push(key.rank);
        for &s in key.segs() {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let dims = block.shape().dims();
        buf.push(dims.len() as u8);
        for &d in dims {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        for v in block.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let tmp = path.with_extension("tmp");
    fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(&buf))
        .and_then(|_| fs::rename(&tmp, path))
        .map_err(|e| RuntimeError::Checkpoint(format!("write {}: {e}", path.display())))
}

/// Reads a checkpoint written by [`write_checkpoint`].
pub fn read_checkpoint(path: &Path) -> Result<Vec<(BlockKey, Block)>, RuntimeError> {
    let mut raw = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| RuntimeError::Checkpoint(format!("read {}: {e}", path.display())))?;
    let fail = |m: &str| RuntimeError::Checkpoint(format!("{m} in {}", path.display()));
    if raw.len() < 16 || &raw[..8] != b"SIACKPT1" {
        return Err(fail("bad header"));
    }
    let count = u64::from_le_bytes(raw[8..16].try_into().unwrap()) as usize;
    let mut off = 16;
    let mut take = |n: usize| -> Result<std::ops::Range<usize>, RuntimeError> {
        if off + n > raw.len() {
            return Err(RuntimeError::Checkpoint("truncated checkpoint".into()));
        }
        let r = off..off + n;
        off += n;
        Ok(r)
    };
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let array = u32::from_le_bytes(raw[take(4)?].try_into().unwrap());
        let rank = raw[take(1)?][0] as usize;
        let mut segs = Vec::with_capacity(rank);
        for _ in 0..rank {
            segs.push(i32::from_le_bytes(raw[take(4)?].try_into().unwrap()) as i64);
        }
        let drank = raw[take(1)?][0] as usize;
        let mut dims = Vec::with_capacity(drank);
        for _ in 0..drank {
            dims.push(u32::from_le_bytes(raw[take(4)?].try_into().unwrap()) as usize);
        }
        let shape = if dims.is_empty() {
            Shape::scalar()
        } else {
            Shape::new(&dims)
        };
        let mut data = Vec::with_capacity(shape.len());
        for _ in 0..shape.len() {
            data.push(f64::from_le_bytes(raw[take(8)?].try_into().unwrap()));
        }
        out.push((
            BlockKey::new(ArrayId(array), &segs),
            Block::from_data(shape, data),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sia-ckpt-test-{tag}-{}.sialck", std::process::id()))
    }

    #[test]
    fn checkpoint_roundtrip() {
        let path = tmpfile("rt");
        let blocks = vec![
            (
                BlockKey::new(ArrayId(2), &[1, 2, 3]),
                Block::from_fn(Shape::new(&[2, 2]), |i| (i[0] + i[1]) as f64),
            ),
            (
                BlockKey::new(ArrayId(2), &[4, 5, 6]),
                Block::filled(Shape::new(&[3]), -1.5),
            ),
        ];
        write_checkpoint(&path, &blocks).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(blocks, back);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn empty_checkpoint_roundtrip() {
        let path = tmpfile("empty");
        write_checkpoint::<Block>(&path, &[]).unwrap();
        assert!(read_checkpoint(&path).unwrap().is_empty());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn corrupt_checkpoint_rejected() {
        let path = tmpfile("bad");
        fs::write(&path, b"NOTACKPT").unwrap();
        assert!(read_checkpoint(&path).is_err());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn empty_restore_flight_completes_instead_of_panicking() {
        // Regression: a PutFlight whose pending map is empty (every ack
        // drained between ticks, or the restore had no blocks) used to hit
        // `expect("nonempty flight")` in the timeout arm and crash the
        // master mid-recovery. It must complete the flight's continuation.
        use crate::layout::{SegmentConfig, Topology};
        use sia_fabric::FaultPlan;
        let program = sial_frontend::compile("sial tiny\nscalar s\ns = 1.0\nendsial\n").unwrap();
        let layout = Layout::new(
            Arc::new(program),
            &sia_bytecode::ConstBindings::new(),
            SegmentConfig::default(),
            Topology::new(2, 1),
        )
        .unwrap();
        let (mut eps, _stats) = sia_fabric::build::<SipMsg>(4);
        let io = eps.pop().unwrap();
        let w1 = eps.pop().unwrap();
        let w0 = eps.pop().unwrap();
        let master_ep = eps.pop().unwrap();
        let mut m = Master::new(
            Arc::new(layout),
            master_ep,
            ChunkPolicy::default(),
            std::env::temp_dir(),
            Some(FaultConfig::new(FaultPlan::seeded(1))),
        );
        // Stage an empty flight that has already blown its retry budget —
        // the configuration under which the old code panicked.
        m.flight = Some(PutFlight {
            pending: HashMap::new(),
            sent_at: Instant::now()
                .checked_sub(Duration::from_secs(60))
                .expect("clock predates test start"),
            timeout: Duration::from_millis(1),
            attempts: u32::MAX - 1,
            then: AfterFlight::CkptRelease { label: 7 },
        });
        m.tick().expect("tick must not fail on an empty flight");
        assert!(m.flight.is_none(), "flight must be completed");
        // The continuation ran: both workers got the checkpoint release.
        for w in [&w0, &w1] {
            let env = w
                .recv_timeout(Duration::from_secs(2))
                .expect("worker must receive the flight continuation");
            assert!(
                matches!(env.msg, SipMsg::CkptRelease { label: 7 }),
                "expected CkptRelease {{ label: 7 }}, got {:?}",
                env.msg
            );
        }
        drop(io);
    }

    #[test]
    fn epoch_manifest_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sia-manifest-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_epoch_manifest(&dir), 0, "absent manifest reads 0");
        write_epoch_manifest(&dir, 3).unwrap();
        assert_eq!(read_epoch_manifest(&dir), 3);
        write_epoch_manifest(&dir, 4).unwrap();
        assert_eq!(read_epoch_manifest(&dir), 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
