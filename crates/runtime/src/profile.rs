//! Per-super-instruction profiling.
//!
//! "Because basic operations are relatively time consuming, we can keep track
//! of very detailed performance metrics without an impact on performance."
//! Each worker records, per program counter: execution count, cumulative
//! busy time, and cumulative *wait* time (time blocked on block arrival,
//! chunk assignment, or barriers). Counters beyond the per-pc table live in
//! the unified [`Metrics`] registry the profile carries. The master merges
//! the per-worker profiles into a [`ProfileReport`] whose lines reference
//! the disassembled instruction, keeping the source↔profile relationship
//! transparent.
//!
//! Wait accounting happens at exactly one point — the `wait_until` call
//! sites feed [`Metrics::wait`] via [`WorkerProfile::add_wait`] — and
//! [`WorkerProfile::record`] only *attributes* wait to a pc. A blocked
//! instruction that retries (re-arms its fetch and waits again) therefore
//! cannot double-count wait into both the per-pc table and the totals.

use crate::events::TraceEvent;
use crate::metrics::{quiet, JsonWriter, Merge, Metrics, WaitCause};
use sia_bytecode::{InstructionClass, Program};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One worker's raw counters (shipped to the master in `WorkerDone`).
#[derive(Debug, Clone, Default)]
pub struct WorkerProfile {
    /// Per-pc (count, busy nanos, wait nanos).
    pub per_pc: BTreeMap<u32, (u64, u64, u64)>,
    /// Total wall time of the worker's run in nanos.
    pub total_nanos: u64,
    /// Pardo iterations executed.
    pub iterations: u64,
    /// The unified counter registry (cache, memory, contraction, comm,
    /// wait causes, fault tolerance).
    pub metrics: Metrics,
    /// Trace events recorded by this rank (empty unless tracing is on).
    pub events: Vec<TraceEvent>,
    /// Trace events lost to ring overwrite on this rank.
    pub events_dropped: u64,
}

impl WorkerProfile {
    /// Records one instruction execution. `wait` is attribution only: it
    /// lands in the per-pc table, while the authoritative wait totals are
    /// accumulated once per actual blocked interval via [`add_wait`]
    /// (called from the wait sites themselves).
    ///
    /// [`add_wait`]: WorkerProfile::add_wait
    pub fn record(&mut self, pc: u32, busy: Duration, wait: Duration) {
        let e = self.per_pc.entry(pc).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += busy.as_nanos() as u64;
        e.2 += wait.as_nanos() as u64;
    }

    /// The single accounting point for wait totals: adds one blocked
    /// interval to the by-cause breakdown.
    pub fn add_wait(&mut self, cause: WaitCause, d: Duration) {
        self.metrics.wait.add(cause, d);
    }

    /// Total wait nanoseconds (sum of the by-cause breakdown).
    pub fn wait_nanos(&self) -> u64 {
        self.metrics.wait.total_nanos()
    }
}

/// One line of the merged report.
#[derive(Debug, Clone)]
pub struct ProfileLine {
    /// Program counter.
    pub pc: u32,
    /// Instruction class.
    pub class: InstructionClass,
    /// Disassembled instruction text.
    pub text: String,
    /// Executions summed over workers.
    pub count: u64,
    /// Busy time summed over workers.
    pub busy: Duration,
    /// Wait time summed over workers.
    pub wait: Duration,
}

/// The merged profile of a run.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Per-instruction lines, hottest (by busy time) first.
    pub lines: Vec<ProfileLine>,
    /// Per-worker total wall time.
    pub worker_totals: Vec<Duration>,
    /// Per-worker wait time.
    pub worker_waits: Vec<Duration>,
    /// Per-worker overlap: fraction of comm-flight time hidden under
    /// compute (`None` for workers that fetched nothing remote).
    pub worker_overlap: Vec<Option<f64>>,
    /// The merged counter registry (workers + master recovery + I/O
    /// servers + fabric injection).
    pub metrics: Metrics,
    /// The dry run's per-worker byte estimate (filled in by the runtime
    /// after the merge), so `--profile` can put the predicted and the
    /// observed peak side by side.
    pub dry_run_estimate_bytes: u64,
    /// Total pardo iterations executed.
    pub iterations: u64,
    /// Effective GEMM thread count (after the config builder's clamp to
    /// host parallelism; filled in by the runtime after the merge).
    pub gemm_threads: usize,
    /// GEMM thread count as originally requested; differs from
    /// `gemm_threads` only when the builder clamped it.
    pub gemm_threads_requested: usize,
}

impl ProfileReport {
    /// Merges per-worker profiles against the program for disassembly.
    pub fn merge(program: &Program, profiles: &[WorkerProfile]) -> Self {
        let mut per_pc: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
        let mut metrics = Metrics::default();
        let mut iterations = 0;
        for p in profiles {
            for (&pc, &(c, b, w)) in &p.per_pc {
                let e = per_pc.entry(pc).or_insert((0, 0, 0));
                e.0 += c;
                e.1 += b;
                e.2 += w;
            }
            metrics.merge(&p.metrics);
            iterations += p.iterations;
        }
        let mut lines: Vec<ProfileLine> = per_pc
            .into_iter()
            .map(|(pc, (count, busy, wait))| {
                let ins = program.code.get(pc as usize);
                ProfileLine {
                    pc,
                    class: ins
                        .map(sia_bytecode::Instruction::class)
                        .unwrap_or(InstructionClass::Control),
                    text: ins
                        .map(|i| sia_bytecode::disasm::disassemble_instruction(program, i))
                        .unwrap_or_else(|| "?".into()),
                    count,
                    busy: Duration::from_nanos(busy),
                    wait: Duration::from_nanos(wait),
                }
            })
            .collect();
        lines.sort_by_key(|l| std::cmp::Reverse(l.busy));
        ProfileReport {
            lines,
            worker_totals: profiles
                .iter()
                .map(|p| Duration::from_nanos(p.total_nanos))
                .collect(),
            worker_waits: profiles
                .iter()
                .map(|p| Duration::from_nanos(p.wait_nanos()))
                .collect(),
            worker_overlap: profiles.iter().map(|p| p.metrics.comm.overlap()).collect(),
            metrics,
            dry_run_estimate_bytes: 0,
            iterations,
            gemm_threads: 0,
            gemm_threads_requested: 0,
        }
    }

    /// Total busy time over all instructions and workers.
    pub fn total_busy(&self) -> Duration {
        self.lines.iter().map(|l| l.busy).sum()
    }

    /// Total wait time over all workers.
    pub fn total_wait(&self) -> Duration {
        self.worker_waits.iter().sum()
    }

    /// Wait time as a fraction of total worker wall time (the paper's
    /// headline overlap metric: 8.4–13.4% in Figure 2).
    pub fn wait_fraction(&self) -> f64 {
        let total: Duration = self.worker_totals.iter().sum();
        if total.is_zero() {
            return 0.0;
        }
        self.total_wait().as_secs_f64() / total.as_secs_f64()
    }

    /// Fleet-wide overlap: fraction of comm-flight time hidden under
    /// compute, over all workers' flights. `None` when nothing flew.
    pub fn overlap(&self) -> Option<f64> {
        self.metrics.comm.overlap()
    }

    /// Busy time attributed to a class of instructions.
    pub fn busy_by_class(&self, class: InstructionClass) -> Duration {
        self.lines
            .iter()
            .filter(|l| l.class == class)
            .map(|l| l.busy)
            .sum()
    }

    /// The machine-readable profile (the `--profile-json` payload):
    /// schema marker, headline numbers, the overlap metric, the unified
    /// metrics registry (one serialization path shared with
    /// [`Metrics::to_json`]'s model), per-worker figures, and the per-pc
    /// lines.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string("sia.profile.v1");
        w.key("iterations");
        w.u64(self.iterations);
        w.key("total_busy_ns");
        w.u64(self.total_busy().as_nanos() as u64);
        w.key("total_wait_ns");
        w.u64(self.total_wait().as_nanos() as u64);
        w.key("wait_fraction");
        w.f64(self.wait_fraction());
        w.key("dry_run_estimate_bytes");
        w.u64(self.dry_run_estimate_bytes);
        w.key("gemm_threads");
        w.u64(self.gemm_threads as u64);
        w.key("gemm_threads_requested");
        w.u64(self.gemm_threads_requested as u64);
        w.key("overlap");
        w.begin_object();
        w.key("mean");
        match self.overlap() {
            Some(v) => w.f64(v),
            None => w.f64(f64::NAN), // renders as null
        }
        w.key("per_worker");
        w.begin_array();
        for o in &self.worker_overlap {
            match o {
                Some(v) => w.f64(*v),
                None => w.f64(f64::NAN),
            }
        }
        w.end_array();
        w.end_object();
        w.key("workers");
        w.begin_array();
        for (i, total) in self.worker_totals.iter().enumerate() {
            w.begin_object();
            w.key("total_ns");
            w.u64(total.as_nanos() as u64);
            w.key("wait_ns");
            w.u64(
                self.worker_waits
                    .get(i)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0),
            );
            w.end_object();
        }
        w.end_array();
        // The one metrics serialization path: same section model as the
        // text renderer.
        w.key("metrics");
        let metrics_json = self.metrics.to_json();
        w.raw_number(&metrics_json); // already a complete JSON object
        w.key("lines");
        w.begin_array();
        for l in &self.lines {
            w.begin_object();
            w.key("pc");
            w.u64(l.pc as u64);
            w.key("class");
            let class = format!("{:?}", l.class);
            w.string(&class);
            w.key("count");
            w.u64(l.count);
            w.key("busy_ns");
            w.u64(l.busy.as_nanos() as u64);
            w.key("wait_ns");
            w.u64(l.wait.as_nanos() as u64);
            w.key("text");
            w.string(&l.text);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

impl fmt::Display for ProfileReport {
    /// The one text renderer: a headline, the unified metrics sections
    /// (driven by the same model as the JSON export), the overlap line,
    /// and the hottest-instructions table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SIP profile: {} iterations, wait fraction {:.1}%",
            self.iterations,
            self.wait_fraction() * 100.0
        )?;
        match self.overlap() {
            Some(v) => {
                let per_worker: Vec<String> = self
                    .worker_overlap
                    .iter()
                    .map(|o| match o {
                        Some(v) => format!("{:.0}%", v * 100.0),
                        None => "-".into(),
                    })
                    .collect();
                writeln!(
                    f,
                    "overlap: {:.1}% of comm-flight time hidden under compute \
                     (per worker: {})",
                    v * 100.0,
                    per_worker.join(", ")
                )?;
            }
            None => writeln!(f, "overlap: no remote block fetches")?,
        }
        if self.gemm_threads_requested > self.gemm_threads {
            writeln!(
                f,
                "gemm threads: {} (requested {}, clamped to host parallelism)",
                self.gemm_threads, self.gemm_threads_requested
            )?;
        }
        if self.dry_run_estimate_bytes > 0 || !quiet(&self.metrics.memory) {
            writeln!(
                f,
                "memory plan: dry run predicted {} bytes/worker",
                self.dry_run_estimate_bytes
            )?;
        }
        write!(f, "{}", self.metrics)?;
        writeln!(
            f,
            "{:>5} {:>10} {:>12} {:>12}  instruction",
            "pc", "count", "busy", "wait"
        )?;
        for l in self.lines.iter().take(25) {
            writeln!(
                f,
                "{:>5} {:>10} {:>12?} {:>12?}  {}",
                l.pc, l.count, l.busy, l.wait, l.text
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut p = WorkerProfile::default();
        p.record(3, Duration::from_micros(10), Duration::from_micros(2));
        p.record(3, Duration::from_micros(5), Duration::ZERO);
        let (c, b, w) = p.per_pc[&3];
        assert_eq!(c, 2);
        assert_eq!(b, 15_000);
        assert_eq!(w, 2_000);
    }

    /// Regression for the wait double-count: a blocked instruction that
    /// retries passes its (already counted) wait to `record` again, but
    /// the totals are fed only by `add_wait` — one call per actual
    /// blocked interval — so re-recording can't inflate them.
    #[test]
    fn retried_record_cannot_double_count_wait() {
        let mut p = WorkerProfile::default();
        let blocked = Duration::from_micros(7);
        // The actual blocked interval is accounted once, at the wait site.
        p.add_wait(WaitCause::SipBarrier, blocked);
        // The instruction is recorded, then retried after a re-arm and
        // recorded again with the same attributed wait.
        p.record(4, Duration::from_micros(1), blocked);
        p.record(4, Duration::from_micros(1), blocked);
        assert_eq!(p.wait_nanos(), 7_000, "totals come from add_wait alone");
        assert_eq!(p.metrics.wait.get(WaitCause::SipBarrier), 7_000);
        // Per-pc attribution did accumulate both records (it is a
        // breakdown of where waits were observed, not a second total).
        assert_eq!(p.per_pc[&4].2, 14_000);
    }

    #[test]
    fn merge_sums_workers() {
        let program = Program {
            code: vec![sia_bytecode::Instruction::Halt],
            ..Default::default()
        };
        let mut a = WorkerProfile::default();
        a.record(0, Duration::from_micros(5), Duration::from_micros(1));
        a.add_wait(WaitCause::BlockArrival, Duration::from_micros(1));
        a.total_nanos = 10_000;
        a.iterations = 3;
        let mut b = WorkerProfile::default();
        b.record(0, Duration::from_micros(7), Duration::from_micros(3));
        b.add_wait(WaitCause::ChunkAssign, Duration::from_micros(3));
        b.total_nanos = 10_000;
        b.iterations = 4;
        let r = ProfileReport::merge(&program, &[a, b]);
        assert_eq!(r.lines.len(), 1);
        assert_eq!(r.lines[0].count, 2);
        assert_eq!(r.lines[0].busy, Duration::from_micros(12));
        assert_eq!(r.iterations, 7);
        assert!((r.wait_fraction() - 0.2).abs() < 1e-9);
        assert_eq!(r.metrics.wait.total_nanos(), 4_000);
    }

    #[test]
    fn lines_sorted_by_busy() {
        let program = Program {
            code: vec![
                sia_bytecode::Instruction::Halt,
                sia_bytecode::Instruction::SipBarrier,
            ],
            ..Default::default()
        };
        let mut a = WorkerProfile::default();
        a.record(0, Duration::from_micros(1), Duration::ZERO);
        a.record(1, Duration::from_micros(9), Duration::ZERO);
        let r = ProfileReport::merge(&program, &[a]);
        assert_eq!(r.lines[0].pc, 1);
        assert_eq!(r.lines[0].class, InstructionClass::Sync);
    }

    #[test]
    fn wait_fraction_zero_when_empty() {
        let r = ProfileReport::default();
        assert_eq!(r.wait_fraction(), 0.0);
    }

    #[test]
    fn profile_json_lints() {
        let program = Program {
            code: vec![sia_bytecode::Instruction::Halt],
            ..Default::default()
        };
        let mut a = WorkerProfile::default();
        a.record(0, Duration::from_micros(5), Duration::from_micros(1));
        a.add_wait(WaitCause::BlockArrival, Duration::from_micros(1));
        a.metrics.comm.fetches = 2;
        a.metrics.comm.flight_nanos = 1_000;
        a.metrics.comm.exposed_nanos = 250;
        a.total_nanos = 10_000;
        let mut r = ProfileReport::merge(&program, &[a]);
        r.dry_run_estimate_bytes = 4096;
        let json = r.to_json();
        crate::events::lint_profile_json(&json).expect("profile json lints");
        let doc = crate::events::parse_json(&json).unwrap();
        let mean = doc
            .get("overlap")
            .and_then(|o| o.get("mean"))
            .and_then(crate::events::Json::as_f64)
            .expect("overlap mean present");
        assert!((mean - 0.75).abs() < 1e-9);
    }
}
