//! Per-super-instruction profiling.
//!
//! "Because basic operations are relatively time consuming, we can keep track
//! of very detailed performance metrics without an impact on performance."
//! Each worker records, per program counter: execution count, cumulative
//! busy time, and cumulative *wait* time (time blocked on block arrival,
//! chunk assignment, or barriers). The master merges the per-worker profiles
//! into a [`ProfileReport`] whose lines reference the disassembled
//! instruction, keeping the source↔profile relationship transparent.

use sia_bytecode::{InstructionClass, Program};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Per-worker fault-tolerance counters (all zero on fault-free runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// PUT retries after an ack timeout.
    pub put_retries: u64,
    /// PREPARE retries after an ack timeout.
    pub prepare_retries: u64,
    /// GET/REQUEST re-issues after a reply timeout.
    pub fetch_retries: u64,
    /// Duplicate PUTs suppressed on the receiving side.
    pub dup_puts_suppressed: u64,
    /// Journaled puts replayed to a new home after a rank death.
    pub journal_replays: u64,
    /// Operations re-routed because their home died.
    pub reroutes: u64,
}

impl FaultStats {
    /// Total retried operations (the `--profile` headline number).
    pub fn retries(&self) -> u64 {
        self.put_retries + self.prepare_retries + self.fetch_retries
    }

    /// Accumulates another worker's counters.
    pub fn absorb(&mut self, o: &FaultStats) {
        self.put_retries += o.put_retries;
        self.prepare_retries += o.prepare_retries;
        self.fetch_retries += o.fetch_retries;
        self.dup_puts_suppressed += o.dup_puts_suppressed;
        self.journal_replays += o.journal_replays;
        self.reroutes += o.reroutes;
    }

    /// True when anything fault-related happened.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

/// Master-side recovery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Workers declared dead by the liveness monitor.
    pub ranks_died: u64,
    /// Pardo chunks re-queued from dead workers to survivors.
    pub requeued_chunks: u64,
    /// Blocks restored from a dead worker's epoch checkpoint.
    pub restored_blocks: u64,
    /// Re-queued chunks dispatched to workers parked at a barrier.
    pub takeover_chunks: u64,
}

impl RecoveryStats {
    /// True when any recovery action ran.
    pub fn any(&self) -> bool {
        *self != RecoveryStats::default()
    }
}

/// One worker's raw counters (shipped to the master in `WorkerDone`).
#[derive(Debug, Clone, Default)]
pub struct WorkerProfile {
    /// Per-pc (count, busy nanos, wait nanos).
    pub per_pc: BTreeMap<u32, (u64, u64, u64)>,
    /// Total wall time of the worker's run in nanos.
    pub total_nanos: u64,
    /// Total wait nanos (block waits + chunk waits + barrier waits).
    pub wait_nanos: u64,
    /// Cache counters.
    pub cache: crate::cache::CacheStats,
    /// Block-manager byte accounting and zero-copy counters.
    pub memory: crate::memory::MemoryStats,
    /// Contraction hot-path counters (transpose folds, scratch-pool reuse).
    pub contraction: sia_blocks::ContractStats,
    /// Pardo iterations executed.
    pub iterations: u64,
    /// Fault-tolerance counters (retries, duplicate suppression).
    pub fault: FaultStats,
}

impl WorkerProfile {
    /// Records one instruction execution.
    pub fn record(&mut self, pc: u32, busy: Duration, wait: Duration) {
        let e = self.per_pc.entry(pc).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += busy.as_nanos() as u64;
        e.2 += wait.as_nanos() as u64;
        self.wait_nanos += wait.as_nanos() as u64;
    }
}

/// One line of the merged report.
#[derive(Debug, Clone)]
pub struct ProfileLine {
    /// Program counter.
    pub pc: u32,
    /// Instruction class.
    pub class: InstructionClass,
    /// Disassembled instruction text.
    pub text: String,
    /// Executions summed over workers.
    pub count: u64,
    /// Busy time summed over workers.
    pub busy: Duration,
    /// Wait time summed over workers.
    pub wait: Duration,
}

/// The merged profile of a run.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Per-instruction lines, hottest (by busy time) first.
    pub lines: Vec<ProfileLine>,
    /// Per-worker total wall time.
    pub worker_totals: Vec<Duration>,
    /// Per-worker wait time.
    pub worker_waits: Vec<Duration>,
    /// Summed cache statistics.
    pub cache: crate::cache::CacheStats,
    /// Merged block-manager stats: peak bytes are per-worker maxima,
    /// counters are fleet sums.
    pub memory: crate::memory::MemoryStats,
    /// The dry run's per-worker byte estimate (filled in by the runtime
    /// after the merge), so `--profile` can put the predicted and the
    /// observed peak side by side.
    pub dry_run_estimate_bytes: u64,
    /// Summed contraction hot-path counters.
    pub contraction: sia_blocks::ContractStats,
    /// Total pardo iterations executed.
    pub iterations: u64,
    /// Summed fault-tolerance counters.
    pub fault: FaultStats,
    /// Master-side recovery counters (filled in by the runtime after the
    /// merge; zero on fault-free runs).
    pub recovery: RecoveryStats,
    /// Fabric-level injection counters (filled in by the runtime).
    pub fabric_faults: sia_fabric::FaultSnapshot,
}

impl ProfileReport {
    /// Merges per-worker profiles against the program for disassembly.
    pub fn merge(program: &Program, profiles: &[WorkerProfile]) -> Self {
        let mut per_pc: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
        let mut cache = crate::cache::CacheStats::default();
        let mut memory = crate::memory::MemoryStats::default();
        let mut contraction = sia_blocks::ContractStats::default();
        let mut iterations = 0;
        let mut fault = FaultStats::default();
        for p in profiles {
            for (&pc, &(c, b, w)) in &p.per_pc {
                let e = per_pc.entry(pc).or_insert((0, 0, 0));
                e.0 += c;
                e.1 += b;
                e.2 += w;
            }
            cache.hits += p.cache.hits;
            cache.misses += p.cache.misses;
            cache.in_flight_hits += p.cache.in_flight_hits;
            cache.evictions += p.cache.evictions;
            cache.refetches += p.cache.refetches;
            cache.reissues += p.cache.reissues;
            memory.absorb(&p.memory);
            contraction.merge(&p.contraction);
            iterations += p.iterations;
            fault.absorb(&p.fault);
        }
        let mut lines: Vec<ProfileLine> = per_pc
            .into_iter()
            .map(|(pc, (count, busy, wait))| {
                let ins = program.code.get(pc as usize);
                ProfileLine {
                    pc,
                    class: ins
                        .map(sia_bytecode::Instruction::class)
                        .unwrap_or(InstructionClass::Control),
                    text: ins
                        .map(|i| sia_bytecode::disasm::disassemble_instruction(program, i))
                        .unwrap_or_else(|| "?".into()),
                    count,
                    busy: Duration::from_nanos(busy),
                    wait: Duration::from_nanos(wait),
                }
            })
            .collect();
        lines.sort_by_key(|l| std::cmp::Reverse(l.busy));
        ProfileReport {
            lines,
            worker_totals: profiles
                .iter()
                .map(|p| Duration::from_nanos(p.total_nanos))
                .collect(),
            worker_waits: profiles
                .iter()
                .map(|p| Duration::from_nanos(p.wait_nanos))
                .collect(),
            cache,
            memory,
            dry_run_estimate_bytes: 0,
            contraction,
            iterations,
            fault,
            recovery: RecoveryStats::default(),
            fabric_faults: sia_fabric::FaultSnapshot::default(),
        }
    }

    /// Total busy time over all instructions and workers.
    pub fn total_busy(&self) -> Duration {
        self.lines.iter().map(|l| l.busy).sum()
    }

    /// Total wait time over all workers.
    pub fn total_wait(&self) -> Duration {
        self.worker_waits.iter().sum()
    }

    /// Wait time as a fraction of total worker wall time (the paper's
    /// headline overlap metric: 8.4–13.4% in Figure 2).
    pub fn wait_fraction(&self) -> f64 {
        let total: Duration = self.worker_totals.iter().sum();
        if total.is_zero() {
            return 0.0;
        }
        self.total_wait().as_secs_f64() / total.as_secs_f64()
    }

    /// Busy time attributed to a class of instructions.
    pub fn busy_by_class(&self, class: InstructionClass) -> Duration {
        self.lines
            .iter()
            .filter(|l| l.class == class)
            .map(|l| l.busy)
            .sum()
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SIP profile: {} iterations, wait fraction {:.1}%",
            self.iterations,
            self.wait_fraction() * 100.0
        )?;
        writeln!(
            f,
            "cache: {} hits, {} misses, {} evictions, {} refetches",
            self.cache.hits, self.cache.misses, self.cache.evictions, self.cache.refetches
        )?;
        writeln!(
            f,
            "memory: {} bytes/worker high water (dry run predicted {}{}), \
             {} clones avoided ({} bytes uncopied), {} deep copies, \
             {} budget evictions",
            self.memory.high_water_bytes,
            self.dry_run_estimate_bytes,
            if self.memory.budget_bytes > 0 {
                format!(", budget {}", self.memory.budget_bytes)
            } else {
                String::new()
            },
            self.memory.clones_avoided,
            self.memory.bytes_clone_avoided,
            self.memory.deep_copies,
            self.memory.budget_evictions
        )?;
        writeln!(
            f,
            "contract: {} contractions, {} permutes avoided ({} bytes uncopied), \
             {} permutes performed, scratch pool {} hits / {} misses",
            self.contraction.contractions,
            self.contraction.permutes_avoided,
            self.contraction.bytes_not_copied,
            self.contraction.permutes_performed,
            self.contraction.scratch_pool_hits,
            self.contraction.scratch_pool_misses
        )?;
        if self.fabric_faults != sia_fabric::FaultSnapshot::default() {
            writeln!(
                f,
                "fabric faults: {} dropped, {} duplicated, {} delayed{}",
                self.fabric_faults.dropped,
                self.fabric_faults.duplicated,
                self.fabric_faults.delayed,
                if self.fabric_faults.crashed {
                    ", rank crash"
                } else {
                    ""
                }
            )?;
        }
        if self.fault.any() {
            writeln!(
                f,
                "retries: {} put, {} prepare, {} fetch; {} duplicate puts suppressed, \
                 {} journal replays, {} re-routes",
                self.fault.put_retries,
                self.fault.prepare_retries,
                self.fault.fetch_retries,
                self.fault.dup_puts_suppressed,
                self.fault.journal_replays,
                self.fault.reroutes
            )?;
        }
        if self.recovery.any() {
            writeln!(
                f,
                "recovery: {} ranks died, {} chunks re-queued, {} blocks restored, \
                 {} takeover chunks",
                self.recovery.ranks_died,
                self.recovery.requeued_chunks,
                self.recovery.restored_blocks,
                self.recovery.takeover_chunks
            )?;
        }
        writeln!(
            f,
            "{:>5} {:>10} {:>12} {:>12}  instruction",
            "pc", "count", "busy", "wait"
        )?;
        for l in self.lines.iter().take(25) {
            writeln!(
                f,
                "{:>5} {:>10} {:>12?} {:>12?}  {}",
                l.pc, l.count, l.busy, l.wait, l.text
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut p = WorkerProfile::default();
        p.record(3, Duration::from_micros(10), Duration::from_micros(2));
        p.record(3, Duration::from_micros(5), Duration::ZERO);
        let (c, b, w) = p.per_pc[&3];
        assert_eq!(c, 2);
        assert_eq!(b, 15_000);
        assert_eq!(w, 2_000);
        assert_eq!(p.wait_nanos, 2_000);
    }

    #[test]
    fn merge_sums_workers() {
        let program = Program {
            code: vec![sia_bytecode::Instruction::Halt],
            ..Default::default()
        };
        let mut a = WorkerProfile::default();
        a.record(0, Duration::from_micros(5), Duration::from_micros(1));
        a.total_nanos = 10_000;
        a.iterations = 3;
        let mut b = WorkerProfile::default();
        b.record(0, Duration::from_micros(7), Duration::from_micros(3));
        b.total_nanos = 10_000;
        b.iterations = 4;
        let r = ProfileReport::merge(&program, &[a, b]);
        assert_eq!(r.lines.len(), 1);
        assert_eq!(r.lines[0].count, 2);
        assert_eq!(r.lines[0].busy, Duration::from_micros(12));
        assert_eq!(r.iterations, 7);
        assert!((r.wait_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn lines_sorted_by_busy() {
        let program = Program {
            code: vec![
                sia_bytecode::Instruction::Halt,
                sia_bytecode::Instruction::SipBarrier,
            ],
            ..Default::default()
        };
        let mut a = WorkerProfile::default();
        a.record(0, Duration::from_micros(1), Duration::ZERO);
        a.record(1, Duration::from_micros(9), Duration::ZERO);
        let r = ProfileReport::merge(&program, &[a]);
        assert_eq!(r.lines[0].pc, 1);
        assert_eq!(r.lines[0].class, InstructionClass::Sync);
    }

    #[test]
    fn wait_fraction_zero_when_empty() {
        let r = ProfileReport::default();
        assert_eq!(r.wait_fraction(), 0.0);
    }
}
