//! Unit tests for the static verifier: each structural rule firing on
//! minimal hand-built bytecode, each race rule firing on a compiled
//! program, and the corresponding exemptions staying quiet.

use super::*;
use sia_bytecode::ops::CmpOp;
use sia_bytecode::{ArrayDecl, IndexDecl, ProcDecl, Value};

fn ao(name: &str) -> IndexDecl {
    IndexDecl {
        name: name.into(),
        kind: IndexKind::AoIndex,
        low: Value::Lit(1),
        high: Value::Lit(2),
    }
}

fn idx(name: &str, kind: IndexKind) -> IndexDecl {
    IndexDecl {
        name: name.into(),
        kind,
        low: Value::Lit(1),
        high: Value::Lit(2),
    }
}

fn arr(name: &str, kind: ArrayKind, dims: Vec<u32>) -> ArrayDecl {
    ArrayDecl {
        name: name.into(),
        kind,
        dims: dims.into_iter().map(IndexId).collect(),
        sparse: false,
    }
}

fn prog(indices: Vec<IndexDecl>, arrays: Vec<ArrayDecl>, code: Vec<I>) -> Program {
    Program {
        name: "t".into(),
        indices,
        arrays,
        code,
        ..Program::default()
    }
}

fn bref(array: u32, indices: &[u32]) -> BlockRef {
    BlockRef {
        array: ArrayId(array),
        indices: indices.iter().map(|&i| IndexId(i)).collect(),
    }
}

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule.name()).collect()
}

fn check_src(src: &str) -> Vec<Diagnostic> {
    check_program(&sial_frontend::compile(src).unwrap())
}

// ---- structural rules ------------------------------------------------------

#[test]
fn bad_array_id_flagged() {
    let p = prog(
        vec![ao("i")],
        vec![],
        vec![
            I::Get {
                block: bref(5, &[0]),
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert!(rules(&d).contains(&"bad-id"), "{d:?}");
}

#[test]
fn sparse_on_non_remote_kind_flagged() {
    let mut t = arr("T", ArrayKind::Temp, vec![0]);
    t.sparse = true;
    let p = prog(vec![ao("i")], vec![t], vec![I::Halt]);
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["sparse-kind"], "{d:?}");
    assert!(d[0].message.contains("only distributed and served"));
}

#[test]
fn sparse_on_remote_kinds_passes() {
    let mut x = arr("X", ArrayKind::Distributed, vec![0]);
    x.sparse = true;
    let mut s = arr("S", ArrayKind::Served, vec![0]);
    s.sparse = true;
    let p = prog(vec![ao("i")], vec![x, s], vec![I::Halt]);
    assert!(check_program(&p).is_empty());
}

#[test]
fn bad_index_id_flagged() {
    let p = prog(
        vec![ao("i")],
        vec![arr("X", ArrayKind::Distributed, vec![0])],
        vec![
            I::Get {
                block: bref(0, &[9]),
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert!(rules(&d).contains(&"bad-id"), "{d:?}");
}

#[test]
fn arity_mismatch_flagged() {
    let p = prog(
        vec![ao("i"), ao("j")],
        vec![arr("X", ArrayKind::Distributed, vec![0, 1])],
        vec![
            I::Get {
                block: bref(0, &[0]),
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["arity"], "{d:?}");
    assert!(d[0].message.contains("rank 2"), "{}", d[0].message);
}

#[test]
fn index_kind_mismatch_flagged() {
    let p = prog(
        vec![ao("i"), idx("m", IndexKind::MoIndex)],
        vec![arr("X", ArrayKind::Distributed, vec![0])],
        vec![
            I::Get {
                block: bref(0, &[1]),
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["kind-mismatch"], "{d:?}");
}

#[test]
fn simple_index_in_block_ref_flagged() {
    let p = prog(
        vec![ao("i"), idx("c", IndexKind::Simple)],
        vec![arr("X", ArrayKind::Distributed, vec![0])],
        vec![
            I::Get {
                block: bref(0, &[1]),
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["kind-mismatch"], "{d:?}");
    assert!(d[0].message.contains("simple index"), "{}", d[0].message);
}

#[test]
fn subindex_addresses_parent_segments() {
    // A subindex of i addresses X(i)'s segments: no diagnostic.
    let p = prog(
        vec![
            ao("i"),
            idx("ii", IndexKind::Subindex { parent: IndexId(0) }),
        ],
        vec![arr("X", ArrayKind::Distributed, vec![0])],
        vec![
            I::Get {
                block: bref(0, &[1]),
            },
            I::Halt,
        ],
    );
    assert!(check_program(&p).is_empty());
}

#[test]
fn unbalanced_do_flagged() {
    let p = prog(
        vec![ao("i")],
        vec![],
        vec![
            I::DoStart {
                index: IndexId(0),
                end_pc: 5,
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert!(rules(&d).iter().all(|r| *r == "nesting"), "{d:?}");
    assert!(!d.is_empty());
}

#[test]
fn nested_pardo_flagged() {
    let p = prog(
        vec![ao("i"), ao("j")],
        vec![],
        vec![
            I::PardoStart {
                indices: vec![IndexId(0)],
                where_clauses: vec![],
                end_pc: 3,
            },
            I::PardoStart {
                indices: vec![IndexId(1)],
                where_clauses: vec![],
                end_pc: 2,
            },
            I::PardoEnd { start_pc: 1 },
            I::PardoEnd { start_pc: 0 },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["nesting"], "{d:?}");
    assert_eq!(d[0].pc, 1);
}

#[test]
fn jump_into_loop_body_flagged() {
    let p = prog(
        vec![ao("i")],
        vec![],
        vec![
            I::Jump { target: 2 },
            I::DoStart {
                index: IndexId(0),
                end_pc: 3,
            },
            I::SipBarrier,
            I::DoEnd { start_pc: 1 },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["jump-into-loop"], "{d:?}");
    assert_eq!(d[0].pc, 0);
}

#[test]
fn branch_to_loop_start_from_outside_is_fine() {
    // Jumping AT a loop start (not past it) is the compiled if/else shape.
    let p = prog(
        vec![ao("i")],
        vec![],
        vec![
            I::Jump { target: 1 },
            I::DoStart {
                index: IndexId(0),
                end_pc: 2,
            },
            I::DoEnd { start_pc: 1 },
            I::Halt,
        ],
    );
    assert!(check_program(&p).is_empty());
}

#[test]
fn where_clause_on_unbound_index_flagged() {
    let p = prog(
        vec![ao("i"), ao("j")],
        vec![],
        vec![
            I::PardoStart {
                indices: vec![IndexId(0)],
                where_clauses: vec![BoolExpr::Cmp(
                    ScalarExpr::IndexVal(IndexId(1)),
                    CmpOp::Le,
                    ScalarExpr::Lit(1.0),
                )],
                end_pc: 1,
            },
            I::PardoEnd { start_pc: 0 },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["where-clause"], "{d:?}");
    assert!(d[0].message.contains('j'), "{}", d[0].message);
}

#[test]
fn barrier_inside_pardo_flagged() {
    let p = prog(
        vec![ao("i")],
        vec![],
        vec![
            I::PardoStart {
                indices: vec![IndexId(0)],
                where_clauses: vec![],
                end_pc: 2,
            },
            I::SipBarrier,
            I::PardoEnd { start_pc: 0 },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["barrier-in-pardo"], "{d:?}");
}

#[test]
fn get_on_served_array_flagged() {
    let p = prog(
        vec![ao("i")],
        vec![arr("S", ArrayKind::Served, vec![0])],
        vec![
            I::Get {
                block: bref(0, &[0]),
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["kind-usage"], "{d:?}");
}

#[test]
fn put_to_static_array_flagged() {
    let p = prog(
        vec![ao("i")],
        vec![
            arr("A", ArrayKind::Static, vec![0]),
            arr("t", ArrayKind::Temp, vec![0]),
        ],
        vec![
            I::Put {
                dest: bref(0, &[0]),
                src: bref(1, &[0]),
                mode: PutMode::Replace,
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["kind-usage"], "{d:?}");
}

#[test]
fn direct_write_to_distributed_flagged() {
    let p = prog(
        vec![ao("i")],
        vec![arr("X", ArrayKind::Distributed, vec![0])],
        vec![
            I::BlockFill {
                dest: bref(0, &[0]),
                value: ScalarExpr::Lit(0.0),
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["kind-usage"], "{d:?}");
}

#[test]
fn recursive_proc_flagged() {
    let mut p = prog(
        vec![],
        vec![],
        vec![I::Halt, I::Call { proc: ProcId(0) }, I::Return],
    );
    p.procs = vec![ProcDecl {
        name: "p".into(),
        entry_pc: 1,
    }];
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["recursion"], "{d:?}");
}

#[test]
fn mutually_recursive_procs_flagged() {
    let mut p = prog(
        vec![],
        vec![],
        vec![
            I::Halt,
            I::Call { proc: ProcId(1) },
            I::Return,
            I::Call { proc: ProcId(0) },
            I::Return,
        ],
    );
    p.procs = vec![
        ProcDecl {
            name: "a".into(),
            entry_pc: 1,
        },
        ProcDecl {
            name: "b".into(),
            entry_pc: 3,
        },
    ];
    let d = check_program(&p);
    assert!(rules(&d).contains(&"recursion"), "{d:?}");
}

#[test]
fn branch_target_out_of_bounds_flagged() {
    let p = prog(vec![], vec![], vec![I::Jump { target: 99 }, I::Halt]);
    let d = check_program(&p);
    assert_eq!(rules(&d), vec!["jump-into-loop"], "{d:?}");
    assert!(d[0].message.contains("out of bounds"), "{}", d[0].message);
}

// ---- race rules (on frontend-compiled programs) ----------------------------

#[test]
fn write_write_race_flagged() {
    // Two iterations differing only in j overwrite the same X(i) block.
    let d = check_src(
        "sial ww
aoindex i = 1, n
aoindex j = 1, n
distributed X(i)
temp t(i)
pardo i, j
  t(i) = 1.0
  put X(i) = t(i)
endpardo i, j
sip_barrier
endsial
",
    );
    assert_eq!(rules(&d), vec!["write-write-race"], "{d:?}");
    assert!(d[0].message.contains('j'), "{}", d[0].message);
    assert!(d[0].listing.contains("put"), "{}", d[0].listing);
}

#[test]
fn accumulate_put_is_exempt_from_write_write() {
    // The paper makes += atomic precisely so this pattern is legal.
    let d = check_src(
        "sial wwacc
aoindex i = 1, n
aoindex j = 1, n
distributed X(i)
temp t(i)
pardo i, j
  t(i) = 1.0
  put X(i) += t(i)
endpardo i, j
sip_barrier
endsial
",
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn get_after_put_without_barrier_flagged() {
    let d = check_src(
        "sial gap
aoindex i = 1, n
distributed X(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  put X(i) = t(i)
endpardo i
pardo i
  get X(i)
  u(i) = X(i)
endpardo i
endsial
",
    );
    assert_eq!(rules(&d), vec!["get-after-put"], "{d:?}");
    assert!(d[0].message.contains("sip_barrier"), "{}", d[0].message);
}

#[test]
fn sip_barrier_clears_the_hazard() {
    let d = check_src(
        "sial gapok
aoindex i = 1, n
distributed X(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  put X(i) = t(i)
endpardo i
sip_barrier
pardo i
  get X(i)
  u(i) = X(i)
endpardo i
endsial
",
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn same_iteration_self_read_is_exempt() {
    // put X(i) … get X(i) inside one iteration reads back the block only
    // this iteration writes; fabric FIFO orders the pair.
    let d = check_src(
        "sial selfread
aoindex i = 1, n
distributed X(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  put X(i) = t(i)
  get X(i)
  u(i) = X(i)
endpardo i
sip_barrier
endsial
",
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn request_after_prepare_without_barrier_flagged() {
    let d = check_src(
        "sial rap
aoindex i = 1, n
served S(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  prepare S(i) = t(i)
endpardo i
pardo i
  request S(i)
  u(i) = S(i)
endpardo i
endsial
",
    );
    assert_eq!(rules(&d), vec!["request-after-prepare"], "{d:?}");
    assert!(d[0].message.contains("server_barrier"), "{}", d[0].message);
}

#[test]
fn server_barrier_clears_the_served_hazard() {
    let d = check_src(
        "sial rapok
aoindex i = 1, n
served S(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  prepare S(i) = t(i)
endpardo i
server_barrier
pardo i
  request S(i)
  u(i) = S(i)
endpardo i
endsial
",
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn sip_barrier_does_not_clear_served_dirt() {
    let d = check_src(
        "sial wrongbar
aoindex i = 1, n
served S(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  prepare S(i) = t(i)
endpardo i
sip_barrier
pardo i
  request S(i)
  u(i) = S(i)
endpardo i
endsial
",
    );
    assert_eq!(rules(&d), vec!["request-after-prepare"], "{d:?}");
}

#[test]
fn loop_carried_get_after_put_flagged() {
    // Clean in straight-line order, racy around the back edge of `do k`:
    // iteration 2's gets race iteration 1's puts.
    let d = check_src(
        "sial carried
aoindex i = 1, n
aoindex k = 1, n
distributed X(i)
temp t(i)
temp u(i)
do k
  pardo i
    get X(i)
    u(i) = X(i)
  endpardo i
  pardo i
    t(i) = 1.0
    put X(i) = t(i)
  endpardo i
enddo k
endsial
",
    );
    assert_eq!(rules(&d), vec!["get-after-put"], "{d:?}");
}

#[test]
fn barrier_inside_loop_clears_the_carried_hazard() {
    let d = check_src(
        "sial carriedok
aoindex i = 1, n
aoindex k = 1, n
distributed X(i)
temp t(i)
temp u(i)
do k
  pardo i
    get X(i)
    u(i) = X(i)
  endpardo i
  pardo i
    t(i) = 1.0
    put X(i) = t(i)
  endpardo i
  sip_barrier
enddo k
endsial
",
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn unbarriered_restore_read_flagged() {
    let d = check_src(
        "sial restore
aoindex i = 1, n
distributed X(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  put X(i) = t(i)
endpardo i
sip_barrier
list_to_blocks X \"snap\"
pardo i
  get X(i)
  u(i) = X(i)
endpardo i
endsial
",
    );
    assert_eq!(rules(&d), vec!["get-after-put"], "{d:?}");
}

#[test]
fn shipped_style_checkpoint_flow_is_clean() {
    let d = check_src(
        "sial ckpt
aoindex i = 1, n
distributed X(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  put X(i) = t(i)
endpardo i
sip_barrier
blocks_to_list X \"snap\"
list_to_blocks X \"snap\"
sip_barrier
pardo i
  get X(i)
  u(i) = X(i)
endpardo i
endsial
",
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn compiled_programs_listing_matches_disassembly() {
    // Diagnostics carry the offending instruction, disassembled.
    let d = check_src(
        "sial ww2
aoindex i = 1, n
aoindex j = 1, n
distributed X(j)
temp t(j)
pardo i, j
  t(j) = 1.0
  put X(j) = t(j)
endpardo i, j
endsial
",
    );
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains('i'), "{}", d[0].message);
    let rendered = render_report(&d);
    assert!(rendered.contains("write-write-race"), "{rendered}");
    assert!(
        rendered.contains(&format!("pc {:>4}", d[0].pc)),
        "{rendered}"
    );
}

#[test]
fn findings_carry_source_lines_from_the_line_table() {
    // Compiled programs carry a wire-v3 line table; the verifier resolves
    // each finding's pc through it so reports read `file:line`.
    let d = check_src(
        "sial ww3
aoindex i = 1, n
aoindex j = 1, n
distributed X(j)
temp t(j)
pardo i, j
  t(j) = 1.0
  put X(j) = t(j)
endpardo i, j
endsial
",
    );
    assert_eq!(rules(&d), vec!["write-write-race"], "{d:?}");
    let (file, line) = d[0].source.clone().expect("line table resolves the pc");
    assert_eq!(file, "<input>");
    assert_eq!(line, 8, "the put statement is on line 8");
    assert!(d[0].to_string().starts_with("<input>:8: "), "{}", d[0]);

    let shared = d[0].to_diagnostic();
    assert_eq!(shared.code, "verify/write-write-race");
    assert_eq!(
        (shared.file.as_str(), shared.line, shared.col),
        ("<input>", 8, 1)
    );
    assert!(shared.message.contains("put"), "{}", shared.message);
}

#[test]
fn hand_built_bytecode_has_no_source() {
    let p = prog(
        vec![ao("i")],
        vec![],
        vec![
            I::Get {
                block: bref(5, &[0]),
            },
            I::Halt,
        ],
    );
    let d = check_program(&p);
    assert!(d.iter().all(|x| x.source.is_none()), "{d:?}");
    let shared = d[0].to_diagnostic();
    assert_eq!(shared.line, 0, "no line table, no location");
}
