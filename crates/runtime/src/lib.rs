//! # sia-runtime — the SIP (Super Instruction Processor)
//!
//! A parallel virtual machine executing SIA bytecode, reproducing the runtime
//! of *A Block-Oriented Language and Runtime System for Tensor Algebra with
//! Very Large Arrays* (SC 2010):
//!
//! * a **master** that dry-runs the program for memory feasibility, doles out
//!   pardo chunks with guided scheduling, and coordinates barriers,
//!   collectives, and checkpoints;
//! * **workers** that interpret the bytecode SPMD-style with a block pool,
//!   an LRU block cache, asynchronous get/put with prefetch look-ahead, and
//!   per-instruction profiling;
//! * **I/O servers** backing `served` arrays on disk with write-behind LRU
//!   caches.
//!
//! The MPI layer of the original is replaced by [`sia_fabric`] (ranks are
//! threads); everything above it — the protocol, the overlap machinery, the
//! scheduling policies — follows the paper.
//!
//! ```
//! use sia_runtime::{Sip, SipConfig};
//! use sia_bytecode::ConstBindings;
//!
//! let src = r#"
//! sial axpy
//! aoindex i = 1, n
//! distributed X(i)
//! temp t(i)
//! scalar total
//! pardo i
//!   t(i) = 2.5
//!   put X(i) = t(i)
//! endpardo i
//! sip_barrier
//! pardo i
//!   get X(i)
//!   total += X(i) * X(i)
//! endpardo i
//! sip_barrier
//! execute sip_allreduce total
//! endsial
//! "#;
//! let program = sial_frontend::compile(src).unwrap();
//! let mut bindings = ConstBindings::new();
//! bindings.insert("n".into(), 4);
//! let mut config = SipConfig::default();
//! config.workers = 2;
//! let out = Sip::new(config).run(program, &bindings).unwrap();
//! // 4 segments × 8 elements × 2.5² each:
//! assert!((out.scalars["total"] - 4.0 * 8.0 * 6.25).abs() < 1e-9);
//! ```

// The public modules: each is a coherent surface on its own (the event
// tracer, the metrics model, the verifier, the simulator trace, …).
pub mod cache;
pub mod dryrun;
pub mod events;
pub mod ioserver;
pub mod metrics;
pub mod plan;
pub mod scheduler;
pub mod serve;
pub mod trace;
pub mod verify;

// Runtime internals: reachable only through the re-exports below.
pub(crate) mod error;
pub(crate) mod ft;
pub(crate) mod interp;
pub(crate) mod layout;
pub(crate) mod master;
pub(crate) mod memory;
pub(crate) mod msg;
pub(crate) mod profile;
pub(crate) mod registry;
pub(crate) mod worker;

pub use cache::{BlockGet, CacheStats};
pub use dryrun::MemoryEstimate;
pub use error::{CommKind, RuntimeError};
pub use events::{
    lint_chrome_trace, lint_diag_json, lint_profile_json, CommOp, EventKind, RankTrace,
    RecoveryEvent, TraceEvent, TraceLint, TraceSink, TraceTimeline,
};
pub use layout::{
    ConfigError, CrashSchedule, FaultConfig, Layout, Placement, SegmentConfig, SipConfig,
    SipConfigBuilder, Topology,
};
pub use memory::{BlockManager, MemoryStats};
pub use metrics::{
    CommStats, FaultStats, Merge, Metrics, RecoveryStats, ServerStats, SparseStats, WaitCause,
    WaitStats,
};
pub use msg::{BlockKey, OpId, SipMsg};
pub use plan::{BroadcastOp, CommPlan, CommPlanner, CommVolume, OwnerCompute, PlanSummary};
pub use profile::{ProfileLine, ProfileReport, WorkerProfile};
pub use registry::{SuperArg, SuperEnv, SuperRegistry};
pub use serve::{
    jain_index, AdmitError, Daemon, DaemonConfig, JobId, JobSpec, JobState, JobStatus,
    ServeHandles, ShareArbiter, WarmCache,
};
pub use sia_fabric::{CrashSpec, FaultPlan, FaultSnapshot};
pub use verify::{check_program, Diagnostic, Rule};

/// The items most embedders need: configure a SIP, run it, read the
/// metrics/profile, and handle the trace.
pub mod prelude {
    pub use crate::{
        BlockGet, Merge, Metrics, ProfileReport, RunOutput, Sip, SipConfig, SipConfigBuilder,
        SparseStats, TraceSink, TraceTimeline, WaitCause,
    };
}

use sia_blocks::Block;
use sia_bytecode::{ConstBindings, Program};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Fabric traffic totals for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSummary {
    /// Messages sent across all ranks.
    pub messages: u64,
    /// Bytes sent across all ranks.
    pub bytes: u64,
}

/// Per-rank traffic (index = rank: 0 master, then workers, then I/O servers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// Messages sent by this rank.
    pub sent_messages: u64,
    /// Bytes sent by this rank.
    pub sent_bytes: u64,
    /// Messages received by this rank.
    pub received_messages: u64,
    /// Bytes received by this rank.
    pub received_bytes: u64,
}

/// Everything a SIP run returns.
#[derive(Debug)]
pub struct RunOutput {
    /// Final scalar values (worker 0's view; collectives make these global).
    pub scalars: BTreeMap<String, f64>,
    /// Distributed arrays gathered to the master (only when
    /// `collect_distributed` is set): array name → segment key → block.
    pub collected: BTreeMap<String, BTreeMap<Vec<i64>, Block>>,
    /// Merged per-instruction profile.
    pub profile: ProfileReport,
    /// Diagnostics from all ranks (barrier misuse detections, …).
    pub warnings: Vec<String>,
    /// The dry-run estimate computed before execution.
    pub dry_run: MemoryEstimate,
    /// Fabric traffic totals.
    pub traffic: TrafficSummary,
    /// Per-rank traffic (rank 0 = master, then workers, then I/O servers) —
    /// the load-balance view the placement ablation reads.
    pub traffic_per_rank: Vec<RankTraffic>,
    /// The merged cross-rank event timeline (`Some` when tracing was
    /// enabled via [`SipConfig::trace`] or a `trace_path`).
    pub trace: Option<TraceTimeline>,
}

/// The SIP entry point: configure, register super instructions, run.
pub struct Sip {
    config: SipConfig,
    registry: SuperRegistry,
    /// Serving hooks (fair-share arbiter + warm cache) when this run is a
    /// daemon job; `None` for one-shot runs.
    serving: Option<serve::ServeHandles>,
}

impl Sip {
    /// Creates a SIP with the given configuration and an empty registry.
    pub fn new(config: SipConfig) -> Self {
        Sip {
            config,
            registry: SuperRegistry::new(),
            serving: None,
        }
    }

    /// Installs the multi-tenant serving hooks (called by
    /// [`serve::Daemon`] before running a job): the job's master consults
    /// the shared fair-share arbiter on every chunk grant, and the job's
    /// I/O servers share the cross-job warm block cache.
    pub fn set_serving(&mut self, handles: serve::ServeHandles) {
        self.serving = Some(handles);
    }

    /// Mutable access to the super-instruction registry.
    pub fn registry_mut(&mut self) -> &mut SuperRegistry {
        &mut self.registry
    }

    /// Replaces the registry wholesale.
    pub fn with_registry(mut self, registry: SuperRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SipConfig {
        &self.config
    }

    /// Runs a program to completion.
    ///
    /// Performs the dry run first; if a `memory_budget` is configured and the
    /// estimate exceeds it, returns [`RuntimeError::Infeasible`] *without*
    /// launching the run (reporting a sufficient worker count, as the paper
    /// prescribes).
    pub fn run(
        &self,
        program: Program,
        bindings: &ConstBindings,
    ) -> Result<RunOutput, RuntimeError> {
        let topology = Topology {
            workers: self.config.workers,
            io_servers: self.config.io_servers,
            placement: self.config.placement,
        };
        if topology.workers == 0 {
            return Err(RuntimeError::Resolve("need at least one worker".into()));
        }
        let program = Arc::new(program);
        let layout = Arc::new(Layout::new(
            Arc::clone(&program),
            bindings,
            self.config.segments,
            topology,
        )?);

        // ---- dry run -------------------------------------------------------
        let estimate = dryrun::estimate(&layout, &self.config);
        // The communication plan is derived from the same layout every rank
        // holds, so it is identical everywhere by construction. A program
        // the trace walker cannot model (e.g. one that would nest pardos)
        // degrades to an empty plan — the demand-fetch path still runs it.
        let comm_plan = Arc::new(
            trace::generate_with_densities(
                &layout,
                &trace::default_cost_model(),
                &self.config.sparsity_density,
            )
            .map(|t| {
                plan::CommPlanner::with_densities(&layout, &t, &self.config.sparsity_density).plan()
            })
            .unwrap_or_default(),
        );
        if let Some(budget) = self.config.memory_budget {
            if !estimate.feasible(budget) {
                let sufficient =
                    dryrun::sufficient_workers(&layout, &self.config, budget).unwrap_or(usize::MAX);
                return Err(RuntimeError::Infeasible {
                    needed_per_worker: estimate.per_worker_bytes,
                    budget,
                    sufficient_workers: sufficient,
                });
            }
        }

        // ---- run directory ---------------------------------------------------
        let (run_dir, owned_dir) = match &self.config.run_dir {
            Some(d) => (d.clone(), false),
            None => {
                let d = std::env::temp_dir().join(format!(
                    "sia-run-{}-{}",
                    std::process::id(),
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_nanos())
                        .unwrap_or(0)
                ));
                (d, true)
            }
        };
        std::fs::create_dir_all(&run_dir)
            .map_err(|e| RuntimeError::ServedIo(format!("create run dir: {e}")))?;

        // Workers see the resolved run directory (epoch checkpoints land
        // there) and the served-epoch count a previous, interrupted run left
        // behind (surfaced to programs via `execute sip_resume_epoch s`).
        let mut worker_config = self.config.clone();
        worker_config.run_dir = Some(run_dir.clone());
        worker_config.resumed_epochs = master::read_epoch_manifest(&run_dir);

        // ---- spawn the virtual machine -----------------------------------------
        let fault_plan = self.config.fault.as_ref().map(|f| f.plan.clone());
        // A daemon job's fabric world carries the job id as its tag, so
        // every envelope of the run attributes to one tenant.
        let world_tag = self.serving.as_ref().map(|h| h.job).unwrap_or(0);
        let (mut endpoints, stats) =
            sia_fabric::build_tagged::<SipMsg>(topology.world_size(), fault_plan, world_tag);
        let mut io_eps: Vec<_> = endpoints.split_off(1 + topology.workers);
        let worker_eps: Vec<_> = endpoints.split_off(1);
        let master_ep = endpoints.pop().expect("master endpoint");

        let chunk_policy = self
            .config
            .chunk_policy
            .unwrap_or(scheduler::ChunkPolicy::Guided {
                factor: self.config.chunk_factor,
            });
        let mut master = master::Master::new(
            Arc::clone(&layout),
            master_ep,
            chunk_policy,
            run_dir.clone(),
            self.config.fault.clone(),
        );
        master.set_plan(Arc::clone(&comm_plan));
        if let Some(h) = &self.serving {
            master.set_serving(h.clone());
        }

        // One epoch `Instant` shared by every rank's trace sink: merged
        // timestamps need no clock alignment.
        let trace_on = self.config.tracing();
        let trace_cap = self.config.trace_buffer_events;
        let trace_epoch = std::time::Instant::now();
        let mk_sink = move || {
            if trace_on {
                TraceSink::enabled(trace_cap, trace_epoch)
            } else {
                TraceSink::disabled()
            }
        };
        if trace_on {
            master.set_trace(mk_sink());
        }

        let result = std::thread::scope(|scope| {
            // Workers.
            for ep in worker_eps {
                let layout = Arc::clone(&layout);
                let config = worker_config.clone();
                let registry = self.registry.clone();
                let collect = self.config.collect_distributed;
                let plan = Arc::clone(&comm_plan);
                scope.spawn(move || {
                    let mut w = worker::Worker::new(layout, config, ep, registry);
                    w.set_plan(plan);
                    if trace_on {
                        w.set_trace(mk_sink());
                    }
                    run_worker(&mut w, collect);
                });
            }
            // I/O servers. Serving daemons point every job at one shared
            // served directory (and warm cache); one-shot runs keep the
            // private default under the run directory.
            let served_dir = self
                .config
                .served_dir
                .clone()
                .unwrap_or_else(|| run_dir.join("served"));
            for ep in io_eps.drain(..) {
                let layout = Arc::clone(&layout);
                let dir = served_dir.clone();
                let cap = self.config.server_cache_blocks;
                let warm = self.serving.as_ref().map(|h| Arc::clone(&h.warm));
                scope.spawn(move || {
                    match ioserver::IoServer::new(layout, ep, dir, cap) {
                        Ok(mut server) => {
                            if trace_on {
                                server.set_trace(mk_sink());
                            }
                            if let Some(w) = warm {
                                server.set_warm(w);
                            }
                            let _ = server.run();
                        }
                        Err(_) => { /* workers will fail on prepare/request */ }
                    }
                });
            }
            // The master runs on the calling thread.
            master.run()
        });

        if owned_dir {
            let _ = std::fs::remove_dir_all(&run_dir);
        }

        let mut master_out = result?;

        // ---- assemble output -----------------------------------------------------
        let mut scalars = BTreeMap::new();
        if let Some(first) = master_out.scalars.first() {
            for (decl, value) in layout.program.scalars.iter().zip(first) {
                scalars.insert(decl.name.clone(), *value);
            }
        }
        let mut collected: BTreeMap<String, BTreeMap<Vec<i64>, Block>> = BTreeMap::new();
        for (key, block) in master_out.collected {
            let name = layout.program.arrays[key.array.index()].name.clone();
            collected
                .entry(name)
                .or_default()
                .insert(key.segs().iter().map(|&s| s as i64).collect(), block);
        }
        let mut profile = ProfileReport::merge(&layout.program, &master_out.profiles);
        // Fold in the counters the workers can't carry themselves: master
        // recovery, I/O-server totals, and fabric injection.
        profile.metrics.recovery.merge(&master_out.recovery);
        profile.metrics.server.merge(&master_out.server);
        Merge::merge(&mut profile.metrics.fabric, &stats.total_faults());
        // Run-level planner figures: what the plan predicted against what
        // the fabric measured, plus envelope-batching savings.
        profile.metrics.plan.coalesced_messages = stats.total_messages_coalesced();
        profile.metrics.plan.predicted_bytes = comm_plan.volume.total();
        profile.metrics.plan.actual_bytes = stats.total_bytes_sent();
        profile.dry_run_estimate_bytes = estimate.per_worker_bytes;
        profile.gemm_threads = self.config.gemm_threads;
        // A config built without the builder never recorded a request;
        // treat the effective value as the request in that case.
        profile.gemm_threads_requested = self
            .config
            .gemm_threads_requested
            .max(self.config.gemm_threads);

        // ---- merged trace timeline -------------------------------------------
        let trace = if trace_on {
            let mut tl = TraceTimeline::default();
            tl.ranks.push(RankTrace {
                rank: 0,
                label: "master".into(),
                events: std::mem::take(&mut master_out.master_events),
                dropped: master_out.master_dropped,
            });
            for (i, p) in master_out.profiles.iter_mut().enumerate() {
                let rank = layout.topology.worker(i).0;
                tl.ranks.push(RankTrace {
                    rank,
                    label: format!("worker {rank}"),
                    events: std::mem::take(&mut p.events),
                    dropped: p.events_dropped,
                });
            }
            for (rank, events, dropped) in std::mem::take(&mut master_out.server_events) {
                tl.ranks.push(RankTrace {
                    rank: rank.0,
                    label: format!("io {}", rank.0),
                    events,
                    dropped,
                });
            }
            tl.ranks.sort_by_key(|r| r.rank);
            Some(tl)
        } else {
            None
        };
        if let (Some(tl), Some(path)) = (&trace, &self.config.trace_path) {
            std::fs::write(path, tl.to_chrome_json(Some(&layout.program)))
                .map_err(|e| RuntimeError::ServedIo(format!("write trace {path:?}: {e}")))?;
        }
        if let Some(path) = &self.config.profile_json {
            std::fs::write(path, profile.to_json())
                .map_err(|e| RuntimeError::ServedIo(format!("write profile {path:?}: {e}")))?;
        }
        let traffic_per_rank: Vec<RankTraffic> = (0..topology.world_size())
            .map(|r| {
                let c = stats.counters_of(sia_fabric::Rank(r));
                RankTraffic {
                    sent_messages: c.messages_sent(),
                    sent_bytes: c.bytes_sent(),
                    received_messages: c.messages_received(),
                    received_bytes: c.bytes_received(),
                }
            })
            .collect();
        Ok(RunOutput {
            scalars,
            collected,
            profile,
            warnings: master_out.warnings,
            dry_run: estimate,
            traffic: TrafficSummary {
                messages: stats.total_messages_sent(),
                bytes: stats.total_bytes_sent(),
            },
            traffic_per_rank,
            trace,
        })
    }

    /// Runs the dry-run analysis only (no threads spawned).
    pub fn dry_run(
        &self,
        program: Program,
        bindings: &ConstBindings,
    ) -> Result<MemoryEstimate, RuntimeError> {
        let topology = Topology {
            workers: self.config.workers,
            io_servers: self.config.io_servers,
            placement: self.config.placement,
        };
        let layout = Layout::new(Arc::new(program), bindings, self.config.segments, topology)?;
        Ok(dryrun::estimate(&layout, &self.config))
    }

    /// Runs the dry-run analysis *and* the communication planner (no
    /// threads spawned) — `sial dryrun` prints both.
    pub fn plan(
        &self,
        program: Program,
        bindings: &ConstBindings,
    ) -> Result<(MemoryEstimate, plan::CommPlan), RuntimeError> {
        let topology = Topology {
            workers: self.config.workers,
            io_servers: self.config.io_servers,
            placement: self.config.placement,
        };
        let layout = Layout::new(Arc::new(program), bindings, self.config.segments, topology)?;
        let estimate = dryrun::estimate(&layout, &self.config);
        let trace = trace::generate_with_densities(
            &layout,
            &trace::default_cost_model(),
            &self.config.sparsity_density,
        )?;
        let plan =
            plan::CommPlanner::with_densities(&layout, &trace, &self.config.sparsity_density)
                .plan();
        Ok((estimate, plan))
    }
}

/// Convenience: compile-free run directory default used by examples.
pub fn default_run_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sia-{tag}-{}", std::process::id()))
}

fn run_worker(w: &mut worker::Worker, collect: bool) {
    let master = w.layout.topology.master();
    match w.execute_program() {
        // A worker that executed its scheduled crash unwinds silently: its
        // endpoint is dead and the master recovers around it.
        Err(_) if w.endpoint.is_crashed() => {}
        Ok(()) => {
            // A peer's put to a block homed here can still be in flight when
            // our own program text ends. Before snapshotting the store for
            // collection, cross an end-of-run barrier: every worker first
            // drains its own put acks (an ack means the home applied the
            // put), so once all workers have entered, every put has landed.
            let blocks: Vec<(BlockKey, sia_blocks::BlockHandle)> = if collect {
                match w.barrier(crate::msg::BarrierKind::Sip) {
                    Ok(_) => w.mem.drain_home(),
                    // The run is aborting; the master won't read these.
                    Err(_) => Vec::new(),
                }
            } else {
                Vec::new()
            };
            // Ship the trace ring inside the profile.
            let (events, events_dropped) = w.trace.drain();
            w.profile.events = events;
            w.profile.events_dropped = events_dropped;
            let msg = SipMsg::WorkerDone {
                scalars: w.scalars.clone(),
                blocks,
                profile: Box::new(std::mem::take(&mut w.profile)),
                warnings: std::mem::take(&mut w.warnings),
            };
            let _ = w.endpoint.send(master, msg);
            w.service_until_shutdown();
        }
        Err(e) => {
            let _ = w.endpoint.send(
                master,
                SipMsg::WorkerFailed {
                    error: e.to_string(),
                },
            );
            w.service_until_shutdown();
        }
    }
}
