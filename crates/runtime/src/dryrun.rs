//! The dry run: memory-feasibility analysis before the real run.
//!
//! "The master inspects the SIAL program in 'dry-run' mode … an estimate of
//! the memory requirements for each worker given the number of processors …
//! the sizes of the arrays, and the distributed data layout. This feature
//! allows the user to avoid wasting valuable supercomputing resources on an
//! infeasible computation. … If the computation is not feasible with the
//! available memory, this is reported to the user along with the number of
//! processors that would be sufficient." (§V-B)

use crate::layout::{Layout, SipConfig};
use sia_bytecode::ArrayKind;

/// Approximate heap bytes one norm-table entry costs a sparse home (key +
/// `f64` norm + hash-map overhead). Shared with the runtime's accounting in
/// [`crate::memory::BlockManager::norm_table_bytes`] so the prediction and
/// the measurement use the same per-entry constant.
pub const NORM_TABLE_ENTRY_BYTES: u64 = 48;

/// The dry run's memory estimate.
///
/// For sparse arrays the headline `per_worker_bytes` is the **realized**
/// footprint: blocks expected to carry data cost full payload, blocks
/// expected to be dropped cost one norm-table entry. The expectation comes
/// from [`SipConfig::sparsity_density`] hints (`array name → fraction of
/// blocks realized`); arrays without a hint are estimated dense, so the
/// estimate only tightens when the user asserts something.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Upper-bound bytes resident on one worker (realized footprint).
    pub per_worker_bytes: u64,
    /// The same bound with every sparse block materialized (what a dense
    /// run of the identical program would need). Equal to
    /// `per_worker_bytes` when no sparse array has a density hint.
    pub dense_per_worker_bytes: u64,
    /// Upper-bound bytes resident on one I/O server: the serve cache plus
    /// the norm table of any sparse served array (disk is assumed
    /// unbounded, as in the original, but norm tables live in memory).
    pub per_server_bytes: u64,
    /// Per-array per-worker contributions `(array name, realized bytes)`.
    pub breakdown: Vec<(String, u64)>,
    /// Size of the largest single block (drives cache sizing).
    pub largest_block_bytes: u64,
    /// Bytes attributed to the block cache.
    pub cache_bytes: u64,
}

impl MemoryEstimate {
    /// Does the estimate fit a per-worker budget?
    pub fn feasible(&self, budget: u64) -> bool {
        self.per_worker_bytes <= budget
    }
}

/// Estimates per-worker memory for the layout's worker count.
pub fn estimate(layout: &Layout, config: &SipConfig) -> MemoryEstimate {
    per_worker(layout, config, layout.topology.workers as u64)
}

fn per_worker(layout: &Layout, config: &SipConfig, workers: u64) -> MemoryEstimate {
    let workers = workers.max(1);
    let servers = (layout.topology.io_servers as u64).max(1);
    let mut breakdown = Vec::new();
    let mut total: u64 = 0;
    let mut dense_total: u64 = 0;
    let mut largest: u64 = 0;
    let mut server_norm_bytes: u64 = 0;

    for (i, decl) in layout.program.arrays.iter().enumerate() {
        let id = sia_bytecode::ArrayId(i as u32);
        let bb = layout.block_bytes(id);
        largest = largest.max(bb);
        let blocks = layout.total_blocks(id);
        // Fraction of blocks expected to carry data. Only sparse arrays
        // with an explicit hint tighten the estimate; everything else is
        // the conservative dense bound.
        let density = if decl.sparse {
            config
                .sparsity_density
                .get(&decl.name)
                .copied()
                .unwrap_or(1.0)
                .clamp(0.0, 1.0)
        } else {
            1.0
        };
        // Blocks homed on (or replicated to) one worker.
        let home_blocks = match decl.kind {
            // Distributed blocks spread evenly under the static placement.
            ArrayKind::Distributed => blocks.div_ceil(workers),
            // Served blocks live on the servers; workers only cache them.
            ArrayKind::Served => 0,
            // Static arrays are fully replicated.
            ArrayKind::Static => blocks,
            // Local arrays: upper bound is the full block set (the paper's
            // locals are "fully formed in at least one dimension"; we bound
            // by the whole array, which is what the original's conservative
            // dry run reports too).
            ArrayKind::Local => blocks,
            // One live block per temp.
            ArrayKind::Temp => 1,
        };
        let dense_bytes = home_blocks * bb;
        // Realized: payload for the expected-live blocks, a norm-table
        // entry for each expected-dropped block.
        let live = ((home_blocks as f64) * density).ceil() as u64;
        let live = live.min(home_blocks);
        let bytes = live * bb + (home_blocks - live) * NORM_TABLE_ENTRY_BYTES;
        // A sparse served array's dropped blocks cost its home — the I/O
        // server — a norm-table entry each (disk holds the live payloads).
        if decl.kind == ArrayKind::Served && decl.sparse {
            let server_blocks = blocks.div_ceil(servers);
            let server_live = (((server_blocks as f64) * density).ceil() as u64).min(server_blocks);
            server_norm_bytes += (server_blocks - server_live) * NORM_TABLE_ENTRY_BYTES;
        }
        if bytes > 0 {
            breakdown.push((decl.name.clone(), bytes));
        }
        total += bytes;
        dense_total += dense_bytes;
    }
    // The same sizing the worker's BlockManager uses at runtime, so the
    // prediction and the enforced ceiling are in the same units.
    let cache_bytes = config.cache_blocks as u64 * layout.largest_remote_block_bytes();
    total += cache_bytes;
    dense_total += cache_bytes;
    MemoryEstimate {
        per_worker_bytes: total,
        dense_per_worker_bytes: dense_total,
        per_server_bytes: config.server_cache_blocks as u64 * largest + server_norm_bytes,
        breakdown,
        largest_block_bytes: largest,
        cache_bytes,
    }
}

/// The smallest worker count whose per-worker estimate fits `budget`
/// (`None` when even "infinitely many" workers cannot fit — the
/// non-distributed residue alone exceeds the budget).
pub fn sufficient_workers(layout: &Layout, config: &SipConfig, budget: u64) -> Option<usize> {
    // Fixed part: everything that does not shrink with more workers.
    let many = per_worker(layout, config, u64::MAX / 2);
    if many.per_worker_bytes > budget {
        return None;
    }
    // Binary search the worker count (estimate is monotone nonincreasing).
    let (mut lo, mut hi) = (1u64, 1u64 << 32);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if per_worker(layout, config, mid).per_worker_bytes <= budget {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{SegmentConfig, Topology};
    use sia_bytecode::{ArrayDecl, ConstBindings, IndexDecl, IndexId, IndexKind, Program, Value};
    use std::sync::Arc;

    fn layout(workers: usize, arrays: Vec<ArrayDecl>) -> Layout {
        let program = Program {
            indices: vec![IndexDecl {
                name: "i".into(),
                kind: IndexKind::AoIndex,
                low: Value::Lit(1),
                high: Value::Lit(10),
            }],
            arrays,
            ..Default::default()
        };
        Layout::new(
            Arc::new(program),
            &ConstBindings::new(),
            SegmentConfig {
                default: 8,
                ..Default::default()
            },
            Topology::new(workers, 1),
        )
        .unwrap()
    }

    fn arr(name: &str, kind: ArrayKind, rank: usize) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            kind,
            dims: vec![IndexId(0); rank],
            sparse: false,
        }
    }

    fn config(cache_blocks: usize) -> SipConfig {
        SipConfig {
            cache_blocks,
            server_cache_blocks: 4,
            ..SipConfig::default()
        }
    }

    #[test]
    fn distributed_scales_with_workers() {
        // 100 blocks of 8x8 doubles = 512 B each.
        let arrays = vec![arr("D", ArrayKind::Distributed, 2)];
        let e1 = per_worker(&layout(1, arrays.clone()), &config(0), 1);
        let e4 = per_worker(&layout(4, arrays), &config(0), 4);
        assert_eq!(e1.per_worker_bytes, 100 * 512);
        assert_eq!(e4.per_worker_bytes, 25 * 512);
    }

    #[test]
    fn static_replicated_temp_single() {
        let arrays = vec![arr("S", ArrayKind::Static, 2), arr("T", ArrayKind::Temp, 2)];
        let e = per_worker(&layout(4, arrays), &config(0), 4);
        assert_eq!(e.per_worker_bytes, 100 * 512 + 512);
    }

    #[test]
    fn served_costs_cache_only() {
        let arrays = vec![arr("V", ArrayKind::Served, 2)];
        let e = per_worker(&layout(2, arrays), &config(3), 2);
        assert_eq!(e.per_worker_bytes, 3 * 512);
        assert_eq!(e.cache_bytes, 3 * 512);
        assert_eq!(e.per_server_bytes, 4 * 512);
    }

    fn sparse_arr(name: &str, kind: ArrayKind, rank: usize) -> ArrayDecl {
        ArrayDecl {
            sparse: true,
            ..arr(name, kind, rank)
        }
    }

    #[test]
    fn sparse_without_hint_estimates_dense() {
        let dense = estimate(
            &layout(1, vec![arr("D", ArrayKind::Distributed, 2)]),
            &config(0),
        );
        let sparse = estimate(
            &layout(1, vec![sparse_arr("D", ArrayKind::Distributed, 2)]),
            &config(0),
        );
        assert_eq!(sparse.per_worker_bytes, dense.per_worker_bytes);
        assert_eq!(sparse.dense_per_worker_bytes, sparse.per_worker_bytes);
    }

    #[test]
    fn density_hint_tightens_realized_estimate() {
        // 100 blocks × 512 B dense; at 25% density, 25 blocks carry payload
        // and 75 cost a norm-table entry each.
        let mut c = config(0);
        c.sparsity_density.insert("D".into(), 0.25);
        let e = estimate(
            &layout(1, vec![sparse_arr("D", ArrayKind::Distributed, 2)]),
            &c,
        );
        assert_eq!(e.dense_per_worker_bytes, 100 * 512);
        assert_eq!(
            e.per_worker_bytes,
            25 * 512 + 75 * NORM_TABLE_ENTRY_BYTES,
            "realized = live payloads + norm-table entries"
        );
        assert!(e.per_worker_bytes < e.dense_per_worker_bytes);
        // Density hints on a *dense* array are ignored.
        let dense = estimate(&layout(1, vec![arr("D", ArrayKind::Distributed, 2)]), &c);
        assert_eq!(dense.per_worker_bytes, 100 * 512);
    }

    #[test]
    fn served_sparse_charges_server_norm_table() {
        // Regression: served arrays used to cost 0 everywhere, silently
        // undercounting the home-side norm table of a sparse served array.
        let mut c = config(3);
        c.sparsity_density.insert("V".into(), 0.5);
        let e = estimate(&layout(2, vec![sparse_arr("V", ArrayKind::Served, 2)]), &c);
        // Workers still pay cache only …
        assert_eq!(e.per_worker_bytes, 3 * 512);
        // … but the single server now carries 50 norm-table entries on top
        // of its serve cache.
        assert_eq!(e.per_server_bytes, 4 * 512 + 50 * NORM_TABLE_ENTRY_BYTES);
        // Dense served arrays are unchanged (disk-backed, cache only).
        let d = estimate(&layout(2, vec![arr("V", ArrayKind::Served, 2)]), &c);
        assert_eq!(d.per_server_bytes, 4 * 512);
    }

    #[test]
    fn sufficient_workers_found() {
        let arrays = vec![arr("D", ArrayKind::Distributed, 2)];
        let l = layout(1, arrays);
        let c = config(0);
        // 100 blocks × 512 B; a 13-block budget needs ⌈100/12.?⌉…: find W
        // with ceil(100/W)*512 ≤ 13*512 → ceil(100/W) ≤ 13 → W = 8.
        let w = sufficient_workers(&l, &c, 13 * 512).unwrap();
        assert_eq!(w, 8);
        assert!(
            estimate(&layout(8, vec![arr("D", ArrayKind::Distributed, 2)]), &c).feasible(13 * 512)
        );
    }

    #[test]
    fn infeasible_at_any_scale() {
        // Static array never shrinks.
        let arrays = vec![arr("S", ArrayKind::Static, 2)];
        let l = layout(1, arrays);
        assert_eq!(sufficient_workers(&l, &config(0), 100), None);
    }

    #[test]
    fn breakdown_names_arrays() {
        let arrays = vec![
            arr("D", ArrayKind::Distributed, 2),
            arr("T", ArrayKind::Temp, 1),
        ];
        let e = estimate(&layout(2, arrays), &config(0));
        let names: Vec<&str> = e.breakdown.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["D", "T"]);
        assert_eq!(e.largest_block_bytes, 512);
    }
}
