//! Multi-tenant serving: the `siald` daemon core.
//!
//! One SIP process serving many SIAL programs concurrently. Each admitted
//! job gets its **own fabric world** (master + workers + I/O servers as
//! threads, exactly as a one-shot run) — rank-failure isolation is by
//! construction, and the world carries the job id as its fabric tag so all
//! of a world's envelopes attribute to one tenant. What the jobs *share* is
//! deliberate and narrow:
//!
//! * **Admission control** — a job is admitted only when its dry-run memory
//!   estimate (`workers × per-worker + servers × per-server bytes`) fits the
//!   daemon's remaining budget; rejection reports the exact bytes needed vs
//!   available, the same numbers `RuntimeError::Infeasible` reports for a
//!   single run.
//! * **Fair-share chunk scheduling** — every job's master consults one
//!   [`ShareArbiter`] before granting a pardo chunk. The arbiter tracks each
//!   job's *normalized progress* (granted iterations / total, divided by its
//!   priority weight); a job running ahead of the slowest active job gets
//!   scaled-down chunks and a brief yield, so normalized progress rates —
//!   exactly what the Jain fairness index is computed over — converge.
//! * **A warm block cache** — served-array block files read or flushed by
//!   any job's I/O server are published to a shared, path-keyed
//!   [`WarmCache`]; a second job referencing the same served array hits
//!   memory instead of disk (`server.warm_hits` in its profile).
//!
//! Everything here is a plain library — `siald` (the Unix-socket front end)
//! and the serving tests both drive [`Daemon`] directly.

use crate::dryrun;
use crate::error::RuntimeError;
use crate::layout::{Layout, SipConfig, Topology};
use crate::registry::SuperRegistry;
use crate::Sip;
use sia_blocks::BlockHandle;
use sia_bytecode::{ConstBindings, Program};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Job identifier, unique within one daemon (also the job's fabric tag).
pub type JobId = u64;

// ---- fair-share arbiter --------------------------------------------------------

/// Progress a job ahead of the slowest active job by more than this margin
/// gets half-sized chunks; twice the margin, quarter-sized plus a yield.
const SHARE_SLACK: f64 = 0.05;
/// One step of the over-share yield loop.
const OVER_SHARE_YIELD: Duration = Duration::from_micros(200);
/// Cap on the total yield per grant: a job's master must keep servicing
/// its own heartbeats/liveness well inside the fault-tolerance timeouts,
/// so a single grant never stalls longer than this — the *next* grant
/// yields again if the job is still ahead.
const OVER_SHARE_YIELD_CAP: Duration = Duration::from_millis(20);

#[derive(Debug, Default, Clone)]
struct JobShare {
    /// Priority weight (≥ 1.0): a weight-2 job is entitled to run twice as
    /// far ahead as a weight-1 job before the arbiter throttles it.
    weight: f64,
    /// Iterations enumerated so far (grows as pardos are encountered).
    total: u64,
    /// Iterations granted to workers so far.
    granted: u64,
    /// Whether the job is still running (finished jobs drop out of the
    /// fair-share comparison but keep their counters for reporting).
    active: bool,
    /// Wall-clock seconds spent running (set on finish; live jobs report
    /// elapsed-so-far).
    started: Option<Instant>,
    run_secs: f64,
}

/// Cross-job fair-share state: one per daemon, shared by every job's master.
///
/// The arbiter equalizes *normalized progress* — the fraction of its own
/// iteration space each job has been granted, divided by its priority
/// weight. A master asks [`ShareArbiter::chunk_scale`] before every grant;
/// over-share jobs get fractional chunks (and a brief yield), which slows
/// their grant loop until the others catch up.
#[derive(Debug, Default)]
pub struct ShareArbiter {
    jobs: Mutex<HashMap<JobId, JobShare>>,
}

impl ShareArbiter {
    /// Creates an empty arbiter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a job with a priority weight (clamped to ≥ 1.0; a higher
    /// weight entitles the job to proportionally more progress).
    pub fn register(&self, job: JobId, weight: f64) {
        let mut jobs = self.jobs.lock().unwrap();
        jobs.insert(
            job,
            JobShare {
                weight: weight.max(1.0),
                active: true,
                started: Some(Instant::now()),
                ..JobShare::default()
            },
        );
    }

    /// Marks a job finished: it leaves the fair-share comparison.
    pub fn finish(&self, job: JobId) {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(s) = jobs.get_mut(&job) {
            s.active = false;
            if let Some(t0) = s.started {
                s.run_secs = t0.elapsed().as_secs_f64();
            }
        }
    }

    /// Adds `n` iterations to a job's known total (called by its master as
    /// each pardo's iteration space is enumerated).
    pub fn add_total(&self, job: JobId, n: u64) {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(s) = jobs.get_mut(&job) {
            s.total += n;
        }
    }

    /// Records `n` iterations granted to one of the job's workers.
    pub fn record_grant(&self, job: JobId, n: u64) {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(s) = jobs.get_mut(&job) {
            s.granted += n;
        }
    }

    fn norm_progress(s: &JobShare) -> f64 {
        if s.total == 0 {
            return 0.0;
        }
        (s.granted as f64 / s.total as f64) / s.weight
    }

    /// How far the job's normalized progress runs ahead of the slowest
    /// active job's, or `None` when there is no one to compare against.
    fn ahead_of_pack(&self, job: JobId) -> Option<f64> {
        let jobs = self.jobs.lock().unwrap();
        let s = jobs.get(&job)?;
        let mine = Self::norm_progress(s);
        let min_active = jobs
            .values()
            .filter(|s| s.active && s.total > 0)
            .map(Self::norm_progress)
            .fold(f64::INFINITY, f64::min);
        min_active.is_finite().then_some(mine - min_active)
    }

    /// The chunk scale a job's master should apply to its next grant: 1.0
    /// when the job is at or behind the slowest active job's normalized
    /// progress, shrinking as it runs ahead. A job *well* over share also
    /// yields — re-checking as it waits, so a job whose iterations are
    /// intrinsically cheap (screened-sparse, say) is actually paced to the
    /// pack rather than merely handed smaller chunks it burns through just
    /// as fast. The yield is bounded per grant so the master keeps
    /// servicing its own world. Called with the arbiter lock *released*
    /// while yielding.
    pub fn chunk_scale(&self, job: JobId) -> f64 {
        let Some(mut ahead) = self.ahead_of_pack(job) else {
            return 1.0;
        };
        if ahead > 2.0 * SHARE_SLACK {
            let deadline = Instant::now() + OVER_SHARE_YIELD_CAP;
            while ahead > SHARE_SLACK && Instant::now() < deadline {
                std::thread::sleep(OVER_SHARE_YIELD);
                match self.ahead_of_pack(job) {
                    Some(a) => ahead = a,
                    None => return 1.0,
                }
            }
        }
        if ahead > 2.0 * SHARE_SLACK {
            // Still over share after the bounded yield: shrink the grant in
            // proportion to the overshoot. Smaller chunks mean the worker is
            // back for the next grant sooner, and every grant is another
            // bounded yield — so the total pacing a runaway job accumulates
            // scales with how far ahead it is, not with a fixed constant.
            (SHARE_SLACK / ahead).clamp(0.02, 0.25)
        } else if ahead > SHARE_SLACK {
            0.5
        } else {
            1.0
        }
    }

    /// Per-job normalized service rates: fraction of the job's own
    /// iteration space granted per second of runtime, divided by its
    /// weight. The quantity the Jain index is computed over.
    pub fn service_rates(&self) -> Vec<(JobId, f64)> {
        let jobs = self.jobs.lock().unwrap();
        let mut out: Vec<(JobId, f64)> = jobs
            .iter()
            .filter(|(_, s)| s.total > 0)
            .map(|(&id, s)| {
                let secs = if s.active {
                    s.started.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0)
                } else {
                    s.run_secs
                };
                (id, Self::norm_progress(s) / secs.max(1e-9))
            })
            .collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Progress snapshot `(granted, total)` for one job.
    pub fn progress(&self, job: JobId) -> (u64, u64) {
        let jobs = self.jobs.lock().unwrap();
        jobs.get(&job)
            .map(|s| (s.granted, s.total))
            .unwrap_or((0, 0))
    }

    /// Jain fairness index over the current service rates (1.0 = perfectly
    /// fair; 1/n = one job got everything). 1.0 when fewer than two jobs
    /// have run.
    pub fn jain(&self) -> f64 {
        jain_index(
            &self
                .service_rates()
                .iter()
                .map(|&(_, r)| r)
                .collect::<Vec<_>>(),
        )
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative rates.
pub fn jain_index(rates: &[f64]) -> f64 {
    let xs: Vec<f64> = rates.iter().copied().filter(|x| x.is_finite()).collect();
    if xs.len() < 2 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

// ---- warm block cache ----------------------------------------------------------

/// A shared, path-keyed cache of served-array block payloads, warm across
/// jobs: any job's I/O server publishes blocks it reads from or flushes to
/// disk, and any job's server consults it before going to disk. Keys are
/// block-file paths, so only jobs whose layouts resolve a key to the same
/// file (same served directory) ever share an entry — sharing is opt-in by
/// pointing jobs at one served dir, exactly what [`Daemon`] does.
#[derive(Debug)]
pub struct WarmCache {
    inner: Mutex<WarmInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct WarmInner {
    map: HashMap<PathBuf, (BlockHandle, u64)>,
    clock: u64,
}

impl WarmCache {
    /// Creates a cache holding at most `capacity` blocks (≥ 1).
    pub fn new(capacity: usize) -> Self {
        WarmCache {
            inner: Mutex::new(WarmInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Looks a block up, refreshing its LRU stamp.
    pub fn get(&self, path: &Path) -> Option<BlockHandle> {
        let mut g = self.inner.lock().unwrap();
        g.clock += 1;
        let stamp = g.clock;
        g.map.get_mut(path).map(|e| {
            e.1 = stamp;
            e.0.clone()
        })
    }

    /// Publishes (or refreshes) a block, evicting the LRU entry over
    /// capacity. Handles are shared, not copied.
    pub fn insert(&self, path: PathBuf, block: BlockHandle) {
        let mut g = self.inner.lock().unwrap();
        g.clock += 1;
        let stamp = g.clock;
        g.map.insert(path, (block, stamp));
        while g.map.len() > self.capacity {
            let victim = g
                .map
                .iter()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    g.map.remove(&k);
                }
                None => break,
            }
        }
    }

    /// Drops one entry (a write made the published payload stale).
    pub fn invalidate(&self, path: &Path) {
        self.inner.lock().unwrap().map.remove(path);
    }

    /// Drops every entry whose file name starts with `prefix` (array
    /// deletion; block files are named `a<id>_<segs>.blk`).
    pub fn invalidate_prefix(&self, dir: &Path, prefix: &str) {
        self.inner.lock().unwrap().map.retain(|p, _| {
            p.parent() != Some(dir)
                || !p
                    .file_name()
                    .map(|f| f.to_string_lossy().starts_with(prefix))
                    .unwrap_or(false)
        });
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The serving hooks a [`Sip`] carries when it runs as a daemon job: the
/// job id (also the fabric world tag), the shared fair-share arbiter, and
/// the shared warm cache.
#[derive(Clone)]
pub struct ServeHandles {
    /// This job's id.
    pub job: JobId,
    /// The daemon-wide fair-share arbiter.
    pub arbiter: Arc<ShareArbiter>,
    /// The daemon-wide warm block cache.
    pub warm: Arc<WarmCache>,
}

// ---- jobs ----------------------------------------------------------------------

/// Everything a submitted job carries.
pub struct JobSpec {
    /// Tenant name (groups per-tenant exports under `tenants/<name>/`).
    pub tenant: String,
    /// Priority weight (≥ 1; higher = entitled to more progress).
    pub priority: u32,
    /// The compiled program.
    pub program: Program,
    /// Constant bindings.
    pub bindings: ConstBindings,
    /// The per-job SIP configuration. The daemon overrides `run_dir` (a
    /// private per-job directory), `served_dir` (the shared served store),
    /// and — when `export` is set — `trace_path`/`profile_json`.
    pub config: SipConfig,
    /// Super-instruction registry for the job (e.g. the chem kernels).
    pub registry: SuperRegistry,
    /// Write per-tenant trace + profile exports for this job.
    pub export: bool,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Admitted, waiting for a run slot.
    Queued,
    /// Running on its own fabric world.
    Running,
    /// Completed successfully.
    Done,
    /// Failed (the error string; other jobs are unaffected).
    Failed(String),
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobState::Queued => write!(f, "queued"),
            JobState::Running => write!(f, "running"),
            JobState::Done => write!(f, "done"),
            JobState::Failed(_) => write!(f, "failed"),
        }
    }
}

/// A status snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub id: JobId,
    /// Tenant name.
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Milliseconds spent queued before the run started.
    pub queued_ms: u64,
    /// Milliseconds running (so far, or total when finished).
    pub run_ms: u64,
    /// Iterations granted / enumerated (fair-share progress).
    pub granted: u64,
    /// Total iterations enumerated so far.
    pub total: u64,
    /// Warm-cache hits this job's I/O servers took.
    pub warm_hits: u64,
    /// Final scalars (empty until done).
    pub scalars: Vec<(String, f64)>,
    /// Per-tenant trace export, when the job asked for one.
    pub trace_path: Option<PathBuf>,
    /// Per-tenant profile export, when the job asked for one.
    pub profile_json: Option<PathBuf>,
    /// The admission footprint charged against the daemon budget.
    pub admitted_bytes: u64,
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The job's dry-run footprint does not fit the remaining budget.
    /// All figures are exact bytes.
    OverBudget {
        /// Bytes the job needs (workers × per-worker + servers × per-server).
        needed_bytes: u64,
        /// Bytes currently uncommitted under the daemon budget.
        available_bytes: u64,
        /// The daemon's total budget.
        budget_bytes: u64,
    },
    /// The program failed layout/dry-run analysis before admission.
    Invalid(String),
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::OverBudget {
                needed_bytes,
                available_bytes,
                budget_bytes,
            } => write!(
                f,
                "admission rejected: job needs {needed_bytes} bytes but only \
                 {available_bytes} of the {budget_bytes}-byte budget are free"
            ),
            AdmitError::Invalid(m) => write!(f, "admission rejected: {m}"),
        }
    }
}

impl std::error::Error for AdmitError {}

// ---- the daemon ----------------------------------------------------------------

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Total memory budget in bytes that admission control enforces over
    /// the *sum* of admitted jobs' dry-run footprints.
    pub budget_bytes: u64,
    /// Maximum jobs running concurrently (admitted beyond this queue).
    pub max_concurrent: usize,
    /// Root data directory: `jobs/<id>/` per-job run dirs, `served/` the
    /// shared served-array store, `tenants/<name>/` per-tenant exports.
    pub data_dir: PathBuf,
    /// Warm-cache capacity in blocks.
    pub warm_blocks: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            budget_bytes: 4 << 30,
            max_concurrent: 4,
            data_dir: std::env::temp_dir().join(format!("siald-{}", std::process::id())),
            warm_blocks: 4096,
        }
    }
}

struct JobRecord {
    tenant: String,
    state: JobState,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
    warm_hits: u64,
    scalars: Vec<(String, f64)>,
    trace_path: Option<PathBuf>,
    profile_json: Option<PathBuf>,
    admitted_bytes: u64,
}

#[derive(Default)]
struct RunGate {
    running: Mutex<usize>,
    cv: Condvar,
}

/// The long-lived serving core: admission control, per-job fabric worlds,
/// fair-share arbitration, the shared warm cache, and per-tenant exports.
pub struct Daemon {
    cfg: DaemonConfig,
    arbiter: Arc<ShareArbiter>,
    warm: Arc<WarmCache>,
    jobs: Arc<Mutex<HashMap<JobId, JobRecord>>>,
    committed: Arc<Mutex<u64>>,
    gate: Arc<RunGate>,
    next_id: AtomicU64,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Daemon {
    /// Creates a daemon (its data directory is created on demand).
    pub fn new(cfg: DaemonConfig) -> Self {
        Daemon {
            warm: Arc::new(WarmCache::new(cfg.warm_blocks)),
            cfg,
            arbiter: Arc::new(ShareArbiter::new()),
            jobs: Arc::new(Mutex::new(HashMap::new())),
            committed: Arc::new(Mutex::new(0)),
            gate: Arc::new(RunGate::default()),
            next_id: AtomicU64::new(1),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// The shared fair-share arbiter (for fairness reporting).
    pub fn arbiter(&self) -> &Arc<ShareArbiter> {
        &self.arbiter
    }

    /// The shared warm cache.
    pub fn warm(&self) -> &Arc<WarmCache> {
        &self.warm
    }

    /// The admission footprint of a job: its dry-run per-worker bytes times
    /// workers, plus per-server bytes times I/O servers.
    pub fn footprint(spec: &JobSpec) -> Result<u64, RuntimeError> {
        let topology = Topology {
            workers: spec.config.workers,
            io_servers: spec.config.io_servers,
            placement: spec.config.placement,
        };
        let layout = Layout::new(
            Arc::new(spec.program.clone()),
            &spec.bindings,
            spec.config.segments,
            topology,
        )?;
        let est = dryrun::estimate(&layout, &spec.config);
        Ok(est.per_worker_bytes * spec.config.workers as u64
            + est.per_server_bytes * spec.config.io_servers as u64)
    }

    /// Submits a job: dry-run admission against the daemon budget, then a
    /// run thread on its own fabric world. Returns the job id immediately;
    /// poll [`Daemon::status`] or block on [`Daemon::wait`].
    pub fn submit(&self, mut spec: JobSpec) -> Result<JobId, AdmitError> {
        let needed = Self::footprint(&spec).map_err(|e| AdmitError::Invalid(e.to_string()))?;
        let id = {
            // Admit under the lock so two submissions cannot both fit the
            // same last bytes.
            let mut committed = self.committed.lock().unwrap();
            let available = self.cfg.budget_bytes.saturating_sub(*committed);
            if needed > available {
                return Err(AdmitError::OverBudget {
                    needed_bytes: needed,
                    available_bytes: available,
                    budget_bytes: self.cfg.budget_bytes,
                });
            }
            *committed += needed;
            self.next_id.fetch_add(1, Ordering::Relaxed)
        };

        // Serving wants fine-grained grants: the arbiter paces jobs at
        // chunk boundaries, and the default guided factor hands out most of
        // a pardo in the first few chunks — far coarser than the 5% share
        // slack. A higher factor keeps chunks a few percent of the space.
        if spec.config.chunk_policy.is_none() {
            spec.config.chunk_policy = Some(crate::scheduler::ChunkPolicy::Guided { factor: 16 });
        }

        // Per-job layout under the data dir.
        let job_dir = self.cfg.data_dir.join("jobs").join(id.to_string());
        let served_dir = self.cfg.data_dir.join("served");
        let tenant_dir = self.cfg.data_dir.join("tenants").join(&spec.tenant);
        spec.config.run_dir = Some(job_dir);
        spec.config.served_dir = Some(served_dir);
        let (trace_path, profile_json) = if spec.export {
            let _ = std::fs::create_dir_all(&tenant_dir);
            let t = tenant_dir.join(format!("job{id}-trace.json"));
            let p = tenant_dir.join(format!("job{id}-profile.json"));
            spec.config.trace_path = Some(t.clone());
            spec.config.profile_json = Some(p.clone());
            (Some(t), Some(p))
        } else {
            (None, None)
        };

        self.jobs.lock().unwrap().insert(
            id,
            JobRecord {
                tenant: spec.tenant.clone(),
                state: JobState::Queued,
                submitted: Instant::now(),
                started: None,
                finished: None,
                warm_hits: 0,
                scalars: Vec::new(),
                trace_path,
                profile_json,
                admitted_bytes: needed,
            },
        );

        let arbiter = Arc::clone(&self.arbiter);
        let warm = Arc::clone(&self.warm);
        let jobs = Arc::clone(&self.jobs);
        let committed = Arc::clone(&self.committed);
        let gate = Arc::clone(&self.gate);
        let max_concurrent = self.cfg.max_concurrent.max(1);
        let handle = std::thread::spawn(move || {
            // Concurrency gate: queued until a run slot frees up.
            {
                let mut running = gate.running.lock().unwrap();
                while *running >= max_concurrent {
                    running = gate.cv.wait(running).unwrap();
                }
                *running += 1;
            }
            {
                let mut g = jobs.lock().unwrap();
                if let Some(r) = g.get_mut(&id) {
                    r.state = JobState::Running;
                    r.started = Some(Instant::now());
                }
            }
            arbiter.register(id, spec.priority as f64);
            let mut sip = Sip::new(spec.config).with_registry(spec.registry);
            sip.set_serving(ServeHandles {
                job: id,
                arbiter: Arc::clone(&arbiter),
                warm,
            });
            let result = sip.run(spec.program, &spec.bindings);
            arbiter.finish(id);
            {
                let mut g = jobs.lock().unwrap();
                if let Some(r) = g.get_mut(&id) {
                    r.finished = Some(Instant::now());
                    match result {
                        Ok(out) => {
                            r.warm_hits = out.profile.metrics.server.warm_hits;
                            r.scalars = out.scalars.into_iter().collect();
                            r.state = JobState::Done;
                        }
                        Err(e) => r.state = JobState::Failed(e.to_string()),
                    }
                }
            }
            {
                let mut c = committed.lock().unwrap();
                *c = c.saturating_sub(needed);
            }
            let mut running = gate.running.lock().unwrap();
            *running -= 1;
            gate.cv.notify_all();
        });
        self.threads.lock().unwrap().push(handle);
        Ok(id)
    }

    /// Status of one job, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let jobs = self.jobs.lock().unwrap();
        jobs.get(&id).map(|r| self.snapshot(id, r))
    }

    fn snapshot(&self, id: JobId, r: &JobRecord) -> JobStatus {
        let (granted, total) = self.arbiter.progress(id);
        let queued_ms = match r.started {
            Some(t) => t.duration_since(r.submitted).as_millis() as u64,
            None => r.submitted.elapsed().as_millis() as u64,
        };
        let run_ms = match (r.started, r.finished) {
            (Some(s), Some(f)) => f.duration_since(s).as_millis() as u64,
            (Some(s), None) => s.elapsed().as_millis() as u64,
            _ => 0,
        };
        JobStatus {
            id,
            tenant: r.tenant.clone(),
            state: r.state.clone(),
            queued_ms,
            run_ms,
            granted,
            total,
            warm_hits: r.warm_hits,
            scalars: r.scalars.clone(),
            trace_path: r.trace_path.clone(),
            profile_json: r.profile_json.clone(),
            admitted_bytes: r.admitted_bytes,
        }
    }

    /// Status of every job, sorted by id.
    pub fn list(&self) -> Vec<JobStatus> {
        let jobs = self.jobs.lock().unwrap();
        let mut out: Vec<JobStatus> = jobs.iter().map(|(&id, r)| self.snapshot(id, r)).collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Blocks until the job finishes (done or failed) or `timeout` passes.
    /// Returns the final status, or `None` on timeout/unknown id.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.status(id) {
                None => return None,
                Some(s) if matches!(s.state, JobState::Done | JobState::Failed(_)) => {
                    return Some(s);
                }
                Some(_) if Instant::now() >= deadline => return None,
                Some(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Jain fairness index over the jobs' normalized service rates.
    pub fn fairness(&self) -> f64 {
        self.arbiter.jain()
    }

    /// Joins every job thread (all jobs run to completion first).
    pub fn shutdown(&self) {
        let handles: Vec<_> = self.threads.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_blocks::{Block, Shape};

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One job hogging everything: J = 1/n.
        let j = jain_index(&[1.0, 0.0, 0.0]);
        assert!((j - 1.0 / 3.0).abs() < 1e-12, "{j}");
        // Mild skew stays high.
        assert!(jain_index(&[1.0, 0.9, 1.1]) > 0.95);
    }

    #[test]
    fn arbiter_throttles_the_job_ahead() {
        let a = ShareArbiter::new();
        a.register(1, 1.0);
        a.register(2, 1.0);
        a.add_total(1, 100);
        a.add_total(2, 100);
        a.record_grant(1, 50);
        a.record_grant(2, 10);
        assert!(a.chunk_scale(1) < 1.0, "job 1 is 40% ahead");
        assert_eq!(a.chunk_scale(2), 1.0, "job 2 is the slowest");
        // A finished job drops out of the comparison.
        a.finish(2);
        assert_eq!(a.chunk_scale(1), 1.0, "job 1 is the only active job");
    }

    #[test]
    fn arbiter_priority_weight_raises_entitlement() {
        let a = ShareArbiter::new();
        a.register(1, 2.0); // priority 2: entitled to 2× progress
        a.register(2, 1.0);
        a.add_total(1, 100);
        a.add_total(2, 100);
        a.record_grant(1, 40);
        a.record_grant(2, 40);
        // Normalized: job1 = 0.40/2 = 0.20, job2 = 0.40. Job 1 is *behind*
        // despite equal raw progress.
        assert_eq!(a.chunk_scale(1), 1.0);
        assert!(a.chunk_scale(2) < 1.0);
    }

    #[test]
    fn warm_cache_lru_and_invalidate() {
        let w = WarmCache::new(2);
        let blk = |v: f64| BlockHandle::new(Block::filled(Shape::new(&[2]), v));
        let p = |n: &str| PathBuf::from(format!("/served/{n}"));
        w.insert(p("a1_1.blk"), blk(1.0));
        w.insert(p("a1_2.blk"), blk(2.0));
        assert!(w.get(&p("a1_1.blk")).is_some());
        // Inserting a third evicts the LRU (a1_2 — a1_1 was just touched).
        w.insert(p("a2_1.blk"), blk(3.0));
        assert_eq!(w.len(), 2);
        assert!(w.get(&p("a1_2.blk")).is_none());
        assert!(w.get(&p("a1_1.blk")).is_some());
        // Prefix invalidation drops a deleted array's entries only.
        w.invalidate_prefix(Path::new("/served"), "a1_");
        assert!(w.get(&p("a1_1.blk")).is_none());
        assert!(w.get(&p("a2_1.blk")).is_some());
        w.invalidate(&p("a2_1.blk"));
        assert!(w.is_empty());
    }
}
