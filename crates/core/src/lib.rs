//! # sia-core — the public facade of the Super Instruction Architecture
//!
//! One import point for the whole system: compile SIAL, run it on the SIP,
//! inspect profiles, or trace-and-simulate at supercomputer scale.
//!
//! ```
//! use sia_core::Sia;
//!
//! let src = r#"
//! sial hello_blocks
//! aoindex i = 1, n
//! distributed X(i)
//! temp t(i)
//! scalar total
//! pardo i
//!   t(i) = 1.5
//!   put X(i) = t(i)
//! endpardo i
//! sip_barrier
//! pardo i
//!   get X(i)
//!   total += X(i) * X(i)
//! endpardo i
//! sip_barrier
//! execute sip_allreduce total
//! endsial
//! "#;
//!
//! let out = Sia::builder()
//!     .workers(2)
//!     .segment_size(4)
//!     .bind("n", 3)
//!     .run(src)
//!     .unwrap();
//! assert!((out.scalars["total"] - 3.0 * 4.0 * 2.25).abs() < 1e-9);
//! ```

pub use sia_blocks as blocks;
pub use sia_bytecode as bytecode;
pub use sia_fabric as fabric;
pub use sia_runtime as runtime;
pub use sia_sim as sim;
pub use sial_frontend as frontend;

pub use sia_bytecode::{ConstBindings, Program};
pub use sia_fabric::{FaultPlan, FaultSnapshot};
pub use sia_runtime::{
    CommKind, CommPlan, ConfigError, CrashSchedule, FaultConfig, FaultStats, MemoryEstimate, Merge,
    Metrics, Placement, ProfileReport, RecoveryStats, RunOutput, RuntimeError, SegmentConfig, Sip,
    SipConfig, SipConfigBuilder, SuperArg, SuperEnv, SuperRegistry, TraceSink, TraceTimeline,
    WaitCause,
};
pub use sia_sim::{MachineModel, SimConfig, SimReport};
pub use sial_frontend::CompileError;

use sia_runtime::trace::{default_cost_model, generate, CostModel, Trace};
use sia_runtime::{Layout, Topology};
use std::sync::Arc;

/// Everything that can go wrong driving the SIA end to end.
#[derive(Debug)]
pub enum SiaError {
    /// SIAL compilation failed.
    Compile(CompileError),
    /// The SIP rejected or aborted the run.
    Runtime(RuntimeError),
}

impl std::fmt::Display for SiaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SiaError::Compile(e) => write!(f, "{e}"),
            SiaError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SiaError {}

impl From<CompileError> for SiaError {
    fn from(e: CompileError) -> Self {
        SiaError::Compile(e)
    }
}

impl From<RuntimeError> for SiaError {
    fn from(e: RuntimeError) -> Self {
        SiaError::Runtime(e)
    }
}

/// Compiles SIAL source to SIA bytecode.
pub fn compile(source: &str) -> Result<Program, CompileError> {
    sial_frontend::compile(source)
}

/// Renders a human-readable bytecode listing.
pub fn disassemble(program: &Program) -> String {
    sia_bytecode::disassemble(program)
}

/// Builder-style entry point: configure the SIP, bind constants, register
/// kernels, then run or trace.
pub struct Sia {
    config: SipConfig,
    registry: SuperRegistry,
    bindings: ConstBindings,
    cost_model: CostModel,
}

impl Sia {
    /// Starts a builder with defaults (2 workers, 1 I/O server, segment 8).
    pub fn builder() -> Self {
        Sia {
            config: SipConfig::builder()
                .collect_distributed(true)
                .build()
                .expect("default config is valid"),
            registry: SuperRegistry::new(),
            bindings: ConstBindings::new(),
            cost_model: default_cost_model(),
        }
    }

    /// Sets the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Sets the I/O server count (0 disables served arrays).
    pub fn io_servers(mut self, n: usize) -> Self {
        self.config.io_servers = n;
        self
    }

    /// Sets the default segment size — the paper's key tuning parameter,
    /// deliberately *not* expressible in SIAL source.
    pub fn segment_size(mut self, seg: usize) -> Self {
        self.config.segments.default = seg;
        self
    }

    /// Sets subsegments per segment (for subindices).
    pub fn subsegments(mut self, nsub: usize) -> Self {
        self.config.segments.nsub = nsub;
        self
    }

    /// Sets the prefetch look-ahead depth.
    pub fn prefetch_depth(mut self, d: usize) -> Self {
        self.config.prefetch_depth = d;
        self
    }

    /// Sets the worker block-cache capacity.
    pub fn cache_blocks(mut self, n: usize) -> Self {
        self.config.cache_blocks = n;
        self
    }

    /// Sets a per-worker memory budget the dry run enforces.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.config.memory_budget = Some(bytes);
        self
    }

    /// Overrides the whole configuration.
    pub fn config(mut self, config: SipConfig) -> Self {
        self.config = config;
        self
    }

    /// Binds a symbolic constant.
    pub fn bind(mut self, name: &str, value: i64) -> Self {
        self.bindings.insert(name.to_string(), value);
        self
    }

    /// Registers a super instruction.
    pub fn register(
        mut self,
        name: &str,
        f: impl Fn(&mut [SuperArg], &SuperEnv) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        self.registry.register(name, f);
        self
    }

    /// Replaces the registry wholesale.
    pub fn registry(mut self, registry: SuperRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the cost model used by [`Sia::trace`] for `execute` kernels.
    pub fn cost_model(mut self, cm: CostModel) -> Self {
        self.cost_model = cm;
        self
    }

    /// Compiles and runs SIAL source on the real SIP.
    pub fn run(self, source: &str) -> Result<RunOutput, SiaError> {
        let program = compile(source)?;
        self.run_program(program)
    }

    /// Runs an already compiled program.
    pub fn run_program(self, program: Program) -> Result<RunOutput, SiaError> {
        Ok(Sip::new(self.config)
            .with_registry(self.registry)
            .run(program, &self.bindings)?)
    }

    /// Dry-runs only: the memory estimate without execution.
    pub fn dry_run(self, source: &str) -> Result<MemoryEstimate, SiaError> {
        let program = compile(source)?;
        Ok(Sip::new(self.config).dry_run(program, &self.bindings)?)
    }

    /// Compiles and traces SIAL source for the scale simulator, using this
    /// builder's bindings/segments and the given (simulated) topology.
    pub fn trace(self, source: &str, workers: usize, io_servers: usize) -> Result<Trace, SiaError> {
        let program = compile(source)?;
        let layout = Layout::new(
            Arc::new(program),
            &self.bindings,
            self.config.segments,
            Topology::new(workers, io_servers),
        )?;
        Ok(generate(&layout, &self.cost_model)?)
    }
}

impl Default for Sia {
    fn default() -> Self {
        Self::builder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
sial core_facade
aoindex i = 1, n
distributed X(i)
temp t(i)
scalar s
pardo i
  t(i) = 2.0
  put X(i) = t(i)
endpardo i
sip_barrier
pardo i
  get X(i)
  s += X(i) * X(i)
endpardo i
sip_barrier
execute sip_allreduce s
endsial
"#;

    #[test]
    fn builder_run() {
        let out = Sia::builder()
            .workers(2)
            .segment_size(4)
            .bind("n", 4)
            .run(SRC)
            .unwrap();
        assert!((out.scalars["s"] - 4.0 * 4.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn compile_error_surfaces() {
        let err = Sia::builder()
            .run("sial broken\npardo\nendsial")
            .unwrap_err();
        assert!(matches!(err, SiaError::Compile(_)));
        assert!(err.to_string().contains("error"));
    }

    #[test]
    fn runtime_error_surfaces() {
        // Unbound constant.
        let err = Sia::builder().run(SRC).unwrap_err();
        assert!(matches!(err, SiaError::Runtime(_)));
    }

    #[test]
    fn dry_run_estimates() {
        let est = Sia::builder()
            .workers(4)
            .segment_size(4)
            .bind("n", 8)
            .dry_run(SRC)
            .unwrap();
        assert!(est.per_worker_bytes > 0);
    }

    #[test]
    fn trace_from_builder() {
        let t = Sia::builder()
            .segment_size(4)
            .bind("n", 8)
            .trace(SRC, 16, 1)
            .unwrap();
        assert!(t.total_flops() > 0);
    }

    #[test]
    fn disassemble_roundtrip() {
        let p = compile(SRC).unwrap();
        let listing = disassemble(&p);
        assert!(listing.contains("pardo i"));
        assert!(listing.contains("put X(i) = t(i)"));
    }

    #[test]
    fn custom_kernel_registration() {
        let src = r#"
sial kernel_test
aoindex i = 1, n
temp t(i)
scalar s
pardo i
  execute negate_fill t(i)
  s += t(i) * t(i)
endpardo i
sip_barrier
execute sip_allreduce s
endsial
"#;
        let out = Sia::builder()
            .workers(2)
            .segment_size(4)
            .bind("n", 2)
            .register("negate_fill", |args, _env| {
                args[0].block_mut()?.fill(-3.0);
                Ok(())
            })
            .run(src)
            .unwrap();
        assert!((out.scalars["s"] - 2.0 * 4.0 * 9.0).abs() < 1e-9);
    }
}
