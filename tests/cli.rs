//! Integration tests of the `sial` command-line driver, run against the
//! built binary (`CARGO_BIN_EXE_sial`).

use std::path::PathBuf;
use std::process::Command;

fn sial() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sial"))
}

fn write_demo(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sia-cli-{tag}-{}.sial", std::process::id()));
    std::fs::write(
        &path,
        r#"
sial cli_demo
aoindex i = 1, n
distributed X(i)
temp t(i)
scalar s
pardo i
  t(i) = 1.5
  put X(i) = t(i)
endpardo i
sip_barrier
pardo i
  get X(i)
  s += X(i) * X(i)
endpardo i
sip_barrier
execute sip_allreduce s
endsial
"#,
    )
    .unwrap();
    path
}

#[test]
fn check_reports_table_sizes() {
    let path = write_demo("check");
    let out = sial()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok —"), "{stdout}");
    assert!(stdout.contains("instructions"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_rejects_bad_source() {
    let path = std::env::temp_dir().join(format!("sia-cli-bad-{}.sial", std::process::id()));
    std::fs::write(&path, "sial broken\npardo\nendsial\n").unwrap();
    let out = sial()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn compile_disasm_run_pipeline() {
    let src = write_demo("pipeline");
    let bin = src.with_extension("siab");
    // compile
    let out = sial()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            bin.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(bin.exists());
    // disasm the binary form
    let out = sial()
        .args(["disasm", bin.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let listing = String::from_utf8_lossy(&out.stdout);
    assert!(listing.contains("pardo i"), "{listing}");
    assert!(listing.contains("put X(i) = t(i)"), "{listing}");
    // run the binary form: s = n segments × seg elements × 1.5².
    let out = sial()
        .args([
            "run",
            bin.to_str().unwrap(),
            "--workers",
            "2",
            "--seg",
            "4",
            "--bind",
            "n=5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("s = 45.0"), "{stdout}");
    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(bin);
}

#[test]
fn dryrun_prints_estimate() {
    let path = write_demo("dryrun");
    let out = sial()
        .args([
            "dryrun",
            path.to_str().unwrap(),
            "--workers",
            "4",
            "--seg",
            "8",
            "--bind",
            "n=16",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("per-worker estimate"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn simulate_prints_scaling_result() {
    let path = write_demo("sim");
    let out = sial()
        .args([
            "simulate",
            path.to_str().unwrap(),
            "--workers",
            "512",
            "--machine",
            "xt4",
            "--seg",
            "8",
            "--bind",
            "n=64",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Cray XT4"), "{stdout}");
    assert!(stdout.contains("simulated time"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn usage_on_missing_args() {
    let out = sial().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_machine_rejected() {
    let path = write_demo("badmachine");
    let out = sial()
        .args(["simulate", path.to_str().unwrap(), "--machine", "cray-3"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown machine"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn shipped_programs_run() {
    // Every program under programs/ must at least pass `check`; the
    // chemistry ones run with --chem.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut found = 0;
    for entry in std::fs::read_dir(&root).unwrap().flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("sial") {
            continue;
        }
        found += 1;
        let out = sial()
            .args(["check", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert!(found >= 4, "expected the shipped programs, found {found}");

    // Run the triangular demo end to end (no chemistry kernels needed).
    let tri = root.join("triangular.sial");
    let out = sial()
        .args([
            "run",
            tri.to_str().unwrap(),
            "--workers",
            "2",
            "--seg",
            "4",
            "--nsub",
            "2",
            "--bind",
            "n=4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Upper triangle of a 4×4 block grid = 10 blocks.
    assert!(stdout.contains("total = 10.0"), "{stdout}");

    // And the MP2 demo with the chemistry kernels.
    let mp2 = root.join("mp2.sial");
    let out = sial()
        .args([
            "run",
            mp2.to_str().unwrap(),
            "--workers",
            "2",
            "--seg",
            "4",
            "--bind",
            "nocc=2",
            "--bind",
            "nvrt=4",
            "--chem",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("emp2 ="));
}

fn write_racy(tag: &str, body: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sia-cli-racy-{tag}-{}.sial", std::process::id()));
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn check_flags_write_write_race() {
    // Two pardo iterations differing only in j overwrite X(i): the race
    // detector must name the uncovered index and fail the check.
    let path = write_racy(
        "ww",
        "sial racy_ww
aoindex i = 1, n
aoindex j = 1, n
distributed X(i)
temp t(i)
pardo i, j
  t(i) = 1.0
  put X(i) = t(i)
endpardo i, j
sip_barrier
endsial
",
    );
    let out = sial()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("write-write-race"), "{stderr}");
    assert!(stderr.contains("put X(i) = t(i)"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_flags_unbarriered_get_after_put() {
    let path = write_racy(
        "gap",
        "sial racy_gap
aoindex i = 1, n
distributed X(i)
temp t(i)
temp u(i)
pardo i
  t(i) = 1.0
  put X(i) = t(i)
endpardo i
pardo i
  get X(i)
  u(i) = X(i)
endpardo i
endsial
",
    );
    let out = sial()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("get-after-put"), "{stderr}");
    assert!(stderr.contains("sip_barrier"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn trace_and_profile_exports_lint_clean() {
    let src = write_demo("trace");
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("sia-cli-trace-{}.json", std::process::id()));
    let profile = dir.join(format!("sia-cli-prof-{}.json", std::process::id()));
    let out = sial()
        .args([
            "run",
            src.to_str().unwrap(),
            "--workers",
            "2",
            "--seg",
            "4",
            "--bind",
            "n=5",
            "--profile",
            "--trace",
            trace.to_str().unwrap(),
            "--profile-json",
            profile.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("overlap:"), "{stdout}");
    assert!(stdout.contains("block arrival"), "{stdout}");

    // Both exports must pass the linter, and the trace must cover the
    // master, both workers, and the I/O server.
    let out = sial()
        .args(["trace-lint", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lint = String::from_utf8_lossy(&out.stdout);
    assert!(lint.contains("trace events"), "{lint}");
    for rank in ["rank 0 (master)", "rank 1 (worker 1)", "rank 3 (io 3)"] {
        assert!(lint.contains(rank), "missing {rank}: {lint}");
    }
    let out = sial()
        .args(["trace-lint", profile.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("sia.profile.v1"));

    // The linter rejects files that are not valid exports.
    let junk = dir.join(format!("sia-cli-junk-{}.json", std::process::id()));
    std::fs::write(&junk, "{\"traceEvents\": [{\"ph\": \"X\"}]}").unwrap();
    let out = sial()
        .args(["trace-lint", junk.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    for p in [src, trace, profile, junk] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn check_flag_gates_a_run() {
    // `run --check` must refuse to launch the SIP on a racy program…
    let racy = write_racy(
        "gate",
        "sial racy_gate
aoindex i = 1, n
aoindex j = 1, n
distributed X(i)
temp t(i)
pardo i, j
  t(i) = 1.0
  put X(i) = t(i)
endpardo i, j
sip_barrier
endsial
",
    );
    let out = sial()
        .args(["run", racy.to_str().unwrap(), "--check", "--bind", "n=2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing to run"), "{stderr}");
    // …and nothing ran: no iteration summary on stdout.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("iterations:"));
    let _ = std::fs::remove_file(racy);

    // A clean program passes the gate and still runs to completion.
    let clean = write_demo("gateok");
    let out = sial()
        .args([
            "run",
            clean.to_str().unwrap(),
            "--check",
            "--workers",
            "2",
            "--seg",
            "4",
            "--bind",
            "n=5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("s = 45.0"));
    let _ = std::fs::remove_file(clean);
}

#[test]
fn check_json_is_schema_valid_for_clean_and_racy_programs() {
    // Clean program: a sia.diag.v1 document with zero diagnostics.
    let clean = write_demo("jsonclean");
    let out = sial()
        .args(["check", clean.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = String::from_utf8_lossy(&out.stdout);
    sia::runtime::lint_diag_json(&doc).expect("schema-valid diagnostics JSON");
    assert!(doc.contains("\"count\":0"), "{doc}");
    let _ = std::fs::remove_file(clean);

    // Racy program: failing exit code, but still a schema-valid document
    // whose finding carries the verifier code and a source line.
    let racy = write_racy(
        "json",
        "sial racy_json
aoindex i = 1, n
aoindex j = 1, n
distributed X(i)
temp t(i)
pardo i, j
  t(i) = 1.0
  put X(i) = t(i)
endpardo i, j
sip_barrier
endsial
",
    );
    let out = sial()
        .args(["check", racy.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let doc = String::from_utf8_lossy(&out.stdout);
    sia::runtime::lint_diag_json(&doc).expect("schema-valid diagnostics JSON");
    assert!(doc.contains("verify/write-write-race"), "{doc}");
    assert!(doc.contains("\"line\":8"), "the put is on line 8: {doc}");
    let _ = std::fs::remove_file(racy);
}

#[test]
fn check_reports_every_error_with_file_line_col() {
    // Statement-level recovery: one pass reports both broken statements,
    // each located as file:line:col.
    let path = write_racy(
        "multi",
        "sial multi
aoindex i = 1, n
temp t(i)
pardo i
  t(i) =
  this is not a statement
endpardo i
endsial
",
    );
    let out = sial()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    let name = path.to_str().unwrap();
    assert!(stderr.contains(&format!("{name}:5:")), "{stderr}");
    assert!(stderr.contains(&format!("{name}:6:")), "{stderr}");
    assert!(stderr.contains("2 finding(s)"), "{stderr}");
    let _ = std::fs::remove_file(path);
}
