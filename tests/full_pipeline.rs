//! Cross-crate integration: SIAL source through every layer of the system —
//! compiler → wire format → disassembler → real SIP → results — plus
//! agreement between the real runtime and the simulator on shared policy
//! code, and end-to-end numeric validation of the chemistry workloads
//! against independently computed references.

use sia::subsystems::chem::{
    self, ccsd_iteration, ccsd_t_triples, contraction_demo, fock_build, mp2_energy, Molecule,
};
use sia::subsystems::runtime::trace::TracePhase;
use sia::{Sia, SipConfig};

fn tiny() -> Molecule {
    Molecule {
        name: "tiny",
        formula: "X",
        electrons: 8,
        n_occ: 4,
        n_ao: 12,
        open_shell: false,
    }
}

fn config(workers: usize) -> SipConfig {
    SipConfig::builder()
        .workers(workers)
        .io_servers(1)
        .collect_distributed(true)
        .build()
        .unwrap()
}

#[test]
fn source_wire_disasm_run_roundtrip() {
    let workload = contraction_demo(&tiny(), 2);
    // Compile.
    let program = workload.compile().unwrap();
    // Through the wire format.
    let bytes = sia::bytecode::encode_program(&program);
    let decoded = sia::bytecode::decode_program(&bytes).unwrap();
    assert_eq!(program, decoded);
    // Disassembly is stable across the roundtrip.
    assert_eq!(sia::disassemble(&program), sia::disassemble(&decoded));
    // And the decoded program runs.
    let mut cfg = config(2);
    cfg.segments.default = workload.seg;
    let out = sia::Sip::new(cfg)
        .with_registry(workload.registry())
        .run(decoded, &workload.bindings)
        .unwrap();
    assert!(out.scalars["rnorm"] > 0.0);
}

#[test]
fn all_chem_workloads_run_for_real() {
    let m = tiny();
    let cases = [
        contraction_demo(&m, 2),
        mp2_energy(&m, 2),
        ccsd_iteration(&m, 2, 1),
        ccsd_t_triples(&m, 2),
        fock_build(&m, 2),
    ];
    for w in cases {
        let out = w
            .run_real(config(2))
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        // Every workload ends in an allreduced scalar; it must be finite and
        // the run must have executed pardo iterations.
        assert!(out.profile.iterations > 0, "{}", w.name);
        for (name, v) in &out.scalars {
            assert!(v.is_finite(), "{}: scalar {name} = {v}", w.name);
        }
    }
}

#[test]
fn results_independent_of_worker_count() {
    // The SIA contract: SIAL semantics do not depend on scheduling. Same
    // program, same bindings, different topologies → identical scalars.
    let m = tiny();
    for w in [
        contraction_demo(&m, 2),
        mp2_energy(&m, 2),
        fock_build(&m, 2),
    ] {
        let mut results = Vec::new();
        for workers in [1usize, 3] {
            let out = w
                .run_real(config(workers))
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            results.push(out.scalars.clone());
        }
        for (k, v) in &results[0] {
            let v2 = results[1][k];
            assert!(
                (v - v2).abs() <= 1e-9 * v.abs().max(1.0),
                "{}: scalar {k} differs across worker counts: {v} vs {v2}",
                w.name
            );
        }
    }
}

#[test]
fn mp2_energy_matches_dense_reference() {
    // Evaluate the MP2 pseudo-energy directly from the synthetic kernels and
    // compare against the full SIAL+SIP pipeline.
    let m = tiny();
    let seg = 2usize;
    let w = mp2_energy(&m, seg);
    let out = w.run_real(config(3)).unwrap();
    let got = out.scalars["emp2"];

    // Dense reference over padded dimensions (segment counts × seg).
    let (occ_segs, _, virt_segs) = m.segments(seg as u32);
    let n_occ_pad = occ_segs as usize * seg;
    let n_virt_pad = virt_segs as usize * seg;
    let nocc_actual = m.n_occ as usize;
    let mut want = 0.0;
    for i in 0..n_occ_pad {
        for a in 0..n_virt_pad {
            for j in 0..n_occ_pad {
                for b in 0..n_virt_pad {
                    let v = chem::integrals::eri(i, a, j, b);
                    let x = chem::integrals::eri(i, b, j, a);
                    let d = chem::integrals::orbital_energy(i, nocc_actual)
                        + chem::integrals::orbital_energy(j, nocc_actual)
                        - chem::integrals::orbital_energy(a + nocc_actual, nocc_actual)
                        - chem::integrals::orbital_energy(b + nocc_actual, nocc_actual);
                    want += (2.0 * v - x) / d * v;
                }
            }
        }
    }
    assert!(
        (got - want).abs() < 1e-6 * want.abs().max(1.0),
        "MP2 pipeline {got} vs dense reference {want}"
    );
}

#[test]
fn fock_trace_diagnostic_matches_dense_reference() {
    let m = tiny();
    let seg = 2usize;
    let w = fock_build(&m, seg);
    let out = w.run_real(config(2)).unwrap();
    let got = out.scalars["trfd"];

    let (_, ao_segs, _) = m.segments(seg as u32);
    let n = ao_segs as usize * seg;
    let dd = |l: usize, s: usize| chem::integrals::oei(l, s);
    // F(m,n) = Σ_ls D(l,s)[2(mn|ls) − (ml|ns)], diagnostic Σ_{m≤n blocks} F·D.
    // Block filter m<=n is at segment granularity: include element (m,n) iff
    // its m-block ≤ n-block.
    let mut want = 0.0;
    for mm in 0..n {
        for nn in 0..n {
            if mm / seg > nn / seg {
                continue;
            }
            let mut f = 0.0;
            for l in 0..n {
                for s in 0..n {
                    f += dd(l, s)
                        * (2.0 * chem::integrals::eri(mm, nn, l, s)
                            - chem::integrals::eri(mm, l, nn, s));
                }
            }
            want += f * dd(mm, nn);
        }
    }
    assert!(
        (got - want).abs() < 1e-6 * want.abs().max(1.0),
        "Fock pipeline {got} vs dense reference {want}"
    );
}

#[test]
fn trace_totals_agree_with_real_run_traffic_shape() {
    // The simulator's trace and the real run must agree on the program's
    // structure: same pardo phases, iteration counts matching the real
    // scheduler's executed iterations.
    let m = tiny();
    let w = contraction_demo(&m, 2);
    let trace = w.trace(2, 1).unwrap();
    let out = w.run_real(config(2)).unwrap();
    let traced_iters: u64 = trace
        .phases
        .iter()
        .map(|p| match p {
            TracePhase::Pardo { iterations, .. } => *iterations,
            _ => 0,
        })
        .sum();
    assert_eq!(
        traced_iters, out.profile.iterations,
        "trace and real run disagree on total pardo iterations"
    );
}

#[test]
fn builder_facade_end_to_end() {
    let out = Sia::builder()
        .workers(2)
        .segment_size(3)
        .bind("n", 4)
        .register("ramp", |args, _env| {
            let segs: Vec<i64> = args[0].segs()?.to_vec();
            args[0].block_mut()?.fill(segs[0] as f64);
            Ok(())
        })
        .run(
            r#"
sial facade
aoindex i = 1, n
distributed X(i)
temp t(i)
scalar s
pardo i
  execute ramp t(i)
  put X(i) = t(i)
endpardo i
sip_barrier
pardo i
  get X(i)
  s += X(i) * X(i)
endpardo i
sip_barrier
execute sip_allreduce s
endsial
"#,
        )
        .unwrap();
    // Σ_i 3·i² over segments 1..4 (3 elements per block).
    let want: f64 = (1..=4).map(|i| 3.0 * (i * i) as f64).sum();
    assert!((out.scalars["s"] - want).abs() < 1e-9);
}

#[test]
fn profile_and_warnings_surface_through_facade() {
    let m = tiny();
    let w = contraction_demo(&m, 2);
    let out = w.run_real(config(2)).unwrap();
    assert!(!out.profile.lines.is_empty());
    // The hottest line should be a compute instruction (the contraction or
    // the integral kernel), not control flow.
    let hottest = &out.profile.lines[0];
    assert_eq!(
        hottest.class,
        sia::bytecode::InstructionClass::Compute,
        "hottest line: {}",
        hottest.text
    );
}
